//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the exact API subset it consumes: [`Bytes`], [`BytesMut`] and
//! the [`Buf`]/[`BufMut`] trait methods used by the E2 codec and the
//! transports. Semantics match the upstream crate for this subset
//! (big-endian integer accessors, incremental `advance`/`split_to`
//! framing); the representation is a plain `Vec<u8>` rather than a
//! refcounted slab, which is ample for the control-plane message sizes
//! this workspace moves.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (cheap enough to clone at control-plane
/// message sizes).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: s.to_vec() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { data: s.to_vec() }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes { data: s.into_bytes() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes { data: s.as_bytes().to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer with a read cursor at the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Appends a slice at the back.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Splits off and returns the first `n` bytes.
    ///
    /// # Panics
    /// Panics when `n` exceeds the buffered length (as upstream does).
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(n);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Drops all buffered bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", Bytes { data: self.data.clone() })
    }
}

/// Read-side cursor operations (big-endian, as upstream).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out the next `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.copy_to_bytes(1);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let b = self.copy_to_bytes(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance out of bounds");
        self.data.drain(..n);
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.data.len(), "copy_to_bytes out of bounds");
        Bytes { data: self.data.drain(..n).collect() }
    }
}

/// Write-side append operations (big-endian, as upstream).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090A0B0C0D0E);
        assert_eq!(b.len(), 15);
        assert_eq!(b[1], 0x01, "big endian");
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert_eq!(b.get_u64(), 0x0708090A0B0C0D0E);
        assert!(b.is_empty());
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        b.advance(6);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"world");
        assert!(b.is_empty());
    }

    #[test]
    fn freeze_and_compare() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"x");
        assert_eq!(b.freeze(), Bytes::from_static(b"x"));
    }
}

//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the API subset it consumes: the [`Rng`] core trait, the
//! [`RngExt`] extension (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`] and the [`rngs::SmallRng`]/
//! [`rngs::StdRng`] generators. Both generators are xoshiro256++ seeded
//! via SplitMix64 — deterministic, `Send + Sync`, and statistically ample
//! for simulation noise and exploration sampling (they are NOT
//! cryptographic, which upstream `StdRng` is; nothing in this workspace
//! needs that).
//!
//! Determinism note: streams differ from upstream `rand` for the same
//! seed, so seed-sensitive test expectations were re-baselined when this
//! shim was introduced (see CHANGES.md).

/// A source of random `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` (the upstream
/// `StandardUniform` distribution).
pub trait Uniform: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `random_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` via debiased multiply-shift (Lemire).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    if (m as u64) < n {
        let t = n.wrapping_neg() % n;
        while (m as u64) < t {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Wrapping subtraction gives the unsigned span for signed
                // types too.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = end.wrapping_sub(start) as u64;
                if std::mem::size_of::<$t>() == 8 && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = Uniform::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        (*self.start()..*self.end()).sample_from(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` (for floats: uniform in `[0, 1)`).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ core (public-domain algorithm by Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as upstream recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Xoshiro256 { s: [next(), next(), next(), next()] }
        }

        /// The full 256-bit internal state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`Self::state`] snapshot; the
        /// restored stream continues exactly where the snapshot was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            Xoshiro256 { s }
        }
    }

    impl Rng for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "small fast" generator (xoshiro256++ here, as in upstream's
    /// 64-bit `SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    /// The default generator (same algorithm in this shim; upstream's is
    /// cryptographic, which nothing in this workspace relies on).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SmallRng {
        /// The full internal state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuilds a generator mid-stream from a [`Self::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng(Xoshiro256::from_state(s))
        }
    }

    impl StdRng {
        /// The full internal state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuilds a generator mid-stream from a [`Self::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng(Xoshiro256::from_state(s))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separated from SmallRng so the two families never
            // share a stream for the same seed.
            StdRng(Xoshiro256::from_u64(seed ^ 0x5D4D5D4D5D4D5D4D))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{RngExt, SeedableRng};

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut live = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            live.random::<u64>();
        }
        let mut resumed = SmallRng::from_state(live.state());
        for _ in 0..100 {
            assert_eq!(live.random::<u64>(), resumed.random::<u64>());
        }
        let mut std_live = StdRng::seed_from_u64(42);
        std_live.random::<u64>();
        let mut std_resumed = StdRng::from_state(std_live.state());
        assert_eq!(std_live.random::<u64>(), std_resumed.random::<u64>());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_hits_all_buckets() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5_000 {
            counts[r.random_range(0..5usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i} starved: {c}");
        }
        for _ in 0..1_000 {
            let v = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = r.random_range(0u8..=28);
            assert!(w <= 28);
        }
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}

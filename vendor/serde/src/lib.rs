//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The build container has no access to crates.io. The workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` annotations on data
//! types — the single place that actually serialized anything (the A1
//! policy wire format in `edgebol-oran`) carries its own hand-rolled
//! JSON codec so the wire format is explicit and panic-free. This shim
//! therefore provides the two trait names as markers and re-exports
//! no-op derive macros from `serde_derive`, keeping the annotations
//! compiling (and the derived types honest about intent) without any
//! serialization machinery.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; real serialization lives in hand-rolled codecs.
pub trait Serialize {}

/// Marker trait; real deserialization lives in hand-rolled codecs.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build container has no access to crates.io, so this shim keeps
//! the workspace's `benches/` compiling and producing useful numbers:
//! it really times the closures (median / mean / p90 over the sample
//! count, after a warm-up), it just skips upstream's statistical
//! regression machinery, plotting and HTML reports. The configuration
//! knobs the benches set (`sample_size`, `measurement_time`,
//! `warm_up_time`) are honoured in spirit: warm-up runs until the
//! configured time elapses, then each sample is timed with enough inner
//! iterations to amortise clock overhead within the measurement budget.
//!
//! Like upstream with `harness = false`, filtering works positionally:
//! `cargo bench -- <substring>` runs only matching benchmark ids.

use std::time::{Duration, Instant};

/// Collects one benchmark's measurements.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, amortised over repeated calls per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many inner iterations fit ~1/sample_size of the
        // measurement budget?
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let inner = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / inner as u32);
        }
    }

    /// Times `routine` on fresh `setup()` input each iteration; only the
    /// routine is on the clock.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget run before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        // Warm-up: run the body (untimed) until the budget elapses.
        let warm = Instant::now();
        while warm.elapsed() < self.warm_up_time {
            f(&mut b);
            if b.samples.is_empty() {
                break; // body never called iter(); nothing to warm.
            }
        }
        f(&mut b);

        if b.samples.is_empty() {
            println!("{id:<40} (no measurements)");
            return self;
        }
        b.samples.sort_unstable();
        let median = b.samples[b.samples.len() / 2];
        let p90 = b.samples[(b.samples.len() * 9 / 10).min(b.samples.len() - 1)];
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "{id:<40} median {:>12?}  mean {:>12?}  p90 {:>12?}  ({} samples)",
            median,
            mean,
            p90,
            b.samples.len(),
        );
        self
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// config expression (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut acc = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        c.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64; 64], |v| v.iter().sum::<u64>())
        });
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
            filter: Some("nomatch".into()),
        };
        c.bench_function("other", |_b| panic!("must be filtered out"));
    }
}

//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build container has no access to crates.io, so this shim
//! reimplements the subset the workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, `boxed`), range/tuple/`Just`/`any`/
//! char-class-regex strategies, `proptest::collection::vec`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!` macros.
//!
//! Differences from upstream, on purpose:
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the deterministic case number; rerunning
//!   reproduces it exactly.
//! - **Deterministic seeding.** Case `i` of test `t` draws from a
//!   generator seeded by `fnv1a(t) ^ i`, so runs are reproducible across
//!   machines with no persistence files (`proptest-regressions/` is
//!   ignored).
//! - Case count defaults to 64 (override with `PROPTEST_CASES`).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The generator handed to strategies; re-exported so `impl Strategy`
/// signatures in test helper functions stay crate-agnostic.
pub type TestRng = SmallRng;

/// A value generator. Upstream couples generation with shrinking; this
/// shim only generates.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (what `prop_oneof!` builds).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty alternative list.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// The full uniform domain of `T` (upstream's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds an [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint {
    ($($t:ty => $bits:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (rng.random::<u64>() >> (64 - $bits)) as $t
            }
        }
    )*};
}

any_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => usize::BITS, i32 => 32, i64 => 64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// `&str` patterns act as string strategies. This shim supports the one
/// regex shape the workspace uses — a single character class with a
/// bounded repetition, `"[<class>]{m,n}"` — and rejects anything else
/// loudly at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (shim handles `[class]{{m,n}}`)")
        });
        let len = rng.random_range(lo..=hi);
        (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
    }
}

fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rep) = rest.split_once(']')?;
    let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rep.split_once(',')?;
    let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
    if lo > hi {
        return None;
    }
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        // `a-z` is a range unless the dash starts or ends the class.
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Lengths accepted by [`vec`]: a fixed size or a (half-open or
    /// inclusive) range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// A strategy for `Vec`s of `elem`-generated values with length
    /// drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };
}

#[doc(hidden)]
pub fn __fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

#[doc(hidden)]
pub fn __case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

#[doc(hidden)]
pub fn __rng_for_case(test_name: &str, case: usize) -> TestRng {
    SeedableRng::seed_from_u64(__fnv1a(test_name) ^ case as u64)
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body across deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::__case_count();
            for case in 0..cases {
                let mut rng = $crate::__rng_for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let body = || {
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome: ::std::result::Result<(), ::std::string::String> = body();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{cases} \
                         (deterministic; rerun reproduces it): {msg}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind first: negating `$cond` directly trips clippy's
        // neg_cmp_op_on_partial_ord when the condition is a float compare.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..=28, f in -1.0f64..1.0, n in 1usize..5) {
            prop_assert!((3..=28).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_tuple_compose(
            v in crate::collection::vec(0u64..10, 2..6),
            pair in (any::<u16>(), 0.0f64..=1.0),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(pair.1 <= 1.0);
        }

        #[test]
        fn oneof_and_map_cover_all_arms(s in prop_oneof![
            Just(Shape::Dot),
            any::<u8>().prop_map(Shape::Line),
        ]) {
            match s {
                Shape::Dot | Shape::Line(_) => {}
            }
        }

        #[test]
        fn regex_class_strategy(id in "[a-zA-Z0-9_.:-]{1,32}") {
            prop_assert!(!id.is_empty() && id.len() <= 32);
            prop_assert!(id.chars().all(|c| c.is_ascii_alphanumeric()
                || matches!(c, '_' | '.' | ':' | '-')));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|i| crate::Strategy::generate(&(0u64..1000), &mut crate::__rng_for_case("t", i)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|i| crate::Strategy::generate(&(0u64..1000), &mut crate::__rng_for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}

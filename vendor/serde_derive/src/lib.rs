//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. They accept (and ignore) `#[serde(...)]` attributes so existing
//! annotations like `#[serde(tag = "msg")]` keep compiling; the blanket
//! marker impls live in the `serde` shim itself, so the derives expand
//! to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

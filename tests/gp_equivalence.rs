//! Numerical-equivalence battery for the GP sliding-window downdate.
//!
//! The `O(W^2)` delete-row Cholesky downdate ([`edgebol_gp::EvictStrategy::Downdate`])
//! replaces the `O(W^3)` from-scratch refactorization on every eviction of
//! a full window. These tests pin the two claims that substitution rests
//! on:
//!
//! 1. **Bounded drift.** Thousands of downdate/append cycles at the
//!    paper-scale window (200) stay within a tight tolerance of a
//!    freshly-factored oracle — rounding error does not accumulate,
//!    because deleting the first row *adds* `c c^T` to the trailing
//!    factor block (an update, with no cancellation), see DESIGN.md.
//! 2. **Plan identity.** A fixed-seed learning episode (the Fig. 9 setup,
//!    shrunk so the window actually slides) takes the *same decisions*
//!    and accrues the same cost under both strategies.
//!
//! The CI stress loop reruns this battery under ten `EDGEBOL_CHAOS_SEED`
//! offsets; every constant below derives its RNG seed from that knob.

use edgebol_bandit::{Acquisition, Constraints, EdgeBolConfig};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_gp::{EvictStrategy, GaussianProcess, Kernel};
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Seed offset of the CI stress loop (0 when unset).
fn chaos_seed() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Long-horizon drift: 5 000 observe/evict cycles at window 200 on the
/// downdate path, checked every 500 cycles against an oracle GP factored
/// from scratch on the identical retained window. The asserted bound
/// (1e-6 on means and stds of O(1) targets) is ~two orders of magnitude
/// above the drift measured across seeds (see DESIGN.md) — tight enough
/// that genuine error accumulation would trip it, loose enough to be
/// seed-robust.
#[test]
fn long_horizon_drift_stays_bounded() {
    const WINDOW: usize = 200;
    const CYCLES: usize = 5_000;
    const CHECK_EVERY: usize = 500;
    let mut rng = SmallRng::seed_from_u64(0x1D21F7 ^ chaos_seed());
    let kernel = || Kernel::matern32(1.5, vec![0.3, 0.4]);
    let mut gp = GaussianProcess::new(kernel(), 1e-4)
        .with_max_observations(WINDOW)
        .with_evict_strategy(EvictStrategy::Downdate);

    let probes: Vec<[f64; 2]> =
        (0..8).map(|_| [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]).collect();
    let mut max_drift = 0.0f64;
    for cycle in 0..CYCLES {
        let x = [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)];
        let y = (x[0] * 5.0).sin() + (x[1] * 3.0).cos() + rng.random_range(-0.05..0.05);
        gp.observe(&x, y).unwrap();
        if (cycle + 1) % CHECK_EVERY == 0 {
            // Oracle: fresh factor of exactly the retained window.
            let mut oracle = GaussianProcess::new(kernel(), 1e-4);
            let (xs, ys) = gp.data();
            for (x, &y) in xs.chunks(2).zip(ys) {
                oracle.observe(x, y).unwrap();
            }
            for p in &probes {
                let (m, s) = gp.predict(p);
                let (mo, so) = oracle.predict(p);
                max_drift = max_drift.max((m - mo).abs()).max((s - so).abs());
            }
            assert!(
                max_drift < 1e-6,
                "drift {max_drift:e} after {} cycles exceeds the documented bound",
                cycle + 1
            );
        }
    }
    assert_eq!(gp.len(), WINDOW);
    // The factor survived ~4 800 downdates without a single fallback
    // visible as drift; surface the measured figure when run with
    // --nocapture so DESIGN.md's number can be refreshed.
    println!("max drift over {CYCLES} cycles at window {WINDOW}: {max_drift:e}");
}

/// Shrunk Fig. 9 episode, window small enough that eviction fires every
/// period after warm-up: the downdate agent and the rebuild agent must
/// produce identical traces — same controls, same realized cost `J`,
/// period by period.
#[test]
fn fixed_seed_episode_plans_identically_under_both_strategies() {
    let run = |strategy: EvictStrategy| -> Trace {
        let spec = ProblemSpec::convergence(8.0);
        let mut cfg = EdgeBolConfig::paper(Constraints { d_max: 0.0, rho_min: 0.0 });
        cfg.seed = 0x19 ^ chaos_seed();
        cfg.fit_hyperparams = false;
        cfg.warmup_rounds = 6;
        cfg.candidate_subsample = Some(256);
        cfg.max_observations = Some(40);
        cfg.acquisition = Acquisition::ConstrainedLcb;
        cfg.gp_evict = Some(strategy);
        let agent = EdgeBolAgent::with_config(&spec, cfg);
        let env = FlowTestbed::new(
            Calibration::fast(),
            Scenario::single_user(35.0),
            0x900 ^ chaos_seed(),
        );
        let mut o = Orchestrator::new(Box::new(env), Box::new(agent), spec)
            .expect("episode setup cannot fail");
        o.try_run(120).expect("no chaos configured: the episode cannot abort")
    };
    let downdate = run(EvictStrategy::Downdate);
    let rebuild = run(EvictStrategy::Rebuild);
    assert_eq!(downdate.records.len(), 120);
    assert_eq!(downdate, rebuild, "downdate and rebuild episodes diverged (plan or realized cost)");
}

/// The environment knob wires through: a GP built while
/// `EDGEBOL_GP_EVICT` has no override defaults to the downdate, and the
/// explicit builder always wins over the environment.
#[test]
fn builder_overrides_env_default() {
    let gp = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-4)
        .with_evict_strategy(EvictStrategy::Rebuild);
    assert_eq!(gp.evict_strategy(), EvictStrategy::Rebuild);
    if std::env::var("EDGEBOL_GP_EVICT").is_err() {
        let fresh = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-4);
        assert_eq!(fresh.evict_strategy(), EvictStrategy::Downdate);
    }
}

//! Cross-validation of the two testbed fidelities.
//!
//! The flow-level analytic evaluator powers all learning experiments; the
//! subframe-level DES is the ground truth it approximates. These tests
//! sweep a grid of configurations and require the two to agree on every
//! KPI within modest tolerances — the core validity argument for running
//! Figs. 9–14 on the fast path.

use edgebol_ran::Mcs;
use edgebol_testbed::{Calibration, ControlInput, DesTestbed, FlowTestbed, Scenario};

/// Median of the DES KPIs over a few periods (first discarded: pipeline
/// fill).
fn des_point(scenario: &Scenario, control: &ControlInput) -> (f64, f64, f64) {
    let mut des = DesTestbed::new(Calibration::default(), scenario.clone(), 77);
    let mut delays = Vec::new();
    let mut srv = Vec::new();
    let mut bs = Vec::new();
    for p in 0..5 {
        let obs = des.run_period_raw(control);
        if p == 0 {
            continue;
        }
        delays.push(obs.delay_s);
        srv.push(obs.server_power_w);
        bs.push(obs.bs_power_w);
    }
    let med = |v: &[f64]| edgebol_linalg::stats::percentile(v, 0.5);
    (med(&delays), med(&srv), med(&bs))
}

fn assert_close(what: &str, flow: f64, des: f64, rel_tol: f64, ctl: &ControlInput) {
    let rel = (flow - des).abs() / des.abs().max(1e-9);
    assert!(
        rel <= rel_tol,
        "{what} disagrees for {ctl:?}: flow {flow:.4} vs DES {des:.4} ({:.0}% off)",
        rel * 100.0
    );
}

#[test]
fn single_user_grid_agreement() {
    let scenario = Scenario::single_user(35.0);
    let flow = FlowTestbed::new(Calibration::default(), scenario.clone(), 1);
    for &res in &[0.25, 0.5, 1.0] {
        for &airtime in &[0.3, 1.0] {
            for &gpu in &[0.2, 1.0] {
                let control =
                    ControlInput { resolution: res, airtime, gpu_speed: gpu, mcs_cap: Mcs::MAX };
                let ss = flow.steady_state(&[35.0], &control);
                let (d_des, srv_des, bs_des) = des_point(&scenario, &control);
                assert_close("delay", ss.worst_delay_s(), d_des, 0.15, &control);
                assert_close("server power", ss.server_power_w, srv_des, 0.12, &control);
                assert_close("bs power", ss.bs_power_w, bs_des, 0.12, &control);
            }
        }
    }
}

#[test]
fn mcs_cap_agreement() {
    let scenario = Scenario::single_user(35.0);
    let flow = FlowTestbed::new(Calibration::default(), scenario.clone(), 2);
    for &mcs in &[8u8, 16, 22, 28] {
        let control =
            ControlInput { resolution: 1.0, airtime: 1.0, gpu_speed: 1.0, mcs_cap: Mcs(mcs) };
        let ss = flow.steady_state(&[35.0], &control);
        let (d_des, _, bs_des) = des_point(&scenario, &control);
        assert_close("delay", ss.worst_delay_s(), d_des, 0.15, &control);
        assert_close("bs power", ss.bs_power_w, bs_des, 0.15, &control);
    }
}

#[test]
fn poor_channel_agreement_with_harq() {
    // At 10 dB the link runs mid-MCS with retransmissions: both models
    // must account for HARQ consistently.
    let scenario = Scenario::single_user(10.0);
    let flow = FlowTestbed::new(Calibration::default(), scenario.clone(), 3);
    let control = ControlInput { resolution: 0.5, airtime: 1.0, gpu_speed: 1.0, mcs_cap: Mcs::MAX };
    let ss = flow.steady_state(&[10.0], &control);
    let (d_des, _, _) = des_point(&scenario, &control);
    assert_close("delay", ss.worst_delay_s(), d_des, 0.20, &control);
}

#[test]
fn multi_user_agreement() {
    let scenario = Scenario::heterogeneous(3);
    let flow = FlowTestbed::new(Calibration::default(), scenario.clone(), 4);
    let snrs = [30.0, 24.0, 19.2];
    let control =
        ControlInput { resolution: 0.75, airtime: 1.0, gpu_speed: 1.0, mcs_cap: Mcs::MAX };
    let ss = flow.steady_state(&snrs, &control);
    let (d_des, srv_des, bs_des) = des_point(&scenario, &control);
    // Multi-user sharing adds approximation error (round-robin vs the
    // fixed-point share model): looser tolerances.
    assert_close("delay", ss.worst_delay_s(), d_des, 0.30, &control);
    assert_close("server power", ss.server_power_w, srv_des, 0.15, &control);
    assert_close("bs power", ss.bs_power_w, bs_des, 0.15, &control);
}

#[test]
fn both_models_reproduce_fig2_directionality() {
    // The qualitative trade-offs must agree even where magnitudes drift:
    // low res => higher server power; low airtime => higher delay.
    let scenario = Scenario::single_user(35.0);
    let flow = FlowTestbed::new(Calibration::default(), scenario.clone(), 5);
    let base = ControlInput::max_resources();
    let mut low_res = base;
    low_res.resolution = 0.25;
    let mut low_air = base;
    low_air.airtime = 0.2;

    let f_base = flow.steady_state(&[35.0], &base);
    let f_low_res = flow.steady_state(&[35.0], &low_res);
    let f_low_air = flow.steady_state(&[35.0], &low_air);
    assert!(f_low_res.server_power_w > f_base.server_power_w);
    assert!(f_low_air.worst_delay_s() > f_base.worst_delay_s());

    let (d_base, srv_base, _) = des_point(&scenario, &base);
    let (_, srv_low_res, _) = des_point(&scenario, &low_res);
    let (d_low_air, _, _) = des_point(&scenario, &low_air);
    assert!(srv_low_res > srv_base);
    assert!(d_low_air > d_base);
}

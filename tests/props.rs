//! Property-based tests of cross-crate invariants (proptest).

use bytes::BytesMut;
use edgebol_gp::{GaussianProcess, Kernel};
use edgebol_linalg::{Cholesky, Mat};
use edgebol_media::{mean_average_precision, Dataset, DetectorModel};
use edgebol_oran::{E2Codec, E2Message, KpiReport};
use edgebol_ran::{bler, cqi_from_snr, max_mcs_for_cqi, tbs_bits, Mcs};
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};
use proptest::prelude::*;

proptest! {
    /// Cholesky solve must invert `A x = b` for any random SPD matrix.
    #[test]
    fn cholesky_solves_random_spd(
        vals in proptest::collection::vec(-1.0f64..1.0, 25),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let g = Mat::from_vec(5, 5, vals);
        let mut a = g.matmul(&g.transpose());
        a.add_diagonal(5.0);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6, "residual {} vs {}", got, want);
        }
    }

    /// GP posterior std never exceeds the prior std, and predictions at
    /// observed points approach the observations.
    #[test]
    fn gp_posterior_contracts(
        xs in proptest::collection::vec(0.0f64..1.0, 3..15),
        query in 0.0f64..1.0,
    ) {
        let mut gp = GaussianProcess::new(Kernel::matern32(2.0, vec![0.3]), 1e-4);
        for (i, &x) in xs.iter().enumerate() {
            gp.observe(&[x], (i % 5) as f64).unwrap();
        }
        let (_, s) = gp.predict(&[query]);
        prop_assert!(s <= 2.0f64.sqrt() + 1e-9, "posterior std {} above prior", s);
        prop_assert!(s >= 0.0);
    }

    /// The mAP metric is always within [0, 1] for any detector run.
    #[test]
    fn map_is_a_probability(res in 0.1f64..=1.0, seed in 0u64..1000) {
        let ds = Dataset::generate(20, seed);
        let m = ds.evaluate_map(&DetectorModel::default(), res, seed ^ 0xF00);
        prop_assert!((0.0..=1.0).contains(&m), "mAP {m}");
    }

    /// An empty detection set gives mAP 0 when ground truth exists.
    #[test]
    fn no_detections_zero_map(seed in 0u64..200) {
        let ds = Dataset::generate(5, seed);
        let pairs: Vec<_> = ds.scenes().iter().map(|s| (s, &[][..])).collect();
        let bd = mean_average_precision(&pairs, 0.5);
        prop_assert_eq!(bd.map, 0.0);
    }

    /// PHY tables: CQI→MCS→BLER consistency for any SNR.
    #[test]
    fn phy_tables_consistent(snr in -20.0f64..45.0) {
        let cqi = cqi_from_snr(snr);
        prop_assert!((1..=15).contains(&cqi));
        let mcs = max_mcs_for_cqi(cqi);
        prop_assert!(mcs.index() <= 28);
        let b = bler(snr, mcs);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(tbs_bits(mcs, 22) > 0.0);
    }

    /// E2 codec round-trips arbitrary well-formed messages.
    #[test]
    fn e2_codec_roundtrip(
        t_ms in 0u64..u64::MAX / 2,
        power in 0u64..1_000_000,
        duty in 0u16..=1000,
        mcs in 0u16..=2800,
    ) {
        let msg = E2Message::Indication(KpiReport {
            t_ms,
            bs_power_mw: power,
            duty_milli: duty,
            mean_mcs_centi: mcs,
        });
        let mut buf = BytesMut::new();
        E2Codec::encode(&msg, &mut buf);
        let got = E2Codec::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(got, msg);
        prop_assert!(buf.is_empty());
    }

    /// Control round-trip: unit -> physical -> unit is identity up to MCS
    /// quantization.
    #[test]
    fn control_unit_roundtrip(
        eta in 0.0f64..=1.0,
        a in 0.0f64..=1.0,
        g in 0.0f64..=1.0,
        m in 0.0f64..=1.0,
    ) {
        let c = ControlInput::from_unit(eta, a, g, m);
        let u = c.to_unit();
        prop_assert!((u[0] - eta).abs() < 1e-9);
        prop_assert!((u[1] - a).abs() < 1e-9);
        prop_assert!((u[2] - g).abs() < 1e-9);
        prop_assert!((u[3] - m).abs() <= 0.5 / 28.0 + 1e-9);
    }

    /// The flow steady state stays physical for ANY control and channel:
    /// finite positive delays, powers within the hardware envelopes,
    /// occupancy within the airtime cap.
    #[test]
    fn steady_state_always_physical(
        eta in 0.0f64..=1.0,
        a in 0.0f64..=1.0,
        g in 0.0f64..=1.0,
        m in 0.0f64..=1.0,
        snr in -5.0f64..40.0,
        n_users in 1usize..5,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 9);
        let control = ControlInput::from_unit(eta, a, g, m);
        let snrs = vec![snr; n_users];
        let ss = flow.steady_state(&snrs, &control);
        for &d in &ss.delays_s {
            prop_assert!(d.is_finite() && d > 0.0, "delay {d}");
            prop_assert!(d < 3600.0, "absurd delay {d}");
        }
        prop_assert!((0.0..=1.0).contains(&ss.gpu_utilization));
        prop_assert!(ss.server_power_w >= 69.0 && ss.server_power_w <= 270.0,
            "server power {}", ss.server_power_w);
        prop_assert!(ss.bs_power_w >= 4.0 && ss.bs_power_w <= 8.0,
            "bs power {}", ss.bs_power_w);
        let occ: f64 = ss.occupancy.iter().sum();
        prop_assert!(occ <= control.airtime + 1e-9, "occupancy {} > airtime", occ);
    }

    /// Higher resolution never reduces the steady-state transmission-bound
    /// delay (all else equal, single user).
    #[test]
    fn delay_monotone_in_resolution(
        a in 0.2f64..=1.0,
        g in 0.0f64..=1.0,
        snr in 10.0f64..40.0,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 10);
        let mk = |res: f64| ControlInput {
            resolution: res,
            airtime: a,
            gpu_speed: g,
            mcs_cap: Mcs::MAX,
        };
        let lo = flow.steady_state(&[snr], &mk(0.3)).worst_delay_s();
        let hi = flow.steady_state(&[snr], &mk(0.9)).worst_delay_s();
        prop_assert!(hi >= lo, "delay not monotone: {hi} < {lo}");
    }
}

//! Property-based tests of cross-crate invariants (proptest).

use bytes::BytesMut;
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_gp::{EvictStrategy, GaussianProcess, Kernel};
use edgebol_linalg::{Cholesky, Mat};
use edgebol_media::{mean_average_precision, Dataset, DetectorModel};
use edgebol_oran::{
    corrupt_payload, A1Message, ChaosConfig, E2Codec, E2Message, KpiReport, LinkId, OranError,
    PolicyId, RadioPolicy, A1_POLICY_TYPE_RADIO,
};
use edgebol_ran::{bler, cqi_from_snr, max_mcs_for_cqi, tbs_bits, Mcs};
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};
use proptest::prelude::*;

/// A strategy over every well-formed E2 message.
fn arb_e2_message(t_ms: u64, power: u64, duty: u16, mcs: u16, variant: u8) -> E2Message {
    match variant % 5 {
        0 => E2Message::SubscriptionRequest {
            ran_function: (duty % 7) + 1,
            report_period_ms: (t_ms % 10_000) as u32,
        },
        1 => E2Message::SubscriptionResponse { ran_function: (duty % 7) + 1 },
        2 => E2Message::Indication(KpiReport {
            t_ms,
            bs_power_mw: power,
            duty_milli: duty,
            mean_mcs_centi: mcs,
        }),
        3 => E2Message::ControlRequest { airtime_milli: duty, max_mcs: (mcs % 29) as u8 },
        _ => E2Message::ControlAck,
    }
}

proptest! {
    /// Cholesky solve must invert `A x = b` for any random SPD matrix.
    #[test]
    fn cholesky_solves_random_spd(
        vals in proptest::collection::vec(-1.0f64..1.0, 25),
        b in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let g = Mat::from_vec(5, 5, vals);
        let mut a = g.matmul(&g.transpose());
        a.add_diagonal(5.0);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6, "residual {} vs {}", got, want);
        }
    }

    /// GP posterior std never exceeds the prior std, and predictions at
    /// observed points approach the observations.
    #[test]
    fn gp_posterior_contracts(
        xs in proptest::collection::vec(0.0f64..1.0, 3..15),
        query in 0.0f64..1.0,
    ) {
        let mut gp = GaussianProcess::new(Kernel::matern32(2.0, vec![0.3]), 1e-4);
        for (i, &x) in xs.iter().enumerate() {
            gp.observe(&[x], (i % 5) as f64).unwrap();
        }
        let (_, s) = gp.predict(&[query]);
        prop_assert!(s <= 2.0f64.sqrt() + 1e-9, "posterior std {} above prior", s);
        prop_assert!(s >= 0.0);
    }

    /// Sliding-window equivalence: the `O(W^2)` delete-row downdate and
    /// the `O(W^3)` rebuild must agree on the posterior for ANY random
    /// observation stream and window size — the workspace-level face of
    /// the `Cholesky::delete_row` battery in `edgebol-linalg`.
    #[test]
    fn gp_window_downdate_matches_rebuild(
        xs in proptest::collection::vec(0.0f64..1.0, 8..40),
        cap in 2usize..8,
        query in 0.0f64..1.0,
    ) {
        let build = |s: EvictStrategy| {
            GaussianProcess::new(Kernel::matern32(1.5, vec![0.25]), 1e-4)
                .with_max_observations(cap)
                .with_evict_strategy(s)
        };
        let mut fast = build(EvictStrategy::Downdate);
        let mut oracle = build(EvictStrategy::Rebuild);
        for (i, &x) in xs.iter().enumerate() {
            let y = (x * 6.0).sin() + (i % 3) as f64 * 0.2;
            fast.observe(&[x], y).unwrap();
            oracle.observe(&[x], y).unwrap();
        }
        let (mf, sf) = fast.predict(&[query]);
        let (mo, so) = oracle.predict(&[query]);
        prop_assert!((mf - mo).abs() < 1e-8, "mean {mf} vs {mo}");
        prop_assert!((sf - so).abs() < 1e-8, "std {sf} vs {so}");
    }

    /// Degenerate windows never panic: a capacity-1 window (every evict
    /// shrinks the factor 1 -> 0) and near-coincident inputs (a
    /// near-singular kernel matrix held up only by the noise jitter) must
    /// keep observing and predicting cleanly under the downdate path.
    #[test]
    fn gp_degenerate_windows_survive(
        x0 in 0.0f64..1.0,
        eps in 0.0f64..1e-10,
        steps in 4usize..20,
    ) {
        // Capacity 1: the downdate's T=1 -> T=0 edge case, every period.
        let mut tiny = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-6)
            .with_max_observations(1)
            .with_evict_strategy(EvictStrategy::Downdate);
        for i in 0..steps {
            tiny.observe(&[(i as f64 * 0.13).fract()], i as f64).unwrap();
            prop_assert_eq!(tiny.len(), 1);
        }
        // Near-coincident inputs: kernel rows differ by ~eps, so the
        // factor is barely positive definite. Evictions must either
        // downdate or fall back to the jittered refactorization — never
        // panic, never corrupt the window.
        let mut sick = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-9)
            .with_max_observations(3)
            .with_evict_strategy(EvictStrategy::Downdate);
        for i in 0..steps {
            let x = x0 + eps * i as f64;
            sick.observe(&[x], 1.0 + i as f64 * 1e-6).unwrap();
        }
        prop_assert_eq!(sick.len(), 3);
        let (m, s) = sick.predict(&[x0]);
        prop_assert!(m.is_finite() && s.is_finite() && s >= 0.0);
    }

    /// The mAP metric is always within [0, 1] for any detector run.
    #[test]
    fn map_is_a_probability(res in 0.1f64..=1.0, seed in 0u64..1000) {
        let ds = Dataset::generate(20, seed);
        let m = ds.evaluate_map(&DetectorModel::default(), res, seed ^ 0xF00);
        prop_assert!((0.0..=1.0).contains(&m), "mAP {m}");
    }

    /// An empty detection set gives mAP 0 when ground truth exists.
    #[test]
    fn no_detections_zero_map(seed in 0u64..200) {
        let ds = Dataset::generate(5, seed);
        let pairs: Vec<_> = ds.scenes().iter().map(|s| (s, &[][..])).collect();
        let bd = mean_average_precision(&pairs, 0.5);
        prop_assert_eq!(bd.map, 0.0);
    }

    /// PHY tables: CQI→MCS→BLER consistency for any SNR.
    #[test]
    fn phy_tables_consistent(snr in -20.0f64..45.0) {
        let cqi = cqi_from_snr(snr);
        prop_assert!((1..=15).contains(&cqi));
        let mcs = max_mcs_for_cqi(cqi);
        prop_assert!(mcs.index() <= 28);
        let b = bler(snr, mcs);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(tbs_bits(mcs, 22) > 0.0);
    }

    /// E2 codec round-trips arbitrary well-formed messages.
    #[test]
    fn e2_codec_roundtrip(
        t_ms in 0u64..u64::MAX / 2,
        power in 0u64..1_000_000,
        duty in 0u16..=1000,
        mcs in 0u16..=2800,
    ) {
        let msg = E2Message::Indication(KpiReport {
            t_ms,
            bs_power_mw: power,
            duty_milli: duty,
            mean_mcs_centi: mcs,
        });
        let mut buf = BytesMut::new();
        E2Codec::encode(&msg, &mut buf);
        let got = E2Codec::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(got, msg);
        prop_assert!(buf.is_empty());
    }

    /// Control round-trip: unit -> physical -> unit is identity up to MCS
    /// quantization.
    #[test]
    fn control_unit_roundtrip(
        eta in 0.0f64..=1.0,
        a in 0.0f64..=1.0,
        g in 0.0f64..=1.0,
        m in 0.0f64..=1.0,
    ) {
        let c = ControlInput::from_unit(eta, a, g, m);
        let u = c.to_unit();
        prop_assert!((u[0] - eta).abs() < 1e-9);
        prop_assert!((u[1] - a).abs() < 1e-9);
        prop_assert!((u[2] - g).abs() < 1e-9);
        prop_assert!((u[3] - m).abs() <= 0.5 / 28.0 + 1e-9);
    }

    /// The flow steady state stays physical for ANY control and channel:
    /// finite positive delays, powers within the hardware envelopes,
    /// occupancy within the airtime cap.
    #[test]
    fn steady_state_always_physical(
        eta in 0.0f64..=1.0,
        a in 0.0f64..=1.0,
        g in 0.0f64..=1.0,
        m in 0.0f64..=1.0,
        snr in -5.0f64..40.0,
        n_users in 1usize..5,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 9);
        let control = ControlInput::from_unit(eta, a, g, m);
        let snrs = vec![snr; n_users];
        let ss = flow.steady_state(&snrs, &control);
        for &d in &ss.delays_s {
            prop_assert!(d.is_finite() && d > 0.0, "delay {d}");
            prop_assert!(d < 3600.0, "absurd delay {d}");
        }
        prop_assert!((0.0..=1.0).contains(&ss.gpu_utilization));
        prop_assert!(ss.server_power_w >= 69.0 && ss.server_power_w <= 270.0,
            "server power {}", ss.server_power_w);
        prop_assert!(ss.bs_power_w >= 4.0 && ss.bs_power_w <= 8.0,
            "bs power {}", ss.bs_power_w);
        let occ: f64 = ss.occupancy.iter().sum();
        prop_assert!(occ <= control.airtime + 1e-9, "occupancy {} > airtime", occ);
    }

    /// Chaos corruption guarantee, E2 side: whatever frame it mangles and
    /// however it chooses the mutation, decoding the result is an error —
    /// never a panic, never a silent misparse — and the corruption stays
    /// confined to one frame (the stream resynchronizes).
    #[test]
    fn corrupted_e2_frames_always_error_never_panic(
        t_ms in 0u64..u64::MAX / 2,
        power in 0u64..1_000_000,
        duty in 0u16..=1000,
        mcs in 0u16..=2800,
        variant in 0u8..5,
        flip in any::<bool>(),
        pos in any::<u64>(),
    ) {
        let msg = arb_e2_message(t_ms, power, duty, mcs, variant);
        let frame = E2Codec::encode_to_bytes(&msg);
        let (mangled, kind, _) = corrupt_payload(LinkId::E2, &frame, flip, pos);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&mangled);
        E2Codec::encode(&E2Message::ControlAck, &mut buf);
        let first = E2Codec::decode(&mut buf);
        prop_assert!(
            matches!(first, Err(OranError::Codec(_)) | Err(OranError::Framing(_))),
            "{kind:?} must invalidate, got {first:?}"
        );
        // The follow-up frame decodes cleanly: no desynchronization.
        prop_assert_eq!(E2Codec::decode(&mut buf).unwrap(), Some(E2Message::ControlAck));
    }

    /// Chaos corruption guarantee, A1 side: a mangled policy/KPI document
    /// always fails UTF-8 validation or JSON parsing with a typed error.
    #[test]
    fn corrupted_a1_frames_always_error_never_panic(
        airtime in 0.0f64..=1.0,
        max_mcs in 0u8..=28,
        t_ms in 0u64..1_000_000,
        power in 0u64..100_000,
        variant in 0u8..3,
        flip in any::<bool>(),
        pos in any::<u64>(),
    ) {
        let msg = match variant {
            0 => A1Message::PutPolicy {
                policy_id: PolicyId(format!("edgebol-{t_ms}")),
                policy_type: A1_POLICY_TYPE_RADIO,
                policy: RadioPolicy { airtime, max_mcs },
            },
            1 => A1Message::DeletePolicy { policy_id: PolicyId(format!("edgebol-{t_ms}")) },
            _ => A1Message::KpiSample { t_ms, bs_power_mw: power },
        };
        let (mangled, kind, _) = corrupt_payload(LinkId::A1, msg.to_json().as_bytes(), flip, pos);
        let parsed = std::str::from_utf8(&mangled)
            .map_err(|e| OranError::Codec(e.to_string()))
            .and_then(A1Message::from_json);
        prop_assert!(parsed.is_err(), "{kind:?} must invalidate A1 JSON");
    }

    /// The E2 decoder never panics on fully arbitrary bytes: it yields
    /// messages, waits for more input, or errors — and always terminates.
    #[test]
    fn e2_decoder_survives_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&raw);
        // Each iteration either consumes bytes or stops, so this loop is
        // finite for any input.
        loop {
            let before = buf.len();
            match E2Codec::decode(&mut buf) {
                Ok(Some(_)) => {
                    prop_assert!(buf.len() < before, "no progress");
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Degraded-mode safety net: a short learning episode under ANY
    /// random fault schedule (all kinds, arbitrary rate and seed) never
    /// panics, never surfaces a recoverable error, counts at most one
    /// degraded event per injected degrading fault, and reproduces
    /// bit-exactly under the same seeds.
    #[test]
    fn chaotic_episode_never_panics_and_is_deterministic(
        chaos_seed in 0u64..10_000,
        rate in 0.0f64..0.4,
    ) {
        let run = || {
            let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
            let env = FlowTestbed::new(Calibration::fast(), Scenario::chaos_suite(), 11);
            let agent = EdgeBolAgent::quick_for_tests(&spec, 11);
            let mut o = Orchestrator::new_with_chaos(
                Box::new(env),
                Box::new(agent),
                spec,
                ChaosConfig::all_kinds(chaos_seed, rate),
            )
            .expect("setup is pre-arm");
            let trace = o.try_run(6).expect("recoverable-only schedule must not abort");
            (trace, o.degraded_events(), o.fault_ledger().records())
        };
        let (t1, d1, l1) = run();
        prop_assert_eq!(t1.len(), 6);
        prop_assert!(d1 <= l1.iter().filter(|r| r.is_degrading()).count(),
            "degraded events exceed degrading faults");
        let (t2, d2, l2) = run();
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(l1, l2);
    }

    /// Survivability safety net: a short episode under ANY cut/heal
    /// schedule on either link never panics, completes every period
    /// under the default sticky fallback, and reproduces bit-exactly —
    /// trace, supervisor counters and fault ledger alike.
    #[test]
    fn cut_heal_schedules_never_abort_and_are_deterministic(
        cut_at in 1u64..150,
        heal_raw in 0u64..80,
        on_e2 in any::<bool>(),
    ) {
        // 0 encodes "never heals" (the vendored proptest has no Option
        // strategy); positive values are the heal window in operations.
        let heal = (heal_raw > 0).then_some(heal_raw);
        let link = if on_e2 { LinkId::E2 } else { LinkId::A1 };
        let run = || {
            let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
            let env = FlowTestbed::new(Calibration::fast(), Scenario::recovery_suite(), 12);
            let agent = EdgeBolAgent::quick_for_tests(&spec, 12);
            let mut cfg = ChaosConfig::disabled().with_cut(link, cut_at);
            if let Some(h) = heal {
                cfg = cfg.with_heal(h);
            }
            let mut o = Orchestrator::new_with_chaos(Box::new(env), Box::new(agent), spec, cfg)
                .expect("setup is pre-arm");
            let trace = o.try_run(20).expect("sticky fallback never aborts");
            (
                trace,
                o.reconnects_ok(),
                o.reconnects_failed(),
                o.local_autonomy_periods(),
                o.first_outage_period(),
                o.fault_ledger().records(),
            )
        };
        let r1 = run();
        prop_assert_eq!(r1.0.len(), 20);
        // An unhealed cut can never reconnect; a ledgered cut always
        // marks the outage start.
        if heal.is_none() {
            prop_assert_eq!(r1.1, 0, "no resync across an unhealed cut");
        }
        if !r1.5.is_empty() {
            prop_assert!(r1.4.is_some(), "a fired cut must open an outage window");
        }
        let r2 = run();
        prop_assert_eq!(r1, r2);
    }

    /// Higher resolution never reduces the steady-state transmission-bound
    /// delay (all else equal, single user).
    #[test]
    fn delay_monotone_in_resolution(
        a in 0.2f64..=1.0,
        g in 0.0f64..=1.0,
        snr in 10.0f64..40.0,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 10);
        let mk = |res: f64| ControlInput {
            resolution: res,
            airtime: a,
            gpu_speed: g,
            mcs_cap: Mcs::MAX,
        };
        let lo = flow.steady_state(&[snr], &mk(0.3)).worst_delay_s();
        let hi = flow.steady_state(&[snr], &mk(0.9)).worst_delay_s();
        prop_assert!(hi >= lo, "delay not monotone: {hi} < {lo}");
    }
}

// ---------------------------------------------------------------------------
// Checkpoint corruption fuzz: any truncation or bit flip of a snapshot
// file must surface as a typed decode error — and at the fleet layer as
// a counted cold-start fallback — never as a panic or a silently wrong
// restore. (Smaller case counts where each case runs a whole fleet.)

proptest! {
    /// Truncating a framed checkpoint at any fuzzed offset is a typed
    /// decode error, never a panic.
    #[test]
    fn checkpoint_truncation_is_always_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = edgebol_ckpt::encode_file("fuzz", &payload);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = edgebol_ckpt::decode_file(&bytes[..cut], "fuzz")
            .expect_err("every strict prefix must fail decode");
        // The error is typed and printable (no panicking Display impl).
        let _ = err.to_string();
    }

    /// Flipping any single bit of a framed checkpoint is detected: the
    /// magic, version, kind or length checks catch structural damage
    /// and the CRC catches everything else.
    #[test]
    fn checkpoint_bit_flips_are_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = edgebol_ckpt::encode_file("fuzz", &payload);
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        let err = edgebol_ckpt::decode_file(&bytes, "fuzz")
            .expect_err("a corrupted frame must fail decode");
        let _ = err.to_string();
    }
}

proptest! {
    /// A fleet whose slice checkpoint is garbage (CRC-valid frame, junk
    /// payload — or any mutation of it) restores cold: the decode error
    /// is swallowed into a counted fallback and the run completes.
    #[test]
    fn corrupt_slice_checkpoints_fall_back_to_counted_cold_starts(
        junk in proptest::collection::vec(any::<u8>(), 0..40),
        mutate in 0u8..4, // 0: junk payload only; else flip a bit too
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "edgebol-props-ckpt-{}-{}",
            std::process::id(),
            junk.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // A well-framed checkpoint whose payload cannot possibly decode
        // into a slice snapshot (too short for even the meta header)...
        edgebol_ckpt::write_atomic(&dir.join("slice-0.ckpt"), "edgebol-fleet-slice", &junk)
            .expect("scratch write");
        // ...optionally damaged further at the frame level.
        if mutate != 0 {
            let path = dir.join("slice-0.ckpt");
            let mut bytes = std::fs::read(&path).unwrap();
            let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
            bytes[idx] ^= 1 << bit;
            std::fs::write(&path, bytes).unwrap();
        }

        let mut cfg = edgebol_fleet::FleetConfig::quick(1);
        cfg.periods = 4;
        cfg.warm_start = false;
        cfg.ckpt_dir = Some(dir.clone());
        cfg.ckpt_every = 0; // keep the corrupted file in place
        cfg.kill_schedule = vec![(0, 2)];
        let report = edgebol_fleet::Fleet::new(cfg).run();

        prop_assert_eq!(report.kills, 1);
        prop_assert_eq!(report.restores, 0);
        prop_assert_eq!(report.cold_restores, 1, "{}", report.summary());
        prop_assert_eq!(report.failed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

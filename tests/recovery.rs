//! Survivable-control-plane suite: the reconnect supervisor under
//! scheduled link cuts (DESIGN.md §9).
//!
//! The invariants pinned here:
//!
//! * **Survival** — a healing cut (`cut=e2@N,heal=e2@M`) costs an outage
//!   window, not the run: every period completes, the supervisor resyncs
//!   at least once, and the loop ends back on the connected path.
//! * **Outage-window-only deviation** — records before the first outage
//!   period are bit-identical to a fault-free run's; the supervisor is
//!   pure bookkeeping until a session actually dies.
//! * **Sticky fallback** — an unhealed cut latches the circuit open and
//!   the run survives indefinitely in local autonomy, probing half-open
//!   on a fixed cadence.
//! * **Fail-fast contract** — the same unhealed cut with fallback
//!   disabled surfaces the typed `CircuitOpen` error at a deterministic
//!   period (pinned in `tests/chaos_pipeline.rs`).
//! * **Determinism** — traces, supervisor counters and metrics are
//!   bit-identical across reruns and across worker-thread counts.
//!
//! `EDGEBOL_CHAOS_SEED` offsets the environment seeds (the CI stress
//! step loops this suite over ten values); every invariant holds per
//! seed.

use edgebol_bench::parallel_map_threads;
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_metrics::Registry;
use edgebol_oran::{ChaosConfig, CircuitState, FallbackMode, LinkId, RecoveryPolicy};
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

/// Seed offset for the CI chaos-stress loop (defaults to 0).
fn seed_offset() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn build(env_seed: u64, chaos: ChaosConfig, metrics: Registry) -> Orchestrator {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::recovery_suite(), env_seed);
    let agent = EdgeBolAgent::quick_for_tests(&spec, env_seed);
    Orchestrator::new_instrumented(Box::new(env), Box::new(agent), spec, chaos, metrics)
        .expect("in-process setup never fails pre-arm")
}

/// The acceptance schedule from the issue: cut the E2 link after 40
/// operations, heal it 25 operations later.
fn healing_cut() -> ChaosConfig {
    ChaosConfig::from_spec("cut=e2@40,heal=e2@25").expect("valid spec")
}

#[test]
fn healed_cut_survives_and_the_metrics_tell_the_story() {
    let reg = Registry::new();
    let mut o = build(1 + seed_offset(), healing_cut(), reg.clone());
    let trace = o.try_run(80).expect("a healed cut must not abort the run");
    assert_eq!(trace.len(), 80, "every period completes");

    assert!(o.reconnects_ok() >= 1, "the supervisor must resync at least once");
    assert!(o.session_epoch() >= 1, "each resync bumps the session epoch");
    assert_eq!(o.circuit_state(), CircuitState::Connected, "the run ends reconnected");
    assert!(o.local_autonomy_periods() > 0, "the outage window ran in local autonomy");
    assert!(o.first_outage_period().is_some());

    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("edgebol_oran_reconnects_total{link=\"E2\",outcome=\"ok\"}"),
        Some(o.reconnects_ok()),
    );
    assert_eq!(
        snap.counter("edgebol_oran_reconnects_total{link=\"E2\",outcome=\"failed\"}"),
        Some(o.reconnects_failed()),
    );
    assert_eq!(
        snap.counter("edgebol_core_local_autonomy_periods_total"),
        Some(o.local_autonomy_periods() as u64),
    );
    assert_eq!(snap.gauge("edgebol_oran_circuit_state"), Some(0.0), "gauge back at Connected");
    // Every scheduled backoff interval landed in the histogram: one for
    // the initial loss plus one per failed resync attempt.
    match snap.get("edgebol_oran_backoff_periods") {
        Some(edgebol_metrics::MetricValue::Histogram { count, .. }) => {
            assert_eq!(*count, 1 + o.reconnects_failed());
        }
        other => panic!("expected backoff histogram, got {other:?}"),
    }
    // The healed cut is ledgered once, as a *degrading* fault (the run
    // survived it), keeping the ledger's taxonomy honest.
    let ledger = o.fault_ledger();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger.degrading_count(), 1);
}

#[test]
fn trace_deviates_only_inside_the_outage_window() {
    let seed = 2 + seed_offset();
    let mut clean = build(seed, ChaosConfig::disabled(), Registry::disabled());
    let reference = clean.try_run(80).expect("fault-free");

    let mut o = build(seed, healing_cut(), Registry::disabled());
    let trace = o.try_run(80).expect("a healed cut must not abort the run");

    let outage = o.first_outage_period().expect("the cut must open an outage window");
    assert!(outage > 0, "a 40-op budget must survive period 0");
    // Strictly before the outage the two runs are bit-identical — the
    // supervisor machinery is invisible until a session dies.
    for (a, b) in reference.records[..outage].iter().zip(&trace.records[..outage]) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.control.airtime.to_bits(), b.control.airtime.to_bits(), "t={}", a.t);
        assert_eq!(a.control.mcs_cap, b.control.mcs_cap, "t={}", a.t);
        assert_eq!(a.obs.bs_power_w.to_bits(), b.obs.bs_power_w.to_bits(), "t={}", a.t);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "t={}", a.t);
    }
    // And the deviation is real: the outage window exists and perturbs
    // at least one record after its start.
    assert_ne!(reference, trace, "the outage must leave a trace");
}

#[test]
fn sticky_fallback_survives_an_unhealed_cut_with_half_open_probes() {
    let cfg = ChaosConfig::disabled().with_cut(LinkId::E2, 40);
    let mut o = build(3 + seed_offset(), cfg, Registry::disabled());
    let trace = o.try_run(120).expect("sticky fallback never aborts the run");
    assert_eq!(trace.len(), 120);
    assert_eq!(o.reconnects_ok(), 0, "the cut never heals");
    assert!(matches!(o.circuit_state(), CircuitState::Open { .. }), "{:?}", o.circuit_state());
    // After the budget is spent the supervisor keeps probing half-open:
    // strictly more failed attempts than the in-budget retries alone.
    let budget = u64::from(RecoveryPolicy::default().max_retries);
    assert!(
        o.reconnects_failed() > budget,
        "half-open probes must keep trying: {} failed vs budget {}",
        o.reconnects_failed(),
        budget
    );
    assert!(o.local_autonomy_periods() > 0);
}

#[test]
fn recovery_runs_are_bit_identical_across_reruns_and_thread_counts() {
    // A fleet of four healed-cut episodes per thread count, seeds fixed:
    // the supervisor's clocked state machine must not introduce any
    // wall-clock or scheduling dependence.
    let fleet = |threads: usize| -> Vec<(Trace, u64, u64, usize, Option<usize>)> {
        parallel_map_threads(threads, 4, |i| {
            let mut o = build(10 + i as u64 + seed_offset(), healing_cut(), Registry::disabled());
            let trace = o.try_run(60).expect("a healed cut must not abort the run");
            (
                trace,
                o.reconnects_ok(),
                o.reconnects_failed(),
                o.local_autonomy_periods(),
                o.first_outage_period(),
            )
        })
    };
    let sequential = fleet(1);
    let parallel = fleet(4);
    assert_eq!(sequential.len(), 4);
    for ((t1, ok1, f1, la1, w1), (t2, ok2, f2, la2, w2)) in sequential.iter().zip(&parallel) {
        assert_eq!(t1, t2, "traces must be bit-identical across thread counts");
        assert_eq!((ok1, f1, la1, w1), (ok2, f2, la2, w2));
        assert!(*ok1 >= 1);
    }
    // And a plain rerun reproduces the sequential fleet exactly.
    assert_eq!(sequential, fleet(1));
}

#[test]
fn fallback_mode_parses_the_operator_knob_values() {
    assert_eq!("".parse::<FallbackMode>().unwrap(), FallbackMode::Sticky);
    assert_eq!("sticky".parse::<FallbackMode>().unwrap(), FallbackMode::Sticky);
    assert_eq!("off".parse::<FallbackMode>().unwrap(), FallbackMode::Off);
    assert!("panic".parse::<FallbackMode>().is_err());
}

//! The parallel multi-seed runner must be a pure optimization: same
//! seeds in, bit-identical traces out, regardless of thread count or
//! scheduling. Each repetition owns its environment, agent and O-RAN
//! chain, so the only way runs could differ is shared mutable state —
//! which is exactly what this test guards against.

use edgebol_bench::{parallel_map, run_once, run_reps, try_run_reps, worker_threads};
use edgebol_core::agent::{Agent, EdgeBolAgent};
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_testbed::{Calibration, Environment, FlowTestbed, Scenario};

const REPS: usize = 6;
const PERIODS: usize = 15;

fn spec() -> ProblemSpec {
    ProblemSpec::new(1.0, 8.0, 0.5, 0.4)
}

fn env_factory(seed: u64) -> Box<dyn Environment> {
    Box::new(FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 0x7A + seed))
}

fn agent_factory(seed: u64) -> Box<dyn Agent> {
    Box::new(EdgeBolAgent::quick_for_tests(&spec(), 0x11 + seed))
}

/// The sequential reference: the exact loop `run_reps` replaced.
fn sequential_reps() -> Vec<Trace> {
    (0..REPS as u64)
        .map(|seed| {
            run_once(env_factory(seed), agent_factory(seed), spec(), PERIODS, false, Vec::new())
        })
        .collect()
}

#[test]
fn parallel_and_sequential_traces_are_bit_identical() {
    let parallel = run_reps(REPS, PERIODS, spec(), env_factory, agent_factory);
    let sequential = sequential_reps();
    assert_eq!(parallel.len(), sequential.len());
    // Structural equality over every record (context, control, KPIs,
    // cost, satisfaction) ...
    assert_eq!(parallel, sequential);
    // ... and bit-level equality of the float series, which `==` alone
    // would not distinguish from mere value equality (-0.0 vs 0.0).
    for (p, s) in parallel.iter().zip(&sequential) {
        let pc: Vec<u64> = p.costs().iter().map(|c| c.to_bits()).collect();
        let sc: Vec<u64> = s.costs().iter().map(|c| c.to_bits()).collect();
        assert_eq!(pc, sc);
    }
}

#[test]
fn try_run_reps_collects_per_seed_results_in_seed_order() {
    let results = try_run_reps(REPS, PERIODS, spec(), env_factory, agent_factory);
    assert_eq!(results.len(), REPS);
    let sequential = sequential_reps();
    for (seed, (r, want)) in results.into_iter().zip(sequential).enumerate() {
        let trace = r.unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert_eq!(trace, want, "seed {seed} diverged");
    }
}

#[test]
fn parallel_map_matches_sequential_map_under_load() {
    // Plain-function sanity check decoupled from the orchestrator:
    // heavier jobs at low indices force out-of-order completion.
    let f = |i: usize| -> u64 {
        let mut acc = 0xABCD ^ i as u64;
        for _ in 0..(200 - i) * 500 {
            acc = acc.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        }
        acc
    };
    let parallel = parallel_map(200, f);
    let sequential: Vec<u64> = (0..200).map(f).collect();
    assert_eq!(parallel, sequential);
    assert!(worker_threads() >= 1);
}

//! Crash-consistent checkpoint/restore integration tests: a fleet
//! whose slices are killed mid-run and restarted from their latest
//! snapshot must produce bit-identical per-slice outcomes to the
//! uninterrupted run, and every restore failure must degrade to a
//! counted cold start — never a panic, never silent corruption.
//!
//! `EDGEBOL_CHAOS_SEED` varies the fleet seed, so CI's stress loop
//! replays these invariants across 10 seeds.

use edgebol_fleet::{Fleet, FleetConfig};
use edgebol_metrics::Registry;
use edgebol_oran::HealthHandle;
use edgebol_trace::Journal;
use std::path::PathBuf;
use std::sync::Arc;

/// The stress-loop seed: CI replays the suite with
/// `EDGEBOL_CHAOS_SEED=0..9`; locally the default matches the fleet
/// quick config.
fn chaos_seed() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(7)
}

/// A fresh scratch directory for one test's checkpoints.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "edgebol-ckpt-test-{}-{}-{}",
        name,
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An under-capacity, decoupled fleet: contention factor pinned at 1.0
/// (load never exceeds capacity) and no warm-start transfer, so no
/// slice's trajectory depends on another slice's progress — the
/// preconditions for kill/restore bit-identity.
fn decoupled_cfg(slices: usize) -> FleetConfig {
    let mut cfg = FleetConfig::quick(slices);
    cfg.periods = 20;
    cfg.stagger = 0; // everyone spawns at period 0: first checkpoint covers all
    cfg.warm_start = false;
    cfg.seed = chaos_seed();
    cfg.threads = Some(2);
    cfg
}

#[test]
fn kill_restore_resumes_bit_identically_to_the_uninterrupted_run() {
    let baseline = Fleet::new(decoupled_cfg(4)).run();

    let dir = scratch("bitident");
    let mut cfg = decoupled_cfg(4);
    cfg.ckpt_dir = Some(dir.clone());
    cfg.ckpt_every = 8; // checkpoints after periods 7, 15, ...
    cfg.kill_schedule = vec![(1, 10), (2, 12)]; // both past the first boundary
    let chaotic = Fleet::new(cfg).run();

    assert_eq!(chaotic.kills, 2, "{}", chaotic.summary());
    assert_eq!(chaotic.restores, 2, "{}", chaotic.summary());
    assert_eq!(chaotic.cold_restores, 0, "{}", chaotic.summary());
    assert_eq!(chaotic.failed, 0, "{}", chaotic.summary());

    // Every slice — killed or not — ends with the exact outcome of the
    // fault-free run: the restore rewound to the snapshot and re-ran
    // the lost periods through identical state.
    assert_eq!(baseline.slices.len(), chaotic.slices.len());
    for (a, b) in baseline.slices.iter().zip(&chaotic.slices) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.spawned_at, b.spawned_at, "slice {}", a.id);
        assert_eq!(a.periods, b.periods, "slice {}", a.id);
        assert_eq!(a.convergence_period, b.convergence_period, "slice {}", a.id);
        assert_eq!(a.mean_cost.to_bits(), b.mean_cost.to_bits(), "slice {}", a.id);
        assert_eq!(a.early_cost.to_bits(), b.early_cost.to_bits(), "slice {}", a.id);
        assert_eq!(a.tail_cost.to_bits(), b.tail_cost.to_bits(), "slice {}", a.id);
        assert_eq!(a.satisfaction.to_bits(), b.satisfaction.to_bits(), "slice {}", a.id);
    }
    // Re-run periods are not double-counted in the recomputed totals.
    assert_eq!(baseline.slice_periods, chaotic.slice_periods);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn three_kill_restore_cycles_survive_with_zero_cold_starts() {
    let dir = scratch("cycles");
    let journal = Arc::new(Journal::new());
    let health = HealthHandle::new();
    let mut cfg = FleetConfig::quick(6);
    cfg.periods = 40;
    cfg.seed = chaos_seed();
    cfg.ckpt_every = 8;
    cfg.ckpt_dir = Some(dir.clone());
    cfg.kill_schedule = vec![(0, 10), (1, 18), (2, 26)];
    let reg = Registry::new();
    let report = Fleet::new(cfg)
        .with_journal(journal.clone())
        .with_health(health.clone())
        .with_metrics(reg.clone())
        .run();

    assert_eq!(report.kills, 3, "{}", report.summary());
    assert_eq!(report.restores, 3, "{}", report.summary());
    assert_eq!(report.cold_restores, 0, "{}", report.summary());
    assert_eq!(report.failed, 0, "{}", report.summary());
    assert!(report.checkpoints > 0);

    // The restored slices re-registered their circuit state: after the
    // last restore the shared health handle reports healthy again.
    assert!(health.is_healthy());

    // Each restore journals the checkpoint period it rewound to and
    // the restore latency (satellite: slice_restored event).
    let events = journal.snapshot();
    let restored: Vec<_> = events.iter().filter(|e| e.kind == "slice_restored").collect();
    assert_eq!(restored.len(), 3, "journal kinds: {:?}", {
        let mut ks: Vec<&str> = events.iter().map(|e| e.kind).collect();
        ks.dedup();
        ks
    });
    for ev in &restored {
        let keys: Vec<&str> = ev.fields.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"ckpt_period"), "fields: {:?}", ev.fields);
        assert!(keys.contains(&"restore_us"), "fields: {:?}", ev.fields);
    }
    assert_eq!(events.iter().filter(|e| e.kind == "slice_killed").count(), 3);

    // And the counters are visible on the metrics surface.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("edgebol_fleet_kills_total"), Some(3));
    assert_eq!(snap.counter("edgebol_fleet_restores_total"), Some(3));
    assert_eq!(snap.counter("edgebol_fleet_cold_restores_total"), Some(0));
    assert_eq!(snap.counter("edgebol_fleet_checkpoints_total"), Some(report.checkpoints));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_checkpoint_degrades_to_a_counted_cold_restart() {
    let dir = scratch("missing");
    let mut cfg = decoupled_cfg(2);
    cfg.ckpt_dir = Some(dir.clone());
    cfg.ckpt_every = 0; // cadence disabled: the kill finds no file
    cfg.kill_schedule = vec![(0, 3)];
    let report = Fleet::new(cfg.clone()).run();

    assert_eq!(report.kills, 1, "{}", report.summary());
    assert_eq!(report.restores, 0, "{}", report.summary());
    assert_eq!(report.cold_restores, 1, "{}", report.summary());
    assert_eq!(report.failed, 0, "{}", report.summary());
    // The cold-restarted slice still lives a full lifetime.
    assert!(report.slices.iter().all(|s| s.periods == cfg.periods), "{}", report.summary());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_a_typed_cold_start_not_a_panic() {
    let dir = scratch("corrupt");

    // First run writes real checkpoints.
    let mut seeder = decoupled_cfg(2);
    seeder.periods = 8;
    seeder.ckpt_dir = Some(dir.clone());
    seeder.ckpt_every = 4;
    let seeded = Fleet::new(seeder).run();
    assert!(seeded.checkpoints > 0);
    let victim = dir.join("slice-0.ckpt");
    let bytes = std::fs::read(&victim).expect("checkpoint exists");

    // Truncating mid-frame must yield a typed error on restore, which
    // the fleet turns into a counted cold start.
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let mut cfg = decoupled_cfg(2);
    cfg.periods = 8;
    cfg.ckpt_dir = Some(dir.clone());
    cfg.ckpt_every = 0; // never overwrite the corrupted file
    cfg.kill_schedule = vec![(0, 3)];
    let report = Fleet::new(cfg).run();

    assert_eq!(report.kills, 1, "{}", report.summary());
    assert_eq!(report.restores, 0, "{}", report.summary());
    assert_eq!(report.cold_restores, 1, "{}", report.summary());
    assert_eq!(report.failed, 0, "{}", report.summary());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_run_without_kills_matches_uncheckpointed_run_exactly() {
    // Writing checkpoints must be a pure observer: the summary of a
    // checkpointing run is byte-identical to the plain run's.
    let plain = Fleet::new(decoupled_cfg(3)).run();
    let dir = scratch("observer");
    let mut cfg = decoupled_cfg(3);
    cfg.ckpt_dir = Some(dir.clone());
    cfg.ckpt_every = 4;
    let observed = Fleet::new(cfg).run();
    assert_eq!(plain.summary(), observed.summary());
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end degraded-mode suite: full learning episodes run under the
//! deterministic chaos layer (`edgebol_oran::chaos`).
//!
//! The invariants pinned here:
//!
//! * **Transparency at rate 0** — a zero-rate chaos plan produces a trace
//!   byte-identical to a fault-free run, with an empty fault ledger.
//! * **Exact accounting** — under schedules whose faults cannot mask one
//!   another (drop + corrupt everywhere; delay only on the E2 receive
//!   lane), `Orchestrator::degraded_events` equals the ledger's
//!   degrading-fault count, and the per-stage counters sum to it.
//! * **Truthfulness** — the policy each trace record reports is exactly
//!   the one the E2 node last applied (or the quantized bootstrap
//!   fallback before any application): enforcement never silently
//!   diverges from the last acknowledged policy, at any fault rate.
//! * **Determinism** — two runs under the same seed yield identical
//!   traces and identical fault ledgers.
//! * **Lost links are circuit-broken, not degraded** — an unhealed link
//!   cut is absorbed by the reconnect supervisor; once the retry budget
//!   is spent, a run with fallback disabled fails fast with the typed
//!   `OrchestratorError::CircuitOpen`, at a deterministic period.
//!   (Healing cuts and sticky survival live in `tests/recovery.rs`.)
//!
//! `EDGEBOL_CHAOS_SEED` offsets every chaos seed (the CI stress step
//! loops it over ten values); the invariants hold for any seed.

use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::{Orchestrator, OrchestratorError};
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_oran::{
    ChaosConfig, FallbackMode, FaultKind, FaultRecord, LaneConfig, LinkId, MsgClass, RecoveryPolicy,
};
use edgebol_ran::Mcs;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

/// Seed offset for the CI chaos-stress loop (defaults to 0).
fn seed_offset() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn build(env_seed: u64, chaos: ChaosConfig) -> Orchestrator {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::chaos_suite(), env_seed);
    let agent = EdgeBolAgent::quick_for_tests(&spec, env_seed);
    Orchestrator::new_with_chaos(Box::new(env), Box::new(agent), spec, chaos)
        .expect("in-process setup never fails pre-arm")
}

/// One full episode; returns the trace plus the orchestrator for its
/// ledger/counters.
fn episode(env_seed: u64, periods: usize, chaos: ChaosConfig) -> (Trace, Orchestrator) {
    let mut o = build(env_seed, chaos);
    let trace = o.try_run(periods).expect("recoverable-only schedules never abort");
    (trace, o)
}

/// Asserts that every record's policy matches the last one the node
/// applied at that point (or the quantized bootstrap fallback).
fn assert_enforcement_truthful(trace: &Trace, o: &Orchestrator) {
    let log = o.enforcement_log();
    for r in &trace.records {
        match log.iter().rev().find(|&&(stamp, _)| stamp <= r.t) {
            Some(&(_, p)) => {
                assert_eq!(r.control.airtime, p.airtime, "period {}: stale airtime", r.t);
                assert_eq!(
                    r.control.mcs_cap,
                    Mcs::clamped(p.max_mcs as i64),
                    "period {}: stale MCS cap",
                    r.t
                );
            }
            None => {
                // Bootstrap: nothing ever enforced yet; the fallback is
                // the period-0 request, locally milli-quantized.
                let milli = r.control.airtime * 1000.0;
                assert!((milli - milli.round()).abs() < 1e-9, "unquantized bootstrap airtime");
                assert_eq!(r.control.airtime, trace.records[0].control.airtime);
            }
        }
    }
    // The orchestrator's own fallback pointer agrees with the node.
    if let Some(&(_, p)) = log.last() {
        assert_eq!(o.last_enforced(), Some(p));
    }
}

#[test]
fn zero_rate_chaos_is_byte_identical_to_fault_free() {
    let seed = 31 + seed_offset();
    // A plan with a live seed but all-zero rates...
    let (chaotic, o) = episode(seed, 40, ChaosConfig::uniform(777, LaneConfig::off()));
    // ...against the plain fault-free constructor.
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::chaos_suite(), seed);
    let agent = EdgeBolAgent::quick_for_tests(&spec, seed);
    let clean = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process setup")
        .try_run(40)
        .expect("in-process control plane");
    assert_eq!(chaotic, clean, "zero-rate chaos must be transparent");
    assert!(o.fault_ledger().is_empty());
    assert_eq!(o.degraded_events(), 0);
    assert_enforcement_truthful(&chaotic, &o);
}

#[test]
fn drop_corrupt_accounting_is_exact_and_deterministic() {
    // A full learning episode at three fault rates (0 is covered above).
    for (i, rate) in [0.05, 0.25].iter().enumerate() {
        let chaos_seed = 100 + i as u64 + seed_offset();
        let cfg = ChaosConfig::drop_corrupt(chaos_seed, *rate);
        let (t1, o1) = episode(17, 40, cfg.clone());
        let ledger = o1.fault_ledger();
        assert!(!ledger.is_empty(), "rate {rate} over 40 periods must inject");
        // Drop and corrupt faults cannot mask one another (nothing ever
        // re-creates a lost frame), so accounting is exact.
        assert_eq!(
            o1.degraded_events(),
            ledger.degrading_count(),
            "rate {rate}: degraded events must equal the ledger's degrading faults\n{:#?}",
            ledger.records()
        );
        assert_eq!(o1.degraded_by_stage().values().sum::<usize>(), o1.degraded_events());
        assert_enforcement_truthful(&t1, &o1);
        // Determinism: the same seeds reproduce trace and ledger exactly.
        let (t2, o2) = episode(17, 40, cfg);
        assert_eq!(t1, t2, "rate {rate}: trace must be reproducible");
        assert_eq!(ledger.records(), o2.fault_ledger().records());
    }
}

#[test]
fn delay_only_on_e2_rx_is_exactly_accounted() {
    // Delays on the xApp's E2 receive lane hit ControlAcks (benign: the
    // node already applied the policy) and Indications (degrading: the
    // period's KPI sample goes missing). No kind on this lane can mask
    // another, so accounting is exact here too.
    let cfg = ChaosConfig {
        seed: 400 + seed_offset(),
        a1_tx: LaneConfig::off(),
        a1_rx: LaneConfig::off(),
        e2_tx: LaneConfig::off(),
        e2_rx: LaneConfig { delay: 0.3, delay_ops: 2, ..LaneConfig::off() },
        cut: None,
        heal: None,
    };
    let (trace, o) = episode(18, 40, cfg);
    let ledger = o.fault_ledger();
    assert!(!ledger.is_empty());
    assert_eq!(o.degraded_events(), ledger.degrading_count());
    for r in ledger.records() {
        assert_eq!(r.kind, FaultKind::Delay);
        assert_eq!(r.link, LinkId::E2);
        // Degrading delayed frames are exactly the lost KPI indications;
        // a delayed (stale) sample must never be credited to a later
        // period, so each one stays a one-period degradation.
        assert_eq!(r.is_degrading(), r.msg == MsgClass::E2Indication, "{r:?}");
    }
    assert_enforcement_truthful(&trace, &o);
}

#[test]
fn all_kinds_with_bursts_never_panics_and_stays_truthful() {
    // Every fault kind at once, with burst windows tripling the rates:
    // exact accounting is impossible (a duplicated or delayed policy can
    // mask a later drop), so the invariants are no-panic, bounds and
    // truthfulness — plus full determinism.
    let mut lane = LaneConfig::all_kinds(0.15);
    lane.burst_every = 40;
    lane.burst_len = 10;
    lane.burst_mult = 3.0;
    let cfg = ChaosConfig { cut: None, ..ChaosConfig::uniform(900 + seed_offset(), lane) };
    let (t1, o1) = episode(19, 50, cfg.clone());
    assert_eq!(t1.len(), 50);
    let ledger = o1.fault_ledger();
    assert!(!ledger.is_empty());
    // Masking can hide a degrading fault but never invent a degraded
    // event without one.
    assert!(
        o1.degraded_events() <= ledger.degrading_count(),
        "degraded {} > degrading faults {}",
        o1.degraded_events(),
        ledger.degrading_count()
    );
    assert_eq!(o1.degraded_by_stage().values().sum::<usize>(), o1.degraded_events());
    // Airtime quantization survives arbitrary fault schedules.
    for r in &t1.records {
        let milli = r.control.airtime * 1000.0;
        assert!((milli - milli.round()).abs() < 1e-9, "airtime {}", r.control.airtime);
    }
    assert_enforcement_truthful(&t1, &o1);
    let (t2, o2) = episode(19, 50, cfg);
    assert_eq!(t1, t2);
    assert_eq!(ledger.records(), o2.fault_ledger().records());
}

#[test]
fn unhealed_link_cut_with_fallback_off_fails_fast_with_circuit_open() {
    let run = |link: LinkId| -> (usize, &'static str, String) {
        let cfg = ChaosConfig::disabled().with_cut(link, 40);
        let mut o = build(20, cfg)
            .with_recovery(RecoveryPolicy::default().with_fallback(FallbackMode::Off));
        for t in 0..200 {
            match o.try_step() {
                Ok(_) => {}
                Err(e) => {
                    assert!(!e.is_recoverable(), "an open circuit is not degraded mode: {e}");
                    assert!(!e.is_session_fatal(), "the verdict itself ends no session: {e}");
                    match e {
                        OrchestratorError::CircuitOpen { link: l, attempts } => {
                            assert_eq!(l, link, "the supervisor must attribute the lost link");
                            assert_eq!(attempts, RecoveryPolicy::default().max_retries);
                        }
                        ref other => panic!("expected CircuitOpen, got {other}"),
                    }
                    assert_eq!(e.stage(), "reconnect supervisor");
                    // The run burned the whole retry budget before giving
                    // up, never reconnecting across an unhealed cut.
                    assert_eq!(o.reconnects_ok(), 0);
                    assert!(
                        o.reconnects_failed() >= u64::from(RecoveryPolicy::default().max_retries)
                    );
                    // The cut is ledgered exactly once, as non-degrading
                    // (no heal scheduled: the outage is permanent).
                    let cuts: Vec<FaultRecord> = o
                        .fault_ledger()
                        .records()
                        .into_iter()
                        .filter(|r| r.kind == FaultKind::LinkCut)
                        .collect();
                    assert_eq!(cuts.len(), 1);
                    assert_eq!(cuts[0].link, link);
                    assert!(!cuts[0].is_degrading());
                    return (t, e.stage(), e.to_string());
                }
            }
        }
        panic!("open circuit never surfaced for {link:?}");
    };
    for link in [LinkId::A1, LinkId::E2] {
        let first = run(link);
        assert!(first.0 > 0, "a 40-op budget must survive period 0");
        // Fully deterministic: the circuit opens at the same period with
        // the same message on a rerun.
        assert_eq!(first, run(link));
    }
}

#[test]
fn distinct_chaos_seeds_yield_distinct_fault_schedules() {
    let (_, o1) = episode(21, 25, ChaosConfig::drop_corrupt(1 + seed_offset(), 0.15));
    let (_, o2) = episode(21, 25, ChaosConfig::drop_corrupt(2 + seed_offset(), 0.15));
    assert_ne!(
        o1.fault_ledger().records(),
        o2.fault_ledger().records(),
        "different seeds must produce different schedules"
    );
}

/// The invariant the whole suite leans on: `try_step` never returns a
/// recoverable error — message-level faults are always absorbed into
/// degraded mode, whatever the schedule throws at the chain.
#[test]
fn recoverable_faults_never_surface_as_errors() {
    let cfg = ChaosConfig::all_kinds(3000 + seed_offset(), 0.45);
    let mut o = build(22, cfg);
    for _ in 0..30 {
        if let Err(e) = o.try_step() {
            panic!("recoverable-only schedule surfaced {e} (stage {})", e.stage());
        }
    }
    assert!(!o.fault_ledger().is_empty());
}

/// `OrchestratorError` helpers used by callers to route recovery: a
/// `ControlPlane` wrapper carries its source and classifies along both
/// axes; a `CircuitOpen` verdict is terminal on both.
#[test]
fn orchestrator_error_classification_is_consistent() {
    let cut = ChaosConfig::disabled().with_cut(LinkId::E2, 10);
    let mut o =
        build(23, cut).with_recovery(RecoveryPolicy::default().with_fallback(FallbackMode::Off));
    let err = loop {
        match o.try_step() {
            Ok(_) => {}
            Err(e) => break e,
        }
    };
    match err {
        OrchestratorError::CircuitOpen { .. } => {
            assert!(!err.is_recoverable());
            assert!(!err.is_session_fatal());
            assert!(std::error::Error::source(&err).is_none(), "the verdict has no source");
        }
        ref other => panic!("fallback off must end in CircuitOpen, got {other}"),
    }
    // The wrapper variant keeps carrying its source and both axes.
    let wrapped = OrchestratorError::ControlPlane {
        stage: "near-RT poll (A1->E2)",
        source: edgebol_oran::OranError::ChannelClosed("chaos: E2 link cut"),
    };
    assert!(!wrapped.is_recoverable());
    assert!(wrapped.is_session_fatal());
    assert!(std::error::Error::source(&wrapped).is_some());
}

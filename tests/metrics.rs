//! Observability-layer invariants (DESIGN.md §8).
//!
//! * **Bit-stable snapshots** — under the fixed-seed regime, the
//!   non-wall-clock part of a metrics snapshot is identical across runs,
//!   and the counter part is identical across worker-thread counts.
//! * **Counters ≡ ledger** — under a chaos schedule, the live
//!   `edgebol_oran_faults_total{kind,link}` counters (incremented inside
//!   `FaultLedger::push`, a separate code path from the record vector)
//!   equal the ledger's per-kind/per-link totals.
//! * **Reset** — `Registry::reset` zeroes every series while keeping
//!   registrations and outstanding handles wired.
//! * **Lock-free recording** — concurrent increments/observations from
//!   many threads lose nothing.
//! * **Disabled-path neutrality** — an instrumented run produces a trace
//!   bit-identical to an uninstrumented one, and a disabled registry
//!   records nothing.
//!
//! `EDGEBOL_CHAOS_SEED` offsets the chaos seeds (the CI stress step
//! loops this suite over ten values); every invariant holds per seed.

use edgebol_bench::parallel_map_threads;
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_metrics::{MetricValue, Registry, Snapshot};
use edgebol_oran::{ChaosConfig, FallbackMode, FaultKind, LinkId, RecoveryPolicy};
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

/// Seed offset for the CI chaos-stress loop (defaults to 0).
fn seed_offset() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn build(env_seed: u64, chaos: ChaosConfig, metrics: Registry) -> Orchestrator {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::chaos_suite(), env_seed);
    let agent = EdgeBolAgent::quick_for_tests(&spec, env_seed);
    Orchestrator::new_instrumented(Box::new(env), Box::new(agent), spec, chaos, metrics)
        .expect("in-process setup never fails pre-arm")
}

/// One instrumented episode into a fresh registry.
fn episode(env_seed: u64, periods: usize, chaos: ChaosConfig) -> (Trace, Orchestrator, Snapshot) {
    let reg = Registry::new();
    let mut o = build(env_seed, chaos, reg.clone());
    let trace = o.try_run(periods).expect("recoverable-only schedules never abort");
    let snap = reg.snapshot();
    (trace, o, snap)
}

/// Strips the wall-clock series (step/rep latencies, utilization) whose
/// values legitimately vary run to run; everything left must be
/// bit-stable under a fixed seed.
fn deterministic_part(snap: &Snapshot) -> Snapshot {
    snap.filtered(|e| !e.name.contains("seconds") && !e.name.contains("utilization"))
}

#[test]
fn fixed_seed_snapshot_is_bit_stable_across_runs() {
    let seed = 3 + seed_offset();
    let chaos = || ChaosConfig::all_kinds(11 + seed_offset(), 0.08);
    let (t1, _, s1) = episode(seed, 30, chaos());
    let (t2, _, s2) = episode(seed, 30, chaos());
    assert_eq!(t1.costs(), t2.costs(), "fixed-seed traces must match bit-exactly");
    assert_eq!(deterministic_part(&s1), deterministic_part(&s2));
    // The stripped wall-clock series still recorded one sample per period.
    match s1.get("edgebol_core_step_latency_seconds") {
        Some(MetricValue::Histogram { count, .. }) => assert_eq!(*count, 30),
        other => panic!("expected step-latency histogram, got {other:?}"),
    }
    // And the rendered exposition text of the deterministic part is
    // itself reproducible (sorted-key snapshot order).
    assert_eq!(
        deterministic_part(&s1).render_prometheus(),
        deterministic_part(&s2).render_prometheus()
    );
}

/// Runs a small fleet of instrumented episodes through the explicit
/// thread-count runner, all recording into one shared registry, and
/// returns the counter part of the snapshot.
fn fleet_counters(threads: usize) -> Snapshot {
    let reg = Registry::new();
    let reg_ref = &reg;
    parallel_map_threads(threads, 6, |i| {
        let chaos = ChaosConfig::all_kinds(40 + seed_offset() + i as u64, 0.06);
        let mut o = build(7 + i as u64, chaos, reg_ref.clone());
        o.try_run(12).expect("recoverable-only schedules never abort");
    });
    reg.snapshot().filtered(|e| matches!(e.value, MetricValue::Counter(_)))
}

#[test]
fn counters_are_bit_stable_across_thread_counts() {
    let sequential = fleet_counters(1);
    let parallel = fleet_counters(4);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel);
}

#[test]
fn chaos_fault_counters_equal_ledger_totals() {
    let (_, o, snap) =
        episode(5 + seed_offset(), 40, ChaosConfig::all_kinds(9 + seed_offset(), 0.1));
    let ledger = o.fault_ledger();
    let records = ledger.records();
    assert!(!records.is_empty(), "0.1 rates over 40 periods must inject");
    let kinds = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::CorruptBitFlip,
        FaultKind::CorruptTruncate,
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::LinkCut,
    ];
    let mut counter_total = 0;
    for kind in kinds {
        for link in [LinkId::A1, LinkId::E2] {
            let key = format!(
                "edgebol_oran_faults_total{{kind=\"{}\",link=\"{}\"}}",
                kind.label(),
                link.label()
            );
            let counted = snap.counter(&key).unwrap_or(0);
            let ledgered =
                records.iter().filter(|r| r.kind == kind && r.link == link).count() as u64;
            assert_eq!(counted, ledgered, "{key} disagrees with the ledger");
            counter_total += counted;
        }
    }
    assert_eq!(counter_total, ledger.len() as u64, "no fault outside the kind×link grid");
    // Degraded counters mirror degraded_by_stage exactly.
    for (stage, n) in o.degraded_by_stage() {
        let key = format!("edgebol_core_degraded_total{{stage=\"{stage}\"}}");
        assert_eq!(snap.counter(&key), Some(*n as u64), "{key}");
    }
}

#[test]
fn link_cut_is_counted_once_and_lands_in_the_error_counter() {
    let reg = Registry::new();
    let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 25 + seed_offset() % 10);
    let mut o = build(2 + seed_offset(), chaos, reg.clone())
        .with_recovery(RecoveryPolicy::default().with_fallback(FallbackMode::Off));
    let err = o.try_run(200).expect_err("a cut with fallback disabled must surface");
    assert_eq!(err.stage(), "reconnect supervisor");
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("edgebol_oran_faults_total{kind=\"link_cut\",link=\"E2\"}"),
        Some(1),
        "the cut is counted exactly once"
    );
    let key = format!("edgebol_core_control_plane_errors_total{{stage=\"{}\"}}", err.stage());
    assert_eq!(snap.counter(&key), Some(1), "{key}");
    // Every resync attempt against the dead link is a counted failure,
    // no reconnect ever succeeds, and the circuit gauge ends latched
    // open (2) after some local-autonomy periods.
    assert_eq!(
        snap.counter("edgebol_oran_reconnects_total{link=\"E2\",outcome=\"failed\"}"),
        Some(u64::from(RecoveryPolicy::default().max_retries)),
    );
    // Pre-registered by the supervisor's handle resolution, never hit.
    assert_eq!(snap.counter("edgebol_oran_reconnects_total{link=\"E2\",outcome=\"ok\"}"), Some(0));
    assert_eq!(snap.gauge("edgebol_oran_circuit_state"), Some(2.0));
    assert!(snap.counter("edgebol_core_local_autonomy_periods_total").unwrap_or(0) > 0);
    // Completed periods were counted; the aborted one was not.
    let completed = snap.counter("edgebol_core_periods_total").unwrap();
    assert!(completed < 200, "the open circuit must abort the run early");
}

#[test]
fn reset_zeroes_every_series_and_keeps_handles_wired() {
    let reg = Registry::new();
    let mut o =
        build(4 + seed_offset(), ChaosConfig::all_kinds(3 + seed_offset(), 0.1), reg.clone());
    o.try_run(20).expect("recoverable-only schedules never abort");
    assert!(reg.snapshot().entries.iter().any(|e| e.value != MetricValue::Counter(0)));
    reg.reset();
    for e in reg.snapshot().entries {
        match e.value {
            MetricValue::Counter(v) => assert_eq!(v, 0, "{}", e.name),
            MetricValue::Gauge(v) => assert_eq!(v, 0.0, "{}", e.name),
            MetricValue::Histogram { buckets, count, sum, .. } => {
                assert_eq!(count, 0, "{}", e.name);
                assert_eq!(sum, 0.0, "{}", e.name);
                assert!(buckets.iter().all(|&b| b == 0), "{}", e.name);
            }
        }
    }
    // The orchestrator's pre-resolved handles still point at live cells.
    o.try_run(5).expect("runs fine after a reset");
    assert_eq!(reg.snapshot().counter("edgebol_core_periods_total"), Some(5));
}

#[test]
fn concurrent_recording_loses_no_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    let c = reg.counter("edgebol_test_hits_total");
    let h = reg.histogram("edgebol_test_values", &[0.25, 0.5, 0.75]);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    // Values cycle the buckets; each thread contributes a
                    // known per-bucket count.
                    h.observe((i % 4) as f64 * 0.25);
                }
            });
            let _ = t;
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(c.get(), total);
    assert_eq!(h.count(), total);
    match reg.snapshot().get("edgebol_test_values") {
        Some(MetricValue::Histogram { buckets, .. }) => {
            // 0.0 and 0.25 share the first bucket (le=0.25).
            assert_eq!(buckets, &vec![total / 2, total / 4, total / 4, 0]);
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn disabled_registry_records_nothing_and_does_not_perturb_the_run() {
    let seed = 6 + seed_offset();
    let chaos = || ChaosConfig::all_kinds(13 + seed_offset(), 0.08);
    let (instrumented, _, snap) = episode(seed, 25, chaos());
    assert!(!snap.is_empty());
    // Same seeds, disabled registry: the trace must be bit-identical —
    // the paper-facing numbers cannot depend on observability.
    let disabled = Registry::disabled();
    let mut o = build(seed, chaos(), disabled.clone());
    let plain = o.try_run(25).expect("recoverable-only schedules never abort");
    assert_eq!(instrumented.costs(), plain.costs());
    assert!(disabled.snapshot().is_empty());
    assert!(!disabled.is_enabled());
}

#[test]
fn global_registry_obeys_the_env_knob() {
    // This suite doesn't set EDGEBOL_METRICS; whatever the environment
    // says, the process-wide registry must agree with the parsed mode.
    let enabled = *edgebol_bench::metrics_mode() != edgebol_bench::MetricsMode::Off;
    assert_eq!(edgebol_bench::metrics().is_enabled(), enabled);
}

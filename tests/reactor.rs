//! Reactor-transport acceptance suite (DESIGN.md §10).
//!
//! The invariants pinned here:
//!
//! * **Transport equivalence** — a fixed-seed fig09 episode over the
//!   reactor transport is f64-bit-identical to the same episode over the
//!   poll-driven in-process transport, both fault-free and under the
//!   acceptance chaos schedule (`cut=e2@40,heal=e2@25`) with recovery
//!   supervision active on both paths. The quiescence-driven `try_recv`
//!   of [`edgebol_oran::ReactorLink`] is what makes this possible: a
//!   turn-driven socket never *silently* delivers less than the
//!   in-process queue would.
//! * **Scale** — one reactor thread sustains well over 100 concurrent E2
//!   sessions through a [`edgebol_oran::RicServer`], subscribing,
//!   collecting KPI indications and fanning a policy out to every node,
//!   with the session gauge and traffic counters flowing through
//!   `edgebol-metrics` (periods/sec from exactly these series is
//!   recorded in EXPERIMENTS.md).
//! * **Backend independence** — the portable nonblocking-sweep backend
//!   carries the same framed traffic as the epoll backend; readiness is
//!   a latency hint, never a correctness input.
//!
//! `EDGEBOL_CHAOS_SEED` offsets the environment seeds, like the other
//! chaos suites, so the CI stress loop can sweep seeds.

use bytes::BytesMut;
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_metrics::Registry;
use edgebol_oran::{
    ChaosConfig, E2Codec, E2Message, FramedTcp, KpiReport, OpsServer, OpsState, RadioPolicy,
    Reactor, ReactorBackend, RicServer, TransportKind,
};
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

/// Seed offset for the CI chaos-stress loop (defaults to 0).
fn seed_offset() -> u64 {
    std::env::var("EDGEBOL_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn build(env_seed: u64, chaos: ChaosConfig, transport: TransportKind) -> Orchestrator {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::recovery_suite(), env_seed);
    let agent = EdgeBolAgent::quick_for_tests(&spec, env_seed);
    Orchestrator::new_with_transport(
        Box::new(env),
        Box::new(agent),
        spec,
        chaos,
        Registry::disabled(),
        transport,
    )
    .expect("setup never fails pre-arm")
}

/// Asserts two traces agree f64-bit-for-bit on every record.
fn assert_bit_identical(poll: &Trace, reactor: &Trace) {
    assert_eq!(poll.len(), reactor.len(), "period counts diverge");
    for (a, b) in poll.records.iter().zip(&reactor.records) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.control.airtime.to_bits(), b.control.airtime.to_bits(), "t={}", a.t);
        assert_eq!(a.control.mcs_cap, b.control.mcs_cap, "t={}", a.t);
        assert_eq!(a.obs.bs_power_w.to_bits(), b.obs.bs_power_w.to_bits(), "t={}", a.t);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "t={}", a.t);
    }
    assert_eq!(poll, reactor, "full traces must match, not just the spot-checked fields");
}

#[test]
fn fig09_episode_is_bit_identical_across_transports() {
    let seed = 1 + seed_offset();
    let mut poll = build(seed, ChaosConfig::disabled(), TransportKind::Poll);
    let mut reactor = build(seed, ChaosConfig::disabled(), TransportKind::Reactor);
    assert_eq!(poll.transport(), TransportKind::Poll);
    assert_eq!(reactor.transport(), TransportKind::Reactor);

    let t_poll = poll.try_run(60).expect("fault-free poll run");
    let t_reactor = reactor.try_run(60).expect("fault-free reactor run");
    assert_bit_identical(&t_poll, &t_reactor);
}

#[test]
fn chaotic_healed_cut_is_bit_identical_across_transports() {
    // The acceptance schedule: cut E2 after 40 operations, heal 25
    // operations later. The chaos op-clock counts *above* the transport
    // and the reactor's quiescent delivery never reorders or drops
    // traffic, so the fault sequence — and with it the supervisor's
    // entire outage/resync trajectory — lands on the same operations.
    let seed = 2 + seed_offset();
    let chaos = ChaosConfig::from_spec("cut=e2@40,heal=e2@25").expect("valid spec");
    let mut poll = build(seed, chaos.clone(), TransportKind::Poll);
    let mut reactor = build(seed, chaos, TransportKind::Reactor);

    let t_poll = poll.try_run(80).expect("a healed cut must not abort the poll run");
    let t_reactor = reactor.try_run(80).expect("a healed cut must not abort the reactor run");
    assert_bit_identical(&t_poll, &t_reactor);

    // Recovery supervision was active — and identical — on both paths.
    assert!(poll.reconnects_ok() >= 1, "the cut must trigger a resync");
    assert_eq!(poll.reconnects_ok(), reactor.reconnects_ok());
    assert_eq!(poll.reconnects_failed(), reactor.reconnects_failed());
    assert_eq!(poll.local_autonomy_periods(), reactor.local_autonomy_periods());
    assert_eq!(poll.first_outage_period(), reactor.first_outage_period());
    assert_eq!(poll.session_epoch(), reactor.session_epoch());
}

#[test]
fn one_reactor_thread_sustains_a_hundred_e2_sessions() {
    use std::time::{Duration, Instant};

    // >100 concurrent sessions (the acceptance floor), each a real TCP
    // connection speaking framed E2 from its own blocking client thread;
    // the server side is one reactor driven by this thread only.
    const NODES: usize = 112;
    const KPIS_PER_NODE: usize = 3;

    let reg = Registry::new();
    let mut server = RicServer::bind("127.0.0.1:0", 1_000, reg.clone()).expect("bind");
    let addr = server.local_addr().to_string();

    let handles: Vec<_> = (0..NODES)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut tcp = FramedTcp::connect(&addr).expect("connect");
                let mut buf = BytesMut::new();
                buf.extend_from_slice(&tcp.recv().expect("sub req"));
                match E2Codec::decode(&mut buf).expect("decode sub") {
                    Some(E2Message::SubscriptionRequest { ran_function, .. }) => {
                        let resp = E2Message::SubscriptionResponse { ran_function };
                        tcp.send(&E2Codec::encode_to_bytes(&resp)).expect("sub resp");
                    }
                    other => panic!("node {i}: expected subscription, got {other:?}"),
                }
                for k in 0..KPIS_PER_NODE {
                    let kpi = E2Message::Indication(KpiReport {
                        t_ms: (i * KPIS_PER_NODE + k) as u64,
                        bs_power_mw: 5_000 + i as u64,
                        duty_milli: 500,
                        mean_mcs_centi: 2_000,
                    });
                    tcp.send(&E2Codec::encode_to_bytes(&kpi)).expect("kpi");
                }
                buf.extend_from_slice(&tcp.recv().expect("ctrl"));
                match E2Codec::decode(&mut buf).expect("decode ctrl") {
                    Some(E2Message::ControlRequest { .. }) => {
                        tcp.send(&E2Codec::encode_to_bytes(&E2Message::ControlAck)).expect("ack");
                    }
                    other => panic!("node {i}: expected control, got {other:?}"),
                }
            })
        })
        .collect();

    let started = Instant::now();
    let deadline = started + Duration::from_secs(60);
    let mut kpis = 0;
    while server.subscribed_count() < NODES || kpis < NODES * KPIS_PER_NODE {
        kpis += server.poll(1).kpis;
        assert!(
            Instant::now() < deadline,
            "stalled: {}/{NODES} subscribed, {kpis} kpis",
            server.subscribed_count()
        );
    }
    assert_eq!(server.session_count(), NODES, "every session concurrently live");
    // The gauge tracks the peak now, before the nodes hang up and get
    // reaped (which drives it back down — asserted after the join).
    assert_eq!(reg.snapshot().gauge("edgebol_oran_ricserver_sessions"), Some(NODES as f64));
    assert_eq!(
        server.broadcast_policy(RadioPolicy { airtime: 0.5, max_mcs: 20 }),
        NODES,
        "policy must fan out to every session"
    );
    let mut acks = 0;
    while acks < NODES {
        acks += server.poll(1).acks;
        assert!(Instant::now() < deadline, "acks stalled: {acks}/{NODES}");
    }
    for h in handles {
        h.join().expect("node thread");
    }

    // The whole episode flowed through the metrics layer; the smoke-bench
    // numbers in EXPERIMENTS.md are read off exactly these series.
    let elapsed = started.elapsed();
    let snap = reg.snapshot();
    let periods = snap.counter("edgebol_oran_ricserver_periods_total").expect("periods counter");
    assert_eq!(
        snap.counter("edgebol_oran_ricserver_kpi_total"),
        Some((NODES * KPIS_PER_NODE) as u64)
    );
    assert_eq!(snap.counter("edgebol_oran_ricserver_acks_total"), Some(NODES as u64));
    eprintln!(
        "reactor smoke: {NODES} sessions, {periods} server periods in {:.3}s ({:.0} periods/sec)",
        elapsed.as_secs_f64(),
        periods as f64 / elapsed.as_secs_f64().max(1e-9),
    );
}

/// One blocking HTTP GET: connect, request with `Connection: close`,
/// read to EOF. Returns (status code, body).
fn ops_get(addr: &str, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("ops connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status = raw.split_whitespace().nth(1).expect("status").parse().expect("code");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn http_churn_recycles_slots_without_disturbing_live_e2_sessions() {
    use std::time::{Duration, Instant};

    // 100+ sequential operator connections (each a full
    // connect/request/close cycle) hammer the ops surface of a RicServer
    // whose reactor is simultaneously holding a live, subscribed E2
    // session. The slab must recycle the vacated HTTP slots through its
    // free list — not grow — and the E2 session must survive untouched.
    const CHURN: usize = 120;

    let reg = Registry::new();
    let mut server = RicServer::bind("127.0.0.1:0", 1_000, reg.clone()).expect("bind");
    let ops = server.serve_ops("127.0.0.1:0", OpsState::new(reg.clone())).expect("ops bind");
    let ops_addr = ops.local_addr().to_string();
    let e2_addr = server.local_addr().to_string();

    // The node subscribes, reports one KPI, then holds its connection
    // open until released — provably alive across the whole churn.
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let node = std::thread::spawn(move || {
        let mut tcp = FramedTcp::connect(&e2_addr).expect("connect");
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&tcp.recv().expect("sub req"));
        match E2Codec::decode(&mut buf).expect("decode sub") {
            Some(E2Message::SubscriptionRequest { ran_function, .. }) => {
                let resp = E2Message::SubscriptionResponse { ran_function };
                tcp.send(&E2Codec::encode_to_bytes(&resp)).expect("sub resp");
            }
            other => panic!("expected subscription, got {other:?}"),
        }
        let kpi = E2Message::Indication(KpiReport {
            t_ms: 1,
            bs_power_mw: 5_000,
            duty_milli: 500,
            mean_mcs_centi: 2_000,
        });
        tcp.send(&E2Codec::encode_to_bytes(&kpi)).expect("kpi");
        // The post-churn policy fan-out: answer it, then hold the
        // connection open until the main thread is done asserting.
        buf.extend_from_slice(&tcp.recv().expect("ctrl"));
        match E2Codec::decode(&mut buf).expect("decode ctrl") {
            Some(E2Message::ControlRequest { .. }) => {
                tcp.send(&E2Codec::encode_to_bytes(&E2Message::ControlAck)).expect("ack");
            }
            other => panic!("expected control, got {other:?}"),
        }
        release_rx.recv().expect("released");
    });

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut kpis = 0;
    while server.subscribed_count() < 1 || kpis < 1 {
        kpis += server.poll(1).kpis;
        assert!(Instant::now() < deadline, "E2 session never came up");
    }
    let baseline_conns = server.reactor().connections();
    let baseline_slots = server.reactor().slot_count();
    assert_eq!(baseline_conns, 1, "exactly the E2 session");

    let churner = std::thread::spawn(move || {
        for i in 0..CHURN {
            let (code, body) = ops_get(&ops_addr, "/healthz");
            assert_eq!(code, 200, "churn request {i}");
            assert!(body.starts_with("ok"), "churn request {i}: {body:?}");
        }
    });
    while !churner.is_finished() {
        server.poll(1);
        assert!(Instant::now() < deadline, "churn stalled");
    }
    churner.join().expect("churn thread");

    // Drain until the last HTTP connection is reaped, then the slab must
    // be back at its pre-churn shape: same live connections, and at most
    // two extra high-water slots (a fresh accept can land in the same
    // turn before the finished conversation's reap runs) despite 100+
    // registrations having cycled through.
    while server.reactor().connections() > baseline_conns {
        server.poll(1);
        assert!(Instant::now() < deadline, "hangup reaping stalled");
    }
    assert_eq!(server.reactor().connections(), baseline_conns);
    assert!(
        server.reactor().slot_count() <= baseline_slots + 2,
        "slab grew under churn: {} slots from a baseline of {baseline_slots}",
        server.reactor().slot_count()
    );

    // The session rode out the storm: still subscribed, still answering.
    assert_eq!(server.session_count(), 1);
    assert_eq!(server.broadcast_policy(RadioPolicy { airtime: 0.5, max_mcs: 20 }), 1);
    let mut acks = 0;
    while acks < 1 {
        acks += server.poll(1).acks;
        assert!(Instant::now() < deadline, "ack after churn stalled");
    }
    release_tx.send(()).expect("release");
    node.join().expect("node thread");

    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("edgebol_oran_reactor_http_requests_total"),
        Some(CHURN as u64),
        "every churn request was served by the reactor's HTTP path"
    );
    assert!(
        snap.counter("edgebol_oran_reactor_accepts_total").unwrap_or(0) >= (CHURN + 1) as u64,
        "accepts must cover the E2 node and every churn connection"
    );
}

#[test]
fn fixed_seed_episode_is_unperturbed_by_http_churn() {
    // The bench wiring: the figure episode runs over the reactor
    // transport while an in-process ops surface absorbs an operator's
    // connect/request/close storm. The episode's trace must stay
    // f64-bit-identical to a quiet-process run of the same seed.
    const CHURN: usize = 120;
    let seed = 5 + seed_offset();

    let mut quiet = build(seed, ChaosConfig::disabled(), TransportKind::Reactor);
    let t_quiet = quiet.try_run(40).expect("quiet run");

    let reg = Registry::new();
    let ops = OpsServer::spawn("127.0.0.1:0", OpsState::new(reg)).expect("ops server");
    let ops_addr = ops.local_addr().to_string();
    let churner = std::thread::spawn(move || {
        for i in 0..CHURN {
            let (code, _) = ops_get(&ops_addr, if i % 2 == 0 { "/healthz" } else { "/metrics" });
            assert_eq!(code, 200, "churn request {i}");
        }
    });
    let mut stormy = build(seed, ChaosConfig::disabled(), TransportKind::Reactor);
    let t_stormy = stormy.try_run(40).expect("run under churn");
    churner.join().expect("churn thread");

    assert_bit_identical(&t_quiet, &t_stormy);
}

#[test]
fn sweep_backend_carries_the_same_framed_traffic() {
    // The portable fallback backend, pinned explicitly (no env knob, so
    // this holds even when CI exports EDGEBOL_REACTOR_BACKEND=epoll):
    // frames cross a sweep-polled pair exactly as they do under epoll.
    let reactor = Reactor::with_backend(ReactorBackend::Sweep).expect("sweep reactor");
    assert_eq!(reactor.backend(), ReactorBackend::Sweep);
    let (a, b) = reactor.pair().expect("loopback pair");
    for round in 0u32..32 {
        let payload = round.to_be_bytes().repeat(97); // spans several reads
        a.send(bytes::Bytes::from(payload.clone())).expect("send");
        let got = b.try_recv().expect("recv").expect("frame delivered");
        assert_eq!(&got[..], &payload[..], "round {round}");
    }
    drop(a);
    // Queued-then-closed drains cleanly: nothing was in flight, so the
    // very next receive reports the close.
    assert!(b.try_recv().is_err(), "dropped peer must surface as closed");
}

//! End-to-end learning tests: the full orchestration loop (agent ↔ O-RAN
//! control plane ↔ testbed) must learn, stay safe, and beat baselines.

use edgebol_bandit::{Constraints, ControlGrid, Oracle};
use edgebol_core::agent::{DdpgAgent, EdgeBolAgent};
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_testbed::{Calibration, ControlInput, DesTestbed, FlowTestbed, Scenario};

fn run_edgebol(spec: ProblemSpec, periods: usize, seed: u64) -> Trace {
    let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), seed);
    let agent = EdgeBolAgent::paper(&spec, seed);
    Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process setup")
        .try_run(periods)
        .expect("in-process control plane")
}

#[test]
fn converges_and_stays_safe_on_flow_testbed() {
    let spec = ProblemSpec::convergence(8.0);
    let trace = run_edgebol(spec, 120, 21);
    // Paper §6.2: converges within ~25 periods; constraints hold with
    // high probability upon convergence.
    assert!(trace.satisfaction_rate(30) > 0.9, "satisfaction {}", trace.satisfaction_rate(30));
    let early = trace.costs()[..12].iter().sum::<f64>() / 12.0;
    let late = trace.tail_mean_cost(20);
    assert!(late < early, "no learning: early {early:.1} late {late:.1}");
}

#[test]
fn learning_works_on_the_des_too() {
    // The learner never sees which fidelity it drives: the DES environment
    // must work through the same Orchestrator plumbing.
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = DesTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 22);
    let agent = EdgeBolAgent::paper(&spec, 22);
    let trace = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process setup")
        .try_run(60)
        .expect("in-process control plane");
    assert!(trace.satisfaction_rate(20) > 0.8, "satisfaction {}", trace.satisfaction_rate(20));
    assert!(trace.tail_mean_cost(10) < trace.costs()[..8].iter().sum::<f64>() / 8.0);
}

#[test]
fn oracle_gap_is_small_on_the_convergence_setting() {
    // Fig. 10's empirical optimality claim, in test form: converged cost
    // within 15% of the exhaustive-search optimum (the paper's testbed
    // reports single-digit gaps; ours is conservative because the safe
    // set backs off by the observation-noise quantile).
    let spec = ProblemSpec::convergence(8.0);
    let trace = run_edgebol(spec, 150, 23);
    let grid = ControlGrid::paper();
    let probe = FlowTestbed::new(Calibration::default(), Scenario::single_user(35.0), 0);
    let mut map_cache = std::collections::HashMap::new();
    let oracle =
        Oracle::search(&grid, &Constraints { d_max: spec.d_max, rho_min: spec.rho_min }, |idx| {
            let c = grid.coords(idx);
            let control = ControlInput::from_unit(c[0], c[1], c[2], c[3]);
            let ss = probe.steady_state(&[35.0], &control);
            let key = (control.resolution * 1000.0).round() as i64;
            let rho =
                *map_cache.entry(key).or_insert_with(|| probe.expected_map(control.resolution));
            (ss.server_power_w + spec.delta2 * ss.bs_power_w, ss.worst_delay_s(), rho)
        });
    assert!(oracle.feasible, "medium setting must be feasible");
    let gap = (trace.tail_mean_cost(20) - oracle.best_cost) / oracle.best_cost;
    assert!(
        gap < 0.15,
        "optimality gap {:.1}% (cost {:.1} vs oracle {:.1})",
        gap * 100.0,
        trace.tail_mean_cost(20),
        oracle.best_cost
    );
    // And the learner actually beats naive max-resources operation.
    let max_cost = {
        let ss = probe.steady_state(&[35.0], &ControlInput::max_resources());
        ss.server_power_w + spec.delta2 * ss.bs_power_w
    };
    assert!(trace.tail_mean_cost(20) < max_cost, "no saving vs max resources");
}

#[test]
fn edgebol_adapts_to_constraint_changes_faster_than_ddpg() {
    // The Fig. 14 comparison in miniature: after a constraint tightening
    // at t = 120, EdgeBOL must violate the new constraints substantially
    // less often than DDPG over the adjustment window.
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let schedule = vec![(120usize, 0.4, 0.55)];
    let run = |agent: Box<dyn edgebol_core::agent::Agent>| -> Trace {
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 24);
        let mut orch = Orchestrator::new(Box::new(env), agent, spec)
            .expect("in-process setup")
            .with_constraint_schedule(schedule.clone());
        orch.try_run(240).expect("in-process control plane")
    };
    let eb = run(Box::new(EdgeBolAgent::paper(&spec, 25)));
    let dd = run(Box::new(DdpgAgent::new(&spec, 25)));
    let viol =
        |t: &Trace| t.records[120..240].iter().filter(|r| !r.satisfied).count() as f64 / 120.0;
    let (v_eb, v_dd) = (viol(&eb), viol(&dd));
    assert!(v_eb < v_dd, "EdgeBOL should adapt better: {v_eb:.2} vs DDPG {v_dd:.2}");
    assert!(v_eb < 0.35, "EdgeBOL violation rate after change too high: {v_eb:.2}");
}

#[test]
fn multi_user_learning_close_to_oracle() {
    // Fig. 12 in test form, 4 heterogeneous users.
    let spec = ProblemSpec::new(1.0, 4.0, 3.0, 0.55);
    let scenario = Scenario::heterogeneous(4);
    // Full 150-scene dataset: the mAP observation noise of the fast
    // calibration widens the safe-set backoff enough to stall exploration
    // toward the (long-delay, low-power) optimum of this lax setting.
    let env = FlowTestbed::new(Calibration::default(), scenario.clone(), 0xC00);
    let agent = EdgeBolAgent::paper(&spec, 0x55);
    let trace = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process setup")
        .try_run(250)
        .expect("in-process control plane");

    let grid = ControlGrid::paper();
    let probe = FlowTestbed::new(Calibration::default(), scenario.clone(), 0);
    let snrs = [30.0, 24.0, 19.2, 15.36];
    let mut map_cache = std::collections::HashMap::new();
    let oracle =
        Oracle::search(&grid, &Constraints { d_max: spec.d_max, rho_min: spec.rho_min }, |idx| {
            let c = grid.coords(idx);
            let control = ControlInput::from_unit(c[0], c[1], c[2], c[3]);
            let ss = probe.steady_state(&snrs, &control);
            let key = (control.resolution * 1000.0).round() as i64;
            let rho =
                *map_cache.entry(key).or_insert_with(|| probe.expected_map(control.resolution));
            (ss.server_power_w + spec.delta2 * ss.bs_power_w, ss.worst_delay_s(), rho)
        });
    assert!(oracle.feasible);
    let gap = (trace.tail_mean_cost(20) - oracle.best_cost) / oracle.best_cost;
    assert!(gap < 0.20, "multi-user gap {:.1}%", gap * 100.0);
}

//! Integration tests of the O-RAN control plane across crate boundaries:
//! A1 JSON and E2 binary frames over both the in-process and the TCP
//! transports, and their use by the orchestrator.

use bytes::{Bytes, BytesMut};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_oran::{
    duplex_pair, A1Message, E2Codec, E2Message, E2Node, FramedTcp, KpiReport, NearRtRic, NonRtRic,
    PolicyStatus, RadioPolicy, RicEvent,
};
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::thread;

#[test]
fn a1_json_interoperates_with_e2_binary_end_to_end() {
    // Full chain: policy in as JSON, control out as binary, ack back up.
    let (a1_up, a1_down) = duplex_pair();
    let (e2_up, e2_down) = duplex_pair();
    let applied = Arc::new(Mutex::new(Vec::new()));
    let sink = applied.clone();
    let mut node = E2Node::new(e2_down, Box::new(move |p| sink.lock().unwrap().push(p)));
    let mut nonrt = NonRtRic::new(a1_up);
    let mut nearrt = NearRtRic::new(a1_down, e2_up);

    for (airtime, mcs) in [(1.0, 28u8), (0.75, 20), (0.5, 12), (0.25, 4)] {
        nonrt.put_policy(RadioPolicy { airtime, max_mcs: mcs }).unwrap();
        nearrt.poll().unwrap();
        node.poll().unwrap();
        nearrt.poll().unwrap();
        let events = nonrt.poll().unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, RicEvent::PolicyFeedback { status: PolicyStatus::Enforced, .. })));
    }
    let applied = applied.lock().unwrap();
    assert_eq!(applied.len(), 4);
    assert_eq!(applied[2], RadioPolicy { airtime: 0.5, max_mcs: 12 });
}

#[test]
fn e2_frames_survive_arbitrary_tcp_fragmentation() {
    // Encode a burst of messages, ship them over TCP in one frame each,
    // decode at the far end from a rolling buffer.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let msgs: Vec<E2Message> = (0..50)
        .map(|i| {
            E2Message::Indication(KpiReport {
                t_ms: i,
                bs_power_mw: 4_000 + i,
                duty_milli: (i % 1000) as u16,
                mean_mcs_centi: (i % 2800) as u16,
            })
        })
        .collect();
    let expect = msgs.clone();
    let server = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut t = FramedTcp::new(stream);
        let mut rx = BytesMut::new();
        let mut got = Vec::new();
        while got.len() < expect.len() {
            let frame = t.recv().unwrap();
            rx.extend_from_slice(&frame);
            while let Some(m) = E2Codec::decode(&mut rx).unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, expect);
    });
    let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
    // Batch several E2 frames per TCP frame to force buffer-boundary
    // handling at the receiver.
    let mut batch = BytesMut::new();
    for (i, m) in msgs.iter().enumerate() {
        E2Codec::encode(m, &mut batch);
        if i % 7 == 6 {
            client.send(&batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        client.send(&batch).unwrap();
    }
    server.join().unwrap();
}

#[test]
fn a1_frames_cross_tcp_as_utf8_json() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut t = FramedTcp::new(stream);
        let frame = t.recv().unwrap();
        let msg = A1Message::from_json(std::str::from_utf8(&frame).unwrap()).unwrap();
        match msg {
            A1Message::PutPolicy { policy, .. } => {
                assert_eq!(policy.max_mcs, 17);
                // Reply with feedback.
                let fb = A1Message::Feedback {
                    policy_id: edgebol_oran::PolicyId("p".into()),
                    status: PolicyStatus::Enforced,
                };
                t.send(fb.to_json().as_bytes()).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
    });
    let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
    let put = A1Message::PutPolicy {
        policy_id: edgebol_oran::PolicyId("p".into()),
        policy_type: edgebol_oran::A1_POLICY_TYPE_RADIO,
        policy: RadioPolicy { airtime: 0.42, max_mcs: 17 },
    };
    client.send(put.to_json().as_bytes()).unwrap();
    let reply = client.recv().unwrap();
    let msg = A1Message::from_json(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(matches!(msg, A1Message::Feedback { status: PolicyStatus::Enforced, .. }));
    server.join().unwrap();
}

#[test]
fn orchestrator_policies_actually_transit_the_control_plane() {
    // Every control applied by the orchestrator must have passed the
    // A1 -> E2 chain: airtime is quantized to milli-units and the mcs cap
    // is byte-valued, both artifacts of the wire formats.
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 31);
    let agent = EdgeBolAgent::quick_for_tests(&spec, 31);
    let trace = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process setup")
        .try_run(15)
        .expect("in-process control plane");
    for r in &trace.records {
        let milli = r.control.airtime * 1000.0;
        assert!(
            (milli - milli.round()).abs() < 1e-9,
            "airtime {} did not pass E2 ControlRequest quantization",
            r.control.airtime
        );
        assert!(r.control.mcs_cap.index() <= 28);
    }
}

#[test]
fn corrupted_e2_stream_is_rejected_not_misparsed() {
    let (up, down) = duplex_pair();
    let mut node = E2Node::new(down, Box::new(|_| {}));
    // A frame with a valid length header but garbage tag.
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&3u32.to_be_bytes());
    buf.extend_from_slice(&[0xFF, 0x01, 0x02]);
    up.send(Bytes::from(buf.to_vec())).unwrap();
    assert!(node.poll().is_err(), "garbage must surface as a codec error");
}

//! Fleet-layer integration tests: warm-start transfer correctness,
//! graceful out-of-range degradation, admission accounting, and
//! byte-stable reports across thread counts.

use edgebol_fleet::{Fleet, FleetConfig};
use edgebol_metrics::Registry;
use edgebol_trace::{Journal, Layer};
use std::sync::Arc;

/// A small two-wave fleet: 2 seed slices at period 0, 6 late slices at
/// period 8, each living 16 periods.
fn small_cfg(warm: bool) -> FleetConfig {
    let mut cfg = FleetConfig::quick(8);
    cfg.periods = 16;
    cfg.stagger = 8;
    cfg.warm_start = warm;
    cfg.threads = Some(2);
    cfg
}

/// Mean first-8-period cost over the late wave — the price of the
/// learning phase (cold slices pay the max-resources warm-up box).
fn late_wave_early_cost(fleet: &edgebol_fleet::FleetReport) -> f64 {
    let late: Vec<&edgebol_fleet::SliceReport> =
        fleet.slices.iter().filter(|s| s.spawned_at > 0).collect();
    assert!(!late.is_empty(), "the late wave must exist");
    late.iter().map(|s| s.early_cost).sum::<f64>() / late.len() as f64
}

#[test]
fn warm_start_cuts_late_wave_convergence_vs_cold() {
    let warm = Fleet::new(small_cfg(true)).run();
    let cold = Fleet::new(small_cfg(false)).run();

    // Identical admission dynamics: both arms spawn every slice at the
    // same period and run the same number of slice-periods.
    assert_eq!(warm.slice_periods, cold.slice_periods);
    for (w, c) in warm.slices.iter().zip(&cold.slices) {
        assert_eq!(w.spawned_at, c.spawned_at, "slice {}", w.id);
    }

    // The late wave actually warm-started in the warm arm.
    assert!(warm.warm_spawns > 0, "no slice warm-started: {}", warm.summary());
    assert_eq!(cold.warm_spawns, 0);

    // Transfer buys convergence: the late wave's median convergence
    // period must not be worse than cold (in practice it collapses to
    // ~0 because the imported posterior skips warm-up entirely).
    let wc = warm.median_late_convergence().expect("warm late convergence");
    let cc = cold.median_late_convergence().expect("cold late convergence");
    assert!(wc <= cc, "warm median convergence {wc} > cold {cc}");

    // First-K-period regret: the cold late wave pays the max-resources
    // S_0 warm-up box; the warm late wave starts from the donor's
    // posterior and must not pay more over the same first 8 periods.
    let warm_early = late_wave_early_cost(&warm);
    let cold_early = late_wave_early_cost(&cold);
    assert!(
        warm_early <= cold_early,
        "warm first-8 cost {warm_early:.1} exceeds cold {cold_early:.1}"
    );
}

#[test]
fn out_of_range_context_degrades_to_cold_start_and_is_counted() {
    let mut cfg = small_cfg(true);
    // A negative transfer radius makes every donor out of range (two
    // quantized-CQI contexts can coincide exactly, so 0.0 would not):
    // each warm-eligible spawn must degrade to a cold start without
    // panicking.
    cfg.transfer_radius = -1.0;
    let reg = Registry::new();
    let report = Fleet::new(cfg.clone()).with_metrics(reg.clone()).run();

    assert_eq!(report.warm_spawns, 0, "{}", report.summary());
    assert_eq!(report.cold_spawns as usize, cfg.slices);
    assert!(report.transfer_out_of_range > 0, "{}", report.summary());
    assert!(report.slices.iter().all(|s| s.periods == cfg.periods));

    // The degradation is visible on the metrics surface.
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("edgebol_fleet_transfer_out_of_range_total"),
        Some(report.transfer_out_of_range)
    );
    assert_eq!(
        snap.counter("edgebol_fleet_spawned_total{mode=\"cold\"}"),
        Some(report.cold_spawns)
    );
    assert_eq!(snap.counter("edgebol_fleet_spawned_total{mode=\"warm\"}"), Some(0));
}

#[test]
fn report_summary_is_byte_stable_across_thread_counts() {
    let mut one = small_cfg(true);
    one.threads = Some(1);
    let mut four = small_cfg(true);
    four.threads = Some(4);
    let r1 = Fleet::new(one).run();
    let r4 = Fleet::new(four).run();
    assert_eq!(r1.summary(), r4.summary());
    // Per-slice outcomes match bit-for-bit, not just in aggregate.
    assert_eq!(r1.slices.len(), r4.slices.len());
    for (a, b) in r1.slices.iter().zip(&r4.slices) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.spawned_at, b.spawned_at);
        assert_eq!(a.warm, b.warm);
        assert_eq!(a.donor, b.donor);
        assert_eq!(a.convergence_period, b.convergence_period);
        assert!(a.mean_cost.to_bits() == b.mean_cost.to_bits(), "slice {}", a.id);
    }
}

#[test]
fn admission_caps_concurrency_and_every_slice_still_runs() {
    let mut cfg = FleetConfig::quick(6);
    cfg.cells = 1;
    cfg.periods = 8;
    cfg.stagger = 0; // everyone eligible at once: the queue must drain in shifts
    cfg.warm_start = false;
    cfg.gpu_capacity = 0.3;
    cfg.overcommit = 1.0;
    cfg.threads = Some(2);
    let reg = Registry::new();
    let report = Fleet::new(cfg.clone()).with_metrics(reg.clone()).run();

    assert!(report.admission_rejected > 0, "{}", report.summary());
    assert!(report.admission_retries >= report.admission_rejected);
    // Nobody starves: every slice eventually runs its full lifetime,
    // which forces the lockstep driver past one slice-generation.
    assert_eq!(report.slices.len(), cfg.slices);
    assert!(report.slices.iter().all(|s| s.periods == cfg.periods));
    assert!(report.total_periods > cfg.periods, "no queueing happened");
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("edgebol_fleet_admission_rejected_total"),
        Some(report.admission_rejected)
    );
}

#[test]
fn fleet_journals_slice_lifecycle_events() {
    let journal = Arc::new(Journal::new());
    let mut cfg = small_cfg(true);
    cfg.slices = 4;
    let report = Fleet::new(cfg).with_journal(journal.clone()).run();
    assert_eq!(report.slices.len(), 4);

    let events = journal.snapshot();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.layer == Layer::Fleet));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"slice_spawned"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"slice_retired"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"fleet_done"), "kinds: {kinds:?}");
    assert_eq!(kinds.iter().filter(|k| **k == "slice_spawned").count(), 4);
    assert_eq!(kinds.iter().filter(|k| **k == "slice_retired").count(), 4);
}

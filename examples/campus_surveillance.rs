//! Campus surveillance: a multi-camera slice under day/night electricity
//! pricing.
//!
//! ```text
//! cargo run --example campus_surveillance
//! ```
//!
//! Four camera users with heterogeneous channels share the slice. The
//! operator reprices vBS energy at night (the paper motivates δ2 with
//! exactly this: "the price of electricity … may vary between day and
//! night depending on the rates set by the power suppliers"): daytime
//! δ2 = 2, night-time δ2 = 16 (the small cell switches to its battery
//! budget). Each tariff phase runs its own EdgeBOL agent — the cost
//! function changes, so the cost GP must be relearned — and the example
//! shows the converged policies shifting power away from whichever
//! resource became expensive.

use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn run_phase(label: &str, delta2: f64, periods: usize, seed: u64) -> Trace {
    let spec = ProblemSpec::new(1.0, delta2, 3.0, 0.5);
    let env = FlowTestbed::new(Calibration::default(), Scenario::heterogeneous(4), seed);
    let agent = EdgeBolAgent::paper(&spec, seed);
    let mut orch = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process O-RAN chain wires up");
    let trace = orch.try_run(periods).expect("in-process control plane");
    let u = trace.tail_mean_control(20);
    println!("--- {label} (delta2 = {delta2}) ---");
    println!("  converged cost            : {:>8.1} mu/period", trace.tail_mean_cost(20));
    println!(
        "  converged policies        : res {:.2}  airtime {:.2}  gpu {:.2}  mcs {:.2}",
        u[0], u[1], u[2], u[3]
    );
    println!(
        "  power split               : server {:>6.1} W | vBS {:>5.2} W",
        mean_tail(&trace.server_powers()),
        mean_tail(&trace.bs_powers()),
    );
    println!("  SLO satisfaction          : {:.1}%", trace.satisfaction_rate(15) * 100.0);
    trace
}

fn mean_tail(v: &[f64]) -> f64 {
    let n = v.len();
    v[n.saturating_sub(20)..].iter().sum::<f64>() / 20.0_f64.min(n as f64)
}

fn main() {
    println!("Campus surveillance slice: 4 cameras, SLO: delay <= 3 s, mAP >= 0.5\n");
    let day = run_phase("daytime tariff", 2.0, 150, 7);
    println!();
    let night = run_phase("night battery budget", 16.0, 150, 8);

    println!();
    let d_bs = mean_tail(&day.bs_powers());
    let n_bs = mean_tail(&night.bs_powers());
    println!(
        "vBS power, day vs night   : {:.2} W -> {:.2} W ({}) — pricier watts get trimmed",
        d_bs,
        n_bs,
        if n_bs < d_bs { "reduced" } else { "unchanged" }
    );
}

//! Quickstart: minimize the energy bill of an edge object-recognition
//! service while honouring delay and precision SLOs.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the flow-level testbed (a simulated srsRAN vBS + GPU server
//! closed loop), wires an EdgeBOL agent through the O-RAN control plane,
//! runs 80 orchestration periods and prints the learning progress.

use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    // The paper's §6.2 setting: server power at 1 mu/W, BS power at
    // 8 mu/W, delay SLO 0.4 s, precision SLO mAP >= 0.5.
    let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);

    // A single user with good wireless conditions (35 dB mean SNR).
    let env = FlowTestbed::new(Calibration::default(), Scenario::single_user(35.0), 42);
    let agent = EdgeBolAgent::paper(&spec, 42);

    let mut orch = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process O-RAN chain wires up");
    println!("t    cost     delay   mAP    server_W  bs_W   control [res, airtime, gpu, mcs]  ok");
    let mut trace = edgebol_core::trace::Trace::default();
    for t in 0..80 {
        // `try_step` surfaces control-plane failures as typed errors; the
        // in-process chain never loses a link, so failing is fatal here.
        let r = match orch.try_step() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("orchestration aborted at t = {t}: {e}");
                std::process::exit(1);
            }
        };
        if t % 5 == 0 || t < 3 {
            let u = r.control.to_unit();
            println!(
                "{:<4} {:<8.1} {:<7.3} {:<6.3} {:<9.1} {:<6.2} [{:.2}, {:.2}, {:.2}, {:.2}]  {}",
                r.t,
                r.cost,
                r.obs.delay_s,
                r.obs.map,
                r.obs.server_power_w,
                r.obs.bs_power_w,
                u[0],
                u[1],
                u[2],
                u[3],
                if r.satisfied { "yes" } else { "NO" }
            );
        }
        trace.records.push(r);
    }

    println!();
    println!("first 10 periods mean cost : {:>8.1} mu", mean(&trace.costs()[..10]));
    println!("last 10 periods mean cost  : {:>8.1} mu", trace.tail_mean_cost(10));
    println!(
        "constraint satisfaction (after warm-up): {:.1}%",
        trace.satisfaction_rate(15) * 100.0
    );
    println!(
        "energy saving vs always-max-resources: {:.1}%",
        (mean(&trace.costs()[..5]) - trace.tail_mean_cost(10)) / mean(&trace.costs()[..5]) * 100.0
    );
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

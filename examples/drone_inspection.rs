//! Drone inspection: a moving user, fast-fading context, and an SLO the
//! operator relaxes mid-mission.
//!
//! ```text
//! cargo run --example drone_inspection
//! ```
//!
//! A drone streams frames for defect detection while flying through good
//! and bad coverage (mean SNR stepping between 5 and 38 dB — the Fig. 13
//! setting). Halfway through, the operator relaxes the delay SLO from
//! 0.4 s to 0.6 s (the paper: EdgeBOL "can adapt if, for example, the
//! operator decides to relax [the constraints] during the system runtime
//! in order to avoid such infeasibilities"). The non-parametric safe set
//! is recomputed instantly for the new bounds — no relearning. This run
//! uses the subframe-level DES for full pipeline fidelity.

use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, DesTestbed, Scenario};

fn main() {
    let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
    let env = DesTestbed::new(Calibration::default(), Scenario::dynamic(), 11);
    let agent = EdgeBolAgent::paper(&spec, 11);
    let mut orch = Orchestrator::new(Box::new(env), Box::new(agent), spec)
        .expect("in-process O-RAN chain wires up")
        .with_constraint_schedule(vec![(75, 0.6, 0.5)]);
    orch.record_safe_set = true;

    println!("t    snr_zone  d_max  delay   mAP    |safe|   control [res, air, gpu, mcs]  ok");
    let scenario = Scenario::dynamic();
    let mut violations_before = 0;
    let mut violations_after = 0;
    for t in 0..150 {
        let r = orch.try_step().expect("in-process control plane");
        if t % 6 == 0 {
            let u = r.control.to_unit();
            println!(
                "{:<4} {:>5.0} dB  {:>5.2}  {:<7.3} {:<6.3} {:<8} [{:.2}, {:.2}, {:.2}, {:.2}]  {}",
                r.t,
                scenario.snr_db(0, r.t),
                orch.spec().d_max,
                r.obs.delay_s,
                r.obs.map,
                r.safe_set_size.unwrap_or(0),
                u[0],
                u[1],
                u[2],
                u[3],
                if r.satisfied { "yes" } else { "NO" }
            );
        }
        if t >= 20 {
            if t < 75 {
                violations_before += u32::from(!r.satisfied);
            } else {
                violations_after += u32::from(!r.satisfied);
            }
        }
    }
    println!();
    println!(
        "violations before SLO relaxation (t in 20..75): {violations_before} / 55 \
         (deep fades make d <= 0.4 s infeasible; EdgeBOL parks at S0)"
    );
    println!(
        "violations after  SLO relaxation (t in 75..150): {violations_after} / 75 \
         (the relaxed SLO reopens the safe set instantly; deep 5 dB fades remain hard)"
    );
}

//! Multi-node O-RAN control plane over real TCP sockets.
//!
//! ```text
//! cargo run --release --example oran_tcp_ric
//! EDGEBOL_NODES=128 EDGEBOL_ROUNDS=20 cargo run --release --example oran_tcp_ric
//! ```
//!
//! The Fig. 7 architecture at fleet scale: one [`RicServer`] — a single
//! reactor thread — terminates the E2 interface for `EDGEBOL_NODES`
//! O-eNB agents, each a blocking client thread speaking length-framed E2
//! over its own localhost socket. Every node completes the KPI
//! subscription handshake, then for `EDGEBOL_ROUNDS` rounds the server
//! broadcasts a radio policy to the whole fleet and collects one KPI
//! indication plus one control ack per node per round. Throughput is
//! read off the `edgebol-metrics` registry at the end (the numbers in
//! EXPERIMENTS.md §reactor come from exactly this binary).
//!
//! Knobs:
//!
//! * `EDGEBOL_NODES`  — fleet size (default 64).
//! * `EDGEBOL_ROUNDS` — policy/KPI rounds after the handshake (default 10).
//! * `EDGEBOL_REACTOR_BACKEND` — `epoll` (Linux default) or `sweep`.

use bytes::BytesMut;
use edgebol_metrics::Registry;
use edgebol_oran::{E2Codec, E2Message, FramedTcp, KpiReport, RadioPolicy, RicServer};
use std::thread;
use std::time::{Duration, Instant};

fn knob(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("{name} must be a positive integer: {v:?}")),
        Err(_) => default,
    }
}

/// One O-eNB agent: handshake, then per round send a KPI indication and
/// ack the broadcast policy. Runs on its own blocking thread.
fn cell_site(addr: String, node: usize, rounds: usize) {
    let mut tcp = FramedTcp::connect(&addr).expect("connect to RIC");
    let mut buf = BytesMut::new();
    let recv_msg = |tcp: &mut FramedTcp, buf: &mut BytesMut| -> E2Message {
        loop {
            if let Some(msg) = E2Codec::decode(buf).expect("decode") {
                return msg;
            }
            buf.extend_from_slice(&tcp.recv().expect("recv"));
        }
    };
    match recv_msg(&mut tcp, &mut buf) {
        E2Message::SubscriptionRequest { ran_function, .. } => {
            let resp = E2Message::SubscriptionResponse { ran_function };
            tcp.send(&E2Codec::encode_to_bytes(&resp)).expect("sub resp");
        }
        other => panic!("node {node}: expected subscription, got {other:?}"),
    }
    for round in 0..rounds {
        match recv_msg(&mut tcp, &mut buf) {
            E2Message::ControlRequest { .. } => {
                tcp.send(&E2Codec::encode_to_bytes(&E2Message::ControlAck)).expect("ack");
            }
            other => panic!("node {node}: expected control, got {other:?}"),
        }
        let kpi = E2Message::Indication(KpiReport {
            t_ms: (round * 1_000) as u64,
            bs_power_mw: 5_000 + node as u64,
            duty_milli: 450,
            mean_mcs_centi: 2_600,
        });
        tcp.send(&E2Codec::encode_to_bytes(&kpi)).expect("kpi");
    }
}

fn main() {
    let nodes = knob("EDGEBOL_NODES", 64);
    let rounds = knob("EDGEBOL_ROUNDS", 10);

    let reg = Registry::new();
    let mut server = RicServer::bind("127.0.0.1:0", 1_000, reg.clone()).expect("bind E2 endpoint");
    let addr = server.local_addr().to_string();
    println!(
        "E2-over-TCP listening on {addr} ({:?} backend): {nodes} nodes x {rounds} rounds",
        server.reactor().backend()
    );

    let handles: Vec<_> = (0..nodes)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || cell_site(addr, i, rounds))
        })
        .collect();

    let started = Instant::now();
    let deadline = started + Duration::from_secs(120);
    let overdue = || {
        assert!(Instant::now() < deadline, "fleet stalled — see session counters");
    };

    // Phase 1: the whole fleet connects and completes the KPI handshake.
    while server.subscribed_count() < nodes {
        server.poll(1);
        overdue();
    }
    let handshake = started.elapsed();
    println!(
        "[ric ] {} sessions subscribed on one reactor thread in {:.3}s",
        server.session_count(),
        handshake.as_secs_f64()
    );
    assert_eq!(server.session_count(), nodes, "every node holds a live session");

    // Phase 2: broadcast a policy per round, collect one KPI + one ack
    // per node per round.
    let policies =
        [RadioPolicy { airtime: 1.0, max_mcs: 28 }, RadioPolicy { airtime: 0.6, max_mcs: 22 }];
    let (mut kpis, mut acks) = (0usize, 0usize);
    for round in 0..rounds {
        let reached = server.broadcast_policy(policies[round % policies.len()]);
        assert_eq!(reached, nodes, "round {round}: policy must reach the whole fleet");
        let want = nodes * (round + 1);
        while kpis < want || acks < want {
            let r = server.poll(1);
            kpis += r.kpis;
            acks += r.acks;
            // A node hangs up right after its last ack, so closures are
            // legitimate in the final round (the drain contract delivered
            // its queued traffic first); before that they are a bug.
            if round + 1 < rounds {
                assert_eq!(r.closed, 0, "no session may die mid-run (round {round})");
            }
            overdue();
        }
    }
    let elapsed = started.elapsed();
    for h in handles {
        h.join().expect("cell-site thread");
    }

    // Throughput off the metrics registry — the single source the smoke
    // bench and EXPERIMENTS.md quote.
    let snap = reg.snapshot();
    let polls = snap.counter("edgebol_oran_ricserver_periods_total").unwrap_or(0);
    let kpi_total = snap.counter("edgebol_oran_ricserver_kpi_total").unwrap_or(0);
    let ack_total = snap.counter("edgebol_oran_ricserver_acks_total").unwrap_or(0);
    assert_eq!(kpi_total, (nodes * rounds) as u64);
    assert_eq!(ack_total, (nodes * rounds) as u64);
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "[ric ] {nodes} nodes x {rounds} rounds in {secs:.3}s: \
         {kpi_total} KPIs + {ack_total} acks over {polls} server polls"
    );
    println!(
        "[ric ] {:.0} node-periods/sec, {:.0} E2 frames/sec through one reactor thread",
        (nodes * rounds) as f64 / secs,
        // subscribe hs (2 per node) + per-round control/kpi/ack (3 each)
        (2 * nodes + 3 * nodes * rounds) as f64 / secs,
    );
}

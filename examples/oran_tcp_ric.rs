//! O-RAN control plane over real TCP sockets.
//!
//! ```text
//! cargo run --example oran_tcp_ric
//! ```
//!
//! Splits the Fig. 7 architecture across two threads connected by a
//! length-framed TCP transport on localhost: the "RIC side" (non-RT RIC
//! rApps + near-RT RIC xApps) and the "cell site" (O-eNB E2 agent in
//! front of the MAC scheduler). A1 policy JSON and binary E2 frames cross
//! the socket exactly as the in-process orchestration uses them —
//! demonstrating that the control plane is transport-agnostic.

use bytes::Bytes;
use edgebol_oran::{
    duplex_pair, E2Codec, E2Message, E2Node, FramedTcp, KpiReport, NearRtRic, NonRtRic,
    RadioPolicy, RicEvent,
};
use std::net::TcpListener;
use std::thread;
use std::time::Duration;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind E2 endpoint");
    let addr = listener.local_addr().expect("local addr");
    println!("E2-over-TCP listening on {addr}");

    // ---- Cell site thread: terminates E2, applies policies to the MAC. --
    let cell = thread::spawn(move || {
        let (stream, peer) = listener.accept().expect("accept RIC connection");
        println!("[cell] RIC connected from {peer}");
        let mut tcp = FramedTcp::new(stream);
        // Bridge: socket <-> in-process endpoint for the E2Node actor.
        let (wire, node_ep) = duplex_pair();
        let mut node = E2Node::new(
            node_ep,
            Box::new(|p: RadioPolicy| {
                println!(
                    "[cell] MAC reconfigured: airtime {:.1}%, MCS cap {}",
                    p.airtime * 100.0,
                    p.max_mcs
                );
            }),
        );
        // Serve a few control rounds, then emit KPI indications.
        for round in 0..4 {
            let frame = tcp.recv().expect("recv E2 frame");
            wire.send(frame).expect("bridge in");
            node.poll().expect("node poll");
            // Flush everything the node produced back onto the socket.
            for out in wire.drain().expect("drain bridge") {
                tcp.send(&out).expect("send E2 frame");
            }
            if round > 0 {
                // Periodic KPI indication (the power-meter sample path).
                node.indicate(KpiReport {
                    t_ms: round * 1_000,
                    bs_power_mw: 5_250 + round * 10,
                    duty_milli: 400,
                    mean_mcs_centi: 2_650,
                })
                .expect("indicate");
                for out in wire.drain().expect("drain bridge") {
                    tcp.send(&out).expect("send KPI frame");
                }
            }
        }
        println!("[cell] done");
    });

    // ---- RIC side: non-RT RIC + near-RT RIC over the socket. -----------
    thread::sleep(Duration::from_millis(50));
    let mut tcp = FramedTcp::connect(&addr.to_string()).expect("connect");
    let (a1_up, a1_down) = duplex_pair();
    let (e2_up, e2_wire) = duplex_pair();
    let mut nonrt = NonRtRic::new(a1_up);
    let mut nearrt = NearRtRic::new(a1_down, e2_up);

    nearrt.subscribe_kpis(1_000).expect("subscribe");
    let policies = [
        RadioPolicy { airtime: 1.0, max_mcs: 28 },
        RadioPolicy { airtime: 0.6, max_mcs: 22 },
        RadioPolicy { airtime: 0.35, max_mcs: 17 },
    ];
    let mut next_policy = 0;
    for _round in 0..4 {
        if next_policy < policies.len() {
            let id = nonrt.put_policy(policies[next_policy]).expect("put policy");
            println!(
                "[ric ] deploying {:?}: airtime {:.0}%, MCS cap {}",
                id,
                policies[next_policy].airtime * 100.0,
                policies[next_policy].max_mcs
            );
            next_policy += 1;
        }
        nearrt.poll().expect("nearrt poll");
        // Ship pending E2 frames over the socket, read the response.
        for frame in e2_wire.drain().expect("drain e2 wire") {
            tcp.send(&frame).expect("send");
        }
        let reply = tcp.recv().expect("recv");
        e2_wire.send(reply).expect("bridge");
        // Socket may carry an extra KPI frame; peek with the codec.
        let mut probe = bytes::BytesMut::new();
        if next_policy > 1 {
            if let Ok(extra) = tcp.recv() {
                probe.extend_from_slice(&extra);
                if let Ok(Some(E2Message::Indication(_))) = E2Codec::decode(&mut probe.clone()) {
                    e2_wire.send(Bytes::copy_from_slice(&extra)).expect("bridge KPI");
                }
            }
        }
        nearrt.poll().expect("nearrt poll 2");
        for ev in nonrt.poll().expect("nonrt poll") {
            match ev {
                RicEvent::PolicyFeedback { policy_id, status } => {
                    println!("[ric ] feedback for {policy_id:?}: {status:?}");
                }
                RicEvent::Kpi { t_ms, bs_power_w } => {
                    println!("[ric ] vBS power sample @ {t_ms} ms: {bs_power_w:.3} W");
                }
            }
        }
    }
    println!("[ric ] {} policies enforced end-to-end", nonrt.enforced_count());
    cell.join().expect("cell thread");
}

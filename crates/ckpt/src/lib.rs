//! Crash-consistent checkpoint format.
//!
//! A checkpoint file is a single self-describing blob:
//!
//! ```text
//! magic   "EBCK"          4 bytes
//! version u16 LE          format revision (currently 1)
//! kind    u8 len + bytes  payload discriminator ("edgebol", "fleet", ...)
//! len     u64 LE          payload length in bytes
//! crc     u32 LE          CRC-32 (IEEE) of the payload
//! payload len bytes
//! ```
//!
//! Three properties matter more than compactness:
//!
//! * **Crash consistency** — [`write_atomic`] writes a temp file in the
//!   same directory, fsyncs it, and renames it over the target, so a
//!   reader only ever sees the previous complete snapshot or the new
//!   complete snapshot, never a torn one. The directory is fsynced after
//!   the rename so the new name survives a power loss.
//! * **Typed failure** — every way a file can be wrong (missing,
//!   truncated, bit-flipped, from a different subsystem or a future
//!   format revision) surfaces as a [`CkptError`] variant, never a
//!   panic. Restore callers treat any error as "cold start".
//! * **Zero dependencies** — encoding is hand-rolled little-endian with
//!   bounds-checked reads ([`Enc`]/[`Dec`]), the checksum is a local
//!   CRC-32, and the only platform surface is `std::fs`.
//!
//! The payload grammar is owned by each subsystem (learner,
//! orchestrator, fleet registry); this crate only guarantees that what
//! was written is exactly what is read back, or a typed error.

#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current format revision written by [`write_atomic`].
pub const VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"EBCK";

/// Everything that can be wrong with a checkpoint file or payload.
#[derive(Debug)]
pub enum CkptError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the `EBCK` magic — not a checkpoint.
    BadMagic,
    /// The file was written by an unknown (future) format revision.
    UnsupportedVersion(
        /// The revision found in the header.
        u16,
    ),
    /// The file's kind discriminator names a different subsystem.
    WrongKind {
        /// The kind the reader asked for.
        expected: String,
        /// The kind found in the header.
        found: String,
    },
    /// The payload checksum does not match the header — bit rot or a
    /// torn write that somehow bypassed the atomic rename.
    CrcMismatch {
        /// The checksum recorded in the header.
        expected: u32,
        /// The checksum of the payload as read.
        found: u32,
    },
    /// The file or payload ends before a declared field — truncation.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A field decoded but its value is impossible (wrong dimensionality,
    /// unknown discriminant, inconsistent lengths).
    BadValue(
        /// What was wrong.
        String,
    ),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CkptError::WrongKind { expected, found } => {
                write!(f, "checkpoint kind {found:?}, expected {expected:?}")
            }
            CkptError::CrcMismatch { expected, found } => {
                write!(f, "checkpoint corrupt: crc {found:#010x}, header says {expected:#010x}")
            }
            CkptError::Truncated { needed, have } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, have {have}")
            }
            CkptError::BadValue(what) => write!(f, "checkpoint field invalid: {what}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built once.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 (IEEE) of `bytes` — the checksum stored in the header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames `payload` with the header and returns the complete file image.
pub fn encode_file(kind: &str, payload: &[u8]) -> Vec<u8> {
    assert!(kind.len() <= u8::MAX as usize, "kind discriminator too long");
    let mut out = Vec::with_capacity(4 + 2 + 1 + kind.len() + 8 + 4 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.len() as u8);
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses a complete file image, verifying magic, version, kind and
/// checksum, and returns the payload.
///
/// # Errors
/// Any [`CkptError`] variant except `Io`; never panics on hostile input.
pub fn decode_file(bytes: &[u8], kind: &str) -> Result<Vec<u8>, CkptError> {
    let mut d = Dec::new(bytes);
    let magic = d.bytes_fixed(4)?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = d.u16()?;
    if version != VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let kind_len = d.u8()? as usize;
    let kind_bytes = d.bytes_fixed(kind_len)?;
    let found = String::from_utf8_lossy(kind_bytes).into_owned();
    if found != kind {
        return Err(CkptError::WrongKind { expected: kind.to_string(), found });
    }
    let len = d.u64()? as usize;
    let crc = d.u32()?;
    let payload = d.bytes_fixed(len)?;
    let actual = crc32(payload);
    if actual != crc {
        return Err(CkptError::CrcMismatch { expected: crc, found: actual });
    }
    Ok(payload.to_vec())
}

/// Writes `payload` to `path` crash-consistently: temp file in the same
/// directory, fsync, rename over the target, fsync the directory.
///
/// # Errors
/// [`CkptError::Io`] when any filesystem step fails; the target is
/// either untouched or fully replaced.
pub fn write_atomic(path: &Path, kind: &str, payload: &[u8]) -> Result<(), CkptError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| CkptError::BadValue(format!("checkpoint path {path:?} has no file name")))?;
    let mut tmp = PathBuf::from(path);
    tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    let image = encode_file(kind, payload);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself. Directory fsync is a Unix concept; on
    // platforms where opening a directory fails this is best-effort.
    if let Some(dir) = dir {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and verifies the checkpoint at `path`, returning its payload.
///
/// # Errors
/// [`CkptError::Io`] when the file cannot be read (including "does not
/// exist" — callers usually map that to a cold start), or any decode
/// error from [`decode_file`].
pub fn read(path: &Path, kind: &str) -> Result<Vec<u8>, CkptError> {
    let bytes = fs::read(path)?;
    decode_file(&bytes, kind)
}

/// Little-endian payload encoder. Values written through [`Enc`] read
/// back through [`Dec`] in the same order.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, vs: &[u8]) {
        self.usize(vs.len());
        self.buf.extend_from_slice(vs);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian payload decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — catches grammar drift
    /// between writer and reader.
    ///
    /// # Errors
    /// [`CkptError::BadValue`] naming the leftover byte count.
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::BadValue(format!("{} trailing bytes after payload", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { needed: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes_fixed(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        self.take(n)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    /// Reads a `usize` written by [`Enc::usize`], rejecting values that
    /// do not fit the platform.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input, [`CkptError::BadValue`]
    /// on overflow.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CkptError::BadValue(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` written by [`Enc::bool`].
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of input, [`CkptError::BadValue`]
    /// on a byte that is neither 0 nor 1.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::BadValue(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed `f64` slice written by [`Enc::f64s`].
    ///
    /// # Errors
    /// [`CkptError::Truncated`] when the declared length exceeds the
    /// remaining input (checked *before* allocating, so a corrupt length
    /// cannot trigger an OOM).
    pub fn f64s(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.usize()?;
        let needed = n.checked_mul(8).ok_or_else(|| {
            CkptError::BadValue(format!("f64 slice length {n} overflows byte count"))
        })?;
        if self.remaining() < needed {
            return Err(CkptError::Truncated { needed, have: self.remaining() });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed byte slice written by [`Enc::bytes`].
    ///
    /// # Errors
    /// [`CkptError::Truncated`] when the declared length exceeds the
    /// remaining input.
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string written by [`Enc::str`].
    ///
    /// # Errors
    /// Truncation as [`CkptError::Truncated`]; invalid UTF-8 as
    /// [`CkptError::BadValue`].
    pub fn str(&mut self) -> Result<String, CkptError> {
        let bytes = self.byte_vec()?;
        String::from_utf8(bytes).map_err(|_| CkptError::BadValue("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(7);
        e.u64(0xDEAD_BEEF_CAFE_F00D);
        e.f64(-0.1);
        e.f64(f64::NAN);
        e.bool(true);
        e.f64s(&[1.5, -2.5, 1e-300]);
        e.str("hello");
        e.bytes(&[1, 2, 3]);
        e.finish()
    }

    #[test]
    fn enc_dec_roundtrip_is_exact() {
        let bytes = payload();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.f64s().unwrap(), vec![1.5, -2.5, 1e-300]);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.byte_vec().unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn file_frame_roundtrip() {
        let image = encode_file("test", &payload());
        let back = decode_file(&image, "test").unwrap();
        assert_eq!(back, payload());
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let image = encode_file("test", &payload());
        for cut in 0..image.len() {
            let err = decode_file(&image[..cut], "test").unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. } | CkptError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let image = encode_file("test", &payload());
        for byte in 0..image.len() {
            let mut bad = image.clone();
            bad[byte] ^= 0x40;
            // Any typed error is fine; decoding successfully is not.
            if let Ok(p) = decode_file(&bad, "test") {
                panic!("flip at byte {byte} went undetected ({} bytes ok)", p.len());
            }
        }
    }

    #[test]
    fn wrong_kind_and_version_are_typed() {
        let image = encode_file("learner", b"x");
        assert!(matches!(decode_file(&image, "fleet"), Err(CkptError::WrongKind { .. })));
        let mut future = image.clone();
        future[4] = 0xFF; // version LSB
        assert!(matches!(decode_file(&future, "learner"), Err(CkptError::UnsupportedVersion(_))));
        let mut junk = image;
        junk[0] = b'X';
        assert!(matches!(decode_file(&junk, "learner"), Err(CkptError::BadMagic)));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("edgebol-ckpt-test-{}", std::process::id()));
        let path = dir.join("nested").join("slice-0.ckpt");
        write_atomic(&path, "test", &payload()).unwrap();
        assert_eq!(read(&path, "test").unwrap(), payload());
        // Overwrite is atomic too: the temp file never lingers.
        write_atomic(&path, "test", b"v2").unwrap();
        assert_eq!(read(&path, "test").unwrap(), b"v2");
        let entries: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["slice-0.ckpt"], "no temp litter: {entries:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read(Path::new("/nonexistent/edgebol.ckpt"), "test").unwrap_err();
        assert!(matches!(err, CkptError::Io(_)), "{err}");
        assert!(err.to_string().contains("checkpoint io"));
    }

    #[test]
    fn crc_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bad_length_prefix_cannot_allocate_unbounded() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // hostile length prefix
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(d.f64s().is_err());
        let mut d = Dec::new(&bytes);
        assert!(d.byte_vec().is_err());
    }
}

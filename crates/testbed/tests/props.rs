//! Property-based tests of the testbed simulators.

use edgebol_ran::Mcs;
use edgebol_testbed::{
    Calibration, ContextObs, ControlInput, DesTestbed, Environment, FlowTestbed, Scenario,
};
use proptest::prelude::*;

fn arb_control() -> impl Strategy<Value = ControlInput> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0)
        .prop_map(|(e, a, g, m)| ControlInput::from_unit(e, a, g, m))
}

proptest! {
    /// The DES produces physical KPIs for any control and channel.
    #[test]
    fn des_outputs_physical(ctl in arb_control(), snr in 0.0f64..40.0) {
        let mut des = DesTestbed::new(Calibration::fast(), Scenario::single_user(snr), 5);
        let obs = des.run_period_raw(&ctl);
        prop_assert!(obs.delay_s > 0.0 && obs.delay_s <= des.period_duration_s + 1e-9);
        prop_assert!((0.0..=1.0).contains(&obs.map));
        prop_assert!(obs.server_power_w >= 69.0 && obs.server_power_w < 270.0);
        prop_assert!(obs.bs_power_w >= 4.0 && obs.bs_power_w < 8.0);
        prop_assert!(obs.gpu_delay_s > 0.0 && obs.gpu_delay_s < des.period_duration_s);
    }

    /// Flow and DES order configurations the same way on delay: if flow
    /// says A is much slower than B, the DES agrees on the direction.
    #[test]
    fn fidelities_agree_on_ordering(
        a in arb_control(),
        b in arb_control(),
        snr in 15.0f64..40.0,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 1);
        let fa = flow.steady_state(&[snr], &a).worst_delay_s();
        let fb = flow.steady_state(&[snr], &b).worst_delay_s();
        // Only check clearly-separated pairs (2x) within the DES-resolvable
        // band (a 4 s period cannot resolve 10+ s configurations).
        if fa > 2.0 * fb && fa < 3.0 {
            let mut da = DesTestbed::new(Calibration::fast(), Scenario::single_user(snr), 2);
            let mut db = DesTestbed::new(Calibration::fast(), Scenario::single_user(snr), 2);
            let oa = da.run_period_raw(&a);
            let ob = db.run_period_raw(&b);
            prop_assert!(
                oa.delay_s > ob.delay_s,
                "flow says {fa:.2} >> {fb:.2} but DES says {:.2} vs {:.2}",
                oa.delay_s,
                ob.delay_s
            );
        }
    }

    /// The environment contract holds for any step order: contexts are
    /// valid and periods advance.
    #[test]
    fn environment_contract(snr in 0.0f64..40.0, n in 1usize..5, steps in 1usize..5) {
        let scenario = if n == 1 {
            Scenario::single_user(snr)
        } else {
            Scenario::heterogeneous(n)
        };
        let mut env = FlowTestbed::new(Calibration::fast(), scenario, 3);
        prop_assert_eq!(env.num_users(), n);
        for _ in 0..steps {
            let ctx: ContextObs = env.observe_context();
            prop_assert_eq!(ctx.num_users, n);
            prop_assert!((1.0..=15.0).contains(&ctx.mean_cqi));
            prop_assert!(ctx.var_cqi >= 0.0);
            let obs = env.step(&ControlInput::max_resources());
            prop_assert!(obs.delay_s > 0.0);
        }
        prop_assert_eq!(env.period(), steps);
    }

    /// Worsening exactly one resource never reduces the flow-model delay
    /// (component-wise monotonicity of the pipeline).
    #[test]
    fn delay_component_monotonicity(
        base in arb_control(),
        dim in 0usize..3,
        snr in 10.0f64..40.0,
    ) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(snr), 4);
        let mut worse = base;
        match dim {
            0 => worse.airtime = (base.airtime * 0.5).max(0.05),
            1 => worse.gpu_speed = (base.gpu_speed * 0.5).max(0.0),
            _ => {
                worse.mcs_cap = Mcs::clamped(base.mcs_cap.index() as i64 / 2);
            }
        }
        let d_base = flow.steady_state(&[snr], &base).worst_delay_s();
        let d_worse = flow.steady_state(&[snr], &worse).worst_delay_s();
        prop_assert!(
            d_worse >= d_base - 1e-9,
            "taking resources away reduced delay: {d_worse} < {d_base} (dim {dim})"
        );
    }

    /// More users never reduce the worst-user delay (shared slice).
    #[test]
    fn delay_monotone_in_users(ctl in arb_control(), n in 1usize..5) {
        let flow = FlowTestbed::new(Calibration::default(), Scenario::single_user(30.0), 6);
        let few = flow.steady_state(&vec![30.0; n], &ctl).worst_delay_s();
        let more = flow.steady_state(&vec![30.0; n + 1], &ctl).worst_delay_s();
        // The share fixed point and the exclude-own-load queueing term
        // interact, so the analytic model is monotone only up to ~5%;
        // the DES (ground truth) is exactly monotone. This property bounds
        // the approximation rather than asserting strict monotonicity.
        prop_assert!(more >= few * 0.95, "adding a user sped things up: {more} < {few}");
    }
}

//! Calibration constants, gathered in one place and documented against the
//! paper figure each one anchors (see DESIGN.md §6).

use edgebol_edge::{GpuModel, ServerPowerModel};
use edgebol_media::{DetectorModel, EncodeModel};
use edgebol_ran::{BbuPowerModel, HarqModel};
use serde::{Deserialize, Serialize};

/// All tunable constants of the testbed, with defaults calibrated so the
/// simulator reproduces the operating points of the paper's figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// UE-side encoding model (≈225 kB at 100% res → peak offered load
    /// ≈2.8 Mb/s as quoted in §3).
    pub encode: EncodeModel,
    /// Detector behaviour (mAP ≈0.2→0.62 over 25–100% res, Fig. 1).
    pub detector: DetectorModel,
    /// GPU inference-time model (150–300 ms band of Fig. 3-bottom).
    pub gpu: GpuModel,
    /// Server power model (75–180 W band of Figs. 2–4).
    pub server_power: ServerPowerModel,
    /// BBU power model (4.75–7.5 W band of Figs. 5–6).
    pub bbu_power: BbuPowerModel,
    /// HARQ behaviour (LTE FDD defaults).
    pub harq: HarqModel,
    /// PRBs grantable to the slice per scheduled subframe. 22 of the
    /// carrier's 100 PRBs give ≈11 Mb/s of slice goodput at top MCS, which
    /// places the max-resource service delay at ≈0.33 s — the operating
    /// point at which the paper's §6.2–§6.3 constraint settings
    /// (d_max ∈ {0.3, 0.4, 0.5} s) are meaningful (see EXPERIMENTS.md for
    /// the Fig. 1 absolute-delay trade-off this implies).
    pub slice_prbs: usize,
    /// Fixed downlink return time (bounding boxes + labels are tiny).
    pub dl_fixed_s: f64,
    /// Fixed protocol/stack overhead per frame (HTTP + scheduling
    /// grants + backhaul), seconds.
    pub stack_overhead_s: f64,
    /// Scenes per period used for the mAP observation (the paper averages
    /// over 150 COCO images).
    pub dataset_size: usize,
    /// Relative std of the power-meter reading noise.
    pub meter_noise_rel: f64,
    /// Relative std of the delay measurement noise (timestamping, OS
    /// jitter).
    pub delay_noise_rel: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            encode: EncodeModel::default(),
            detector: DetectorModel::default(),
            gpu: GpuModel::default(),
            server_power: ServerPowerModel::default(),
            bbu_power: BbuPowerModel::default(),
            harq: HarqModel::default(),
            slice_prbs: 22,
            dl_fixed_s: 0.012,
            stack_overhead_s: 0.015,
            dataset_size: 150,
            meter_noise_rel: 0.015,
            delay_noise_rel: 0.03,
        }
    }
}

impl Calibration {
    /// A faster calibration for long learning runs: smaller mAP dataset,
    /// everything else unchanged. KPI statistics stay the same, the mAP
    /// observation is merely noisier (which the GP absorbs).
    pub fn fast() -> Self {
        Calibration { dataset_size: 60, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_ran::{tbs_bits, Mcs};

    #[test]
    fn slice_goodput_places_max_resource_delay_at_operating_point() {
        // 22 PRBs at MCS 28, every subframe: ~11 Mb/s, so a 1.8 Mb
        // full-res frame takes ~0.17 s of airtime and the end-to-end
        // max-resource delay lands at ~0.33 s — the regime in which the
        // paper's constraint settings d_max ∈ {0.3, 0.4, 0.5} s bite.
        let c = Calibration::default();
        let rate = tbs_bits(Mcs::MAX, c.slice_prbs) / 1e-3;
        assert!((10e6..12e6).contains(&rate), "slice rate {rate:.3e}");
        let bits = c.encode.bits(1.0);
        let e = c.encode.encode(1.0);
        let d = e.preproc_s + bits / rate + c.gpu.t_base_full_s + c.dl_fixed_s + c.stack_overhead_s;
        assert!((0.30..0.36).contains(&d), "max-resource delay {d}");
    }

    #[test]
    fn fast_calibration_only_shrinks_dataset() {
        let f = Calibration::fast();
        let d = Calibration::default();
        assert!(f.dataset_size < d.dataset_size);
        assert_eq!(f.slice_prbs, d.slice_prbs);
    }
}

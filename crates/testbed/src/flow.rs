//! Fast flow-level evaluator of the closed-loop steady state.
//!
//! For learning experiments the testbed must evaluate tens of thousands of
//! (context, control) pairs, so instead of stepping subframes we solve the
//! closed-loop steady state analytically:
//!
//! * each user's **transmission share** of the airtime budget depends on
//!   how often the *other* users are transmitting (round-robin among
//!   backlogged users) — a fixed point over the users' duty fractions;
//! * the GPU sees the superposition of all users' request processes; its
//!   queueing delay is approximated with an M/D/1 waiting term, another
//!   ingredient of the same fixed point;
//! * BBU occupancy follows from the subframes each image needs (including
//!   expected HARQ retransmissions) divided by the per-image period.
//!
//! The fixed point converges in a handful of iterations for every
//! configuration on the control grid (monotone damped updates). The DES in
//! [`crate::des`] cross-validates this model; the integration test suite
//! compares the two on a grid of configurations.

use crate::calib::Calibration;
use crate::meter::PowerMeter;
use crate::observe::{ContextObs, ControlInput, PeriodObservation};
use crate::scenario::Scenario;
use crate::Environment;
use edgebol_edge::GpuSpeedPolicy;
use edgebol_linalg::stats::normal;
use edgebol_media::Dataset;
use edgebol_ran::{cqi_from_snr, max_mcs_for_cqi, phy, tbs_bits, Mcs};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Noiseless steady-state summary of one period.
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// Per-user end-to-end delay (s).
    pub delays_s: Vec<f64>,
    /// Per-user MCS actually used.
    pub mcs: Vec<Mcs>,
    /// Per-user BBU subframe occupancy (fraction of all subframes).
    pub occupancy: Vec<f64>,
    /// GPU utilization in [0, 1].
    pub gpu_utilization: f64,
    /// Server-side latency (queue wait + inference), seconds.
    pub gpu_delay_s: f64,
    /// Noiseless BS power (W).
    pub bs_power_w: f64,
    /// Noiseless server power (W).
    pub server_power_w: f64,
}

impl SteadyState {
    /// Worst (largest) per-user delay — the `d(c,x) = max_i D_i` of §4.2.
    pub fn worst_delay_s(&self) -> f64 {
        self.delays_s.iter().copied().fold(0.0, f64::max)
    }
}

/// `E[1 / (1 + N)]` where `N` is the number of *other* users
/// transmitting, each independently with probability `tau[j]` — the exact
/// round-robin share factor. Poisson-binomial distribution by the
/// standard O(n^2) DP.
fn expected_inverse_share(tau: &[f64], i: usize) -> f64 {
    // pmf[k] = P(N = k) over the users j != i.
    let mut pmf = vec![1.0];
    for (j, &t) in tau.iter().enumerate() {
        if j == i {
            continue;
        }
        let mut next = vec![0.0; pmf.len() + 1];
        for (k, &p) in pmf.iter().enumerate() {
            next[k] += p * (1.0 - t);
            next[k + 1] += p * t;
        }
        pmf = next;
    }
    pmf.iter().enumerate().map(|(k, &p)| p / (k + 1) as f64).sum()
}

/// The flow-level testbed.
#[derive(Debug, Clone)]
pub struct FlowTestbed {
    calib: Calibration,
    scenario: Scenario,
    dataset: Dataset,
    meter: PowerMeter,
    rng: SmallRng,
    period: usize,
    /// Per-user SNR sampled at `observe_context`, consumed by `step`.
    period_snrs: Vec<f64>,
    /// Cross-slice GPU contention multiplier on per-image inference time
    /// (1.0 = dedicated server); set by the fleet layer's shared-server
    /// model via [`Environment::set_gpu_contention`].
    gpu_contention: f64,
}

impl FlowTestbed {
    /// Creates a testbed for a scenario, deterministic given `seed`.
    pub fn new(calib: Calibration, scenario: Scenario, seed: u64) -> Self {
        let dataset = Dataset::generate(calib.dataset_size, seed ^ 0x5EED);
        let meter = PowerMeter::new(calib.meter_noise_rel);
        let n = scenario.num_users();
        FlowTestbed {
            calib,
            scenario,
            dataset,
            meter,
            rng: SmallRng::seed_from_u64(seed),
            period: 0,
            period_snrs: vec![0.0; n],
            gpu_contention: 1.0,
        }
    }

    /// Current cross-slice GPU contention multiplier.
    pub fn gpu_contention(&self) -> f64 {
        self.gpu_contention
    }

    /// The calibration in force.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// The scenario in force.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Current period index.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Solves the closed-loop steady state for given per-user mean SNRs.
    ///
    /// Pure and noiseless: this is what both the noisy observation path
    /// and the exhaustive-search oracle are built on.
    ///
    /// # Panics
    /// Panics if `snrs_db` is empty.
    pub fn steady_state(&self, snrs_db: &[f64], control: &ControlInput) -> SteadyState {
        assert!(!snrs_db.is_empty(), "need at least one user");
        let c = &self.calib;
        let n = snrs_db.len();
        let enc = c.encode.encode(control.resolution);
        let bits = enc.bytes * 8.0;
        let pre = enc.preproc_s;
        let gamma = GpuSpeedPolicy::clamped(control.gpu_speed);
        let inf = c.gpu.inference_time_s(control.resolution, gamma) * self.gpu_contention;
        let fixed = c.dl_fixed_s + c.stack_overhead_s;
        let alpha = control.airtime.clamp(0.05, 1.0);

        // Per-user link parameters.
        let mut mcs = Vec::with_capacity(n);
        let mut rate_sched = Vec::with_capacity(n); // delivered bits/s while scheduled
        let mut sf_per_image = Vec::with_capacity(n); // subframes consumed per image
        for &snr in snrs_db {
            let m = max_mcs_for_cqi(cqi_from_snr(snr)).min(control.mcs_cap);
            let gf = c.harq.goodput_factor(snr, m).max(1e-3);
            let tbs = tbs_bits(m, c.slice_prbs);
            mcs.push(m);
            rate_sched.push(tbs * gf / phy::SUBFRAME_S);
            sf_per_image.push(bits / (tbs * gf));
        }

        // Fixed point over transmit fractions and GPU queueing.
        let mut d: Vec<f64> = vec![pre + inf + fixed + 1.0; n];
        let mut tx: Vec<f64> = vec![1.0; n];
        // Residence time (queueing + service) at the GPU per user.
        let mut res: Vec<f64> = vec![inf; n];
        for _ in 0..60 {
            let tau: Vec<f64> = tx.iter().zip(&d).map(|(t, dd)| (t / dd).min(1.0)).collect();
            for i in 0..n {
                // Round-robin share while user i transmits: each other
                // user is transmitting independently with probability
                // tau_j, so the expected share is alpha * E[1/(1+N)] with
                // N ~ PoissonBinomial(tau_{-i}), computed exactly — the
                // naive alpha / (1 + sum tau_{-i}) is Jensen-pessimistic
                // and overestimates the worst user's transfer time by
                // ~30% in heterogeneous scenarios.
                let share = (alpha * expected_inverse_share(&tau, i)).min(alpha);
                let new_tx = bits / (rate_sched[i] * share);
                // GPU residence by approximate mean-value analysis for
                // the closed network (Schweitzer AMVA): each user holds
                // one outstanding frame, an arriving job finds on average
                // the other users\' mean station queue lengths
                // Q_j = residence_j / d_j ahead of it. Unlike an
                // open-queue M/D/1 term this stays finite at saturation —
                // a closed system degrades to round-robin service of n
                // jobs, it does not blow up.
                let q_others: f64 = (0..n).filter(|&j| j != i).map(|j| res[j] / d[j]).sum();
                let new_res = inf * (1.0 + q_others);
                let new_d = pre + new_tx + new_res + fixed;
                res[i] = 0.5 * res[i] + 0.5 * new_res;
                // Damped update for stable convergence.
                tx[i] = 0.5 * tx[i] + 0.5 * new_tx;
                d[i] = 0.5 * d[i] + 0.5 * new_d;
            }
        }

        // KPIs from the converged state.
        let lambda: f64 = d.iter().map(|dd| 1.0 / dd).sum();
        let gpu_delay_s = res.iter().sum::<f64>() / n as f64;
        let gpu_utilization = (lambda * inf).min(1.0);
        let server_power_w = c.server_power.power_w(gpu_utilization, gamma);

        let mut occupancy: Vec<f64> =
            (0..n).map(|i| sf_per_image[i] / d[i] * phy::SUBFRAME_S).collect();
        // The MAC cannot grant beyond the airtime cap.
        let total: f64 = occupancy.iter().sum();
        if total > alpha {
            let scale = alpha / total;
            for o in &mut occupancy {
                *o *= scale;
            }
        }
        let bs_power_w = c.bbu_power.power_mixture_w(&occupancy, &mcs);

        SteadyState {
            delays_s: d,
            mcs,
            occupancy,
            gpu_utilization,
            gpu_delay_s,
            bs_power_w,
            server_power_w,
        }
    }

    /// Expected (noiseless) mAP for a resolution: average of the evaluator
    /// over a fixed set of detector seeds.
    pub fn expected_map(&self, resolution: f64) -> f64 {
        let seeds = [11u64, 23, 37, 51, 73];
        seeds
            .iter()
            .map(|&s| self.dataset.evaluate_map(&self.calib.detector, resolution, s))
            .sum::<f64>()
            / seeds.len() as f64
    }

    /// Noiseless expected observation at a period — the oracle's view.
    pub fn expected(&self, period: usize, control: &ControlInput) -> PeriodObservation {
        let snrs: Vec<f64> =
            (0..self.scenario.num_users()).map(|i| self.scenario.snr_db(i, period)).collect();
        let ss = self.steady_state(&snrs, control);
        PeriodObservation {
            delay_s: ss.worst_delay_s(),
            gpu_delay_s: ss.gpu_delay_s,
            map: self.expected_map(control.resolution),
            server_power_w: ss.server_power_w,
            bs_power_w: ss.bs_power_w,
        }
    }
}

impl Environment for FlowTestbed {
    fn observe_context(&mut self) -> ContextObs {
        let n = self.scenario.num_users();
        self.period_snrs.clear();
        for i in 0..n {
            let mean = self.scenario.snr_db(i, self.period);
            self.period_snrs.push(mean + normal(&mut self.rng, 0.0, 0.8));
        }
        // CQI statistics over 20 noisy reports per user.
        let mut reports = Vec::with_capacity(n * 20);
        for &snr in &self.period_snrs {
            for _ in 0..20 {
                reports.push(cqi_from_snr(snr + normal(&mut self.rng, 0.0, 1.2)) as f64);
            }
        }
        let mean_cqi = edgebol_linalg::vecops::mean(&reports);
        let var_cqi = edgebol_linalg::vecops::variance(&reports);
        ContextObs { num_users: n, mean_cqi, var_cqi }
    }

    fn step(&mut self, control: &ControlInput) -> PeriodObservation {
        if self.period_snrs.is_empty() {
            // step() without observe_context(): fall back to scenario means.
            let n = self.scenario.num_users();
            for i in 0..n {
                self.period_snrs.push(self.scenario.snr_db(i, self.period));
            }
        }
        let snrs = self.period_snrs.clone();
        let ss = self.steady_state(&snrs, control);
        let delay =
            ss.worst_delay_s() * (1.0 + normal(&mut self.rng, 0.0, self.calib.delay_noise_rel));
        let map_seed = (self.period as u64).wrapping_mul(0x9E37_79B9) ^ 0xA5A5;
        let map = self.dataset.evaluate_map(&self.calib.detector, control.resolution, map_seed);
        let obs = PeriodObservation {
            delay_s: delay.max(1e-3),
            gpu_delay_s: ss.gpu_delay_s,
            map,
            server_power_w: self.meter.read(ss.server_power_w, &mut self.rng),
            bs_power_w: self.meter.read(ss.bs_power_w, &mut self.rng),
        };
        self.period += 1;
        self.period_snrs.clear();
        obs
    }

    fn num_users(&self) -> usize {
        self.scenario.num_users()
    }

    fn set_gpu_contention(&mut self, factor: f64) {
        debug_assert!(factor.is_finite(), "contention factor {factor}");
        // A slice cannot run faster than on a dedicated server.
        self.gpu_contention = factor.max(1.0);
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Taken at a period boundary: `period_snrs` was consumed by the
        // preceding `step`, so (rng, period, contention) is the entire
        // evolving state — calibration, scenario, dataset and meter are
        // immutable and rebuilt from the constructor on restore.
        let mut e = edgebol_ckpt::Enc::new();
        for w in self.rng.state() {
            e.u64(w);
        }
        e.usize(self.period);
        e.f64(self.gpu_contention);
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        let mut d = edgebol_ckpt::Dec::new(bytes);
        let rng_state = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
        let period = d.usize()?;
        let gpu_contention = d.f64()?;
        if !(gpu_contention.is_finite() && gpu_contention >= 1.0) {
            return Err(edgebol_ckpt::CkptError::BadValue(format!(
                "gpu contention {gpu_contention}"
            )));
        }
        d.expect_end()?;
        self.rng = SmallRng::from_state(rng_state);
        self.period = period;
        self.gpu_contention = gpu_contention;
        self.period_snrs.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tb(scenario: Scenario) -> FlowTestbed {
        FlowTestbed::new(Calibration::default(), scenario, 42)
    }

    fn max_ctrl() -> ControlInput {
        ControlInput::max_resources()
    }

    #[test]
    fn save_load_resumes_the_kpi_stream_bit_identically() {
        let mut live = tb(Scenario::single_user(30.0));
        for _ in 0..5 {
            live.observe_context();
            live.step(&max_ctrl());
        }
        let snapshot = live.save_state().expect("flow testbed supports snapshots");
        let mut restored = tb(Scenario::single_user(30.0));
        restored.load_state(&snapshot).unwrap();
        assert_eq!(restored.period(), 5);
        for p in 0..10 {
            let ca = live.observe_context();
            let cb = restored.observe_context();
            assert_eq!(ca.mean_cqi.to_bits(), cb.mean_cqi.to_bits(), "context at {p}");
            let oa = live.step(&max_ctrl());
            let ob = restored.step(&max_ctrl());
            assert_eq!(oa.delay_s.to_bits(), ob.delay_s.to_bits(), "delay at {p}");
            assert_eq!(oa.server_power_w.to_bits(), ob.server_power_w.to_bits(), "power at {p}");
            assert_eq!(oa.map.to_bits(), ob.map.to_bits(), "map at {p}");
        }
    }

    #[test]
    fn load_state_rejects_garbage_with_typed_error() {
        let mut t = tb(Scenario::single_user(30.0));
        assert!(t.load_state(&[1, 2, 3]).is_err(), "truncated payload must fail");
        let mut bad = t.save_state().unwrap();
        bad.truncate(bad.len() - 1);
        assert!(t.load_state(&bad).is_err());
        assert_eq!(t.period(), 0, "failed load must not mutate the testbed");
    }

    #[test]
    fn full_res_delay_near_paper_operating_point() {
        // Max resources at 35 dB: ~0.33 s (see Calibration docs for the
        // operating-point choice).
        let t = tb(Scenario::single_user(35.0));
        let ss = t.steady_state(&[35.0], &max_ctrl());
        let d = ss.worst_delay_s();
        assert!((0.28..0.40).contains(&d), "delay {d}");
    }

    #[test]
    fn low_res_cuts_delay_substantially() {
        // Fig. 1 direction: lower res, much lower delay.
        let t = tb(Scenario::single_user(35.0));
        let hi = t.steady_state(&[35.0], &max_ctrl()).worst_delay_s();
        let mut c = max_ctrl();
        c.resolution = 0.25;
        let lo = t.steady_state(&[35.0], &c).worst_delay_s();
        assert!(lo < 0.7 * hi, "lo {lo} vs hi {hi}");
    }

    #[test]
    fn airtime_reduction_inflates_delay_fig2() {
        // Fig. 2: 20% airtime at full res pushes delay toward ~2 s.
        let t = tb(Scenario::single_user(35.0));
        let mut c = max_ctrl();
        c.airtime = 0.2;
        let d = t.steady_state(&[35.0], &c).worst_delay_s();
        let d_full = t.steady_state(&[35.0], &max_ctrl()).worst_delay_s();
        // Paper: 80% airtime increase improves delay 65-80%.
        let improvement = (d - d_full) / d;
        assert!((0.6..0.85).contains(&improvement), "improvement {improvement} (d {d})");
    }

    #[test]
    fn low_res_raises_server_power_fig2() {
        // Closed loop: low-res -> higher request rate -> higher GPU load.
        let t = tb(Scenario::single_user(35.0));
        let hi_res = t.steady_state(&[35.0], &max_ctrl()).server_power_w;
        let mut c = max_ctrl();
        c.resolution = 0.25;
        let lo_res = t.steady_state(&[35.0], &c).server_power_w;
        assert!(lo_res > hi_res + 20.0, "low-res {lo_res} vs high-res {hi_res}");
        // And the absolute band matches Fig. 2 (75-180 W).
        assert!((70.0..190.0).contains(&lo_res), "{lo_res}");
        assert!((70.0..190.0).contains(&hi_res), "{hi_res}");
    }

    #[test]
    fn gpu_speed_trades_delay_for_server_power_fig3() {
        let t = tb(Scenario::single_user(35.0));
        let mut slow = max_ctrl();
        slow.gpu_speed = 0.0;
        let fast_ss = t.steady_state(&[35.0], &max_ctrl());
        let slow_ss = t.steady_state(&[35.0], &slow);
        assert!(slow_ss.worst_delay_s() > fast_ss.worst_delay_s());
        assert!(slow_ss.server_power_w < fast_ss.server_power_w);
    }

    #[test]
    fn bs_power_decreases_with_mcs_at_low_load_fig5() {
        let t = tb(Scenario::single_user(35.0));
        let mut low_mcs = max_ctrl();
        low_mcs.mcs_cap = Mcs(6);
        let p_low = t.steady_state(&[35.0], &low_mcs).bs_power_w;
        let p_high = t.steady_state(&[35.0], &max_ctrl()).bs_power_w;
        assert!(p_high < p_low, "Fig.5 regime: high MCS should consume less ({p_high} !< {p_low})");
        assert!((4.0..8.0).contains(&p_low), "{p_low}");
    }

    #[test]
    fn bs_power_increases_with_mcs_at_10x_load_fig6() {
        let t = tb(Scenario::tenx_load(35.0));
        let snrs = vec![35.0; 10];
        let mut low_mcs = max_ctrl();
        low_mcs.mcs_cap = Mcs(10);
        let p_low = t.steady_state(&snrs, &low_mcs).bs_power_w;
        let p_high = t.steady_state(&snrs, &max_ctrl()).bs_power_w;
        assert!(
            p_high > p_low,
            "Fig.6 regime: high MCS should consume more under saturation ({p_high} !> {p_low})"
        );
    }

    #[test]
    fn poor_snr_users_see_higher_delay() {
        let t = tb(Scenario::heterogeneous(4));
        let ss = t.steady_state(&[30.0, 24.0, 19.2, 15.36], &max_ctrl());
        assert!(ss.delays_s[3] > ss.delays_s[0]);
        assert_eq!(ss.worst_delay_s(), ss.delays_s[3]);
        assert!(ss.mcs[3] < ss.mcs[0]);
    }

    #[test]
    fn occupancy_respects_airtime_cap() {
        let t = tb(Scenario::tenx_load(35.0));
        let snrs = vec![10.0; 10]; // poor links, saturated demand
        let mut c = max_ctrl();
        c.airtime = 0.3;
        let ss = t.steady_state(&snrs, &c);
        let total: f64 = ss.occupancy.iter().sum();
        assert!(total <= 0.3 + 1e-9, "occupancy {total}");
    }

    #[test]
    fn environment_loop_produces_noisy_but_consistent_kpis() {
        let mut t = tb(Scenario::single_user(35.0));
        let ctx = t.observe_context();
        assert_eq!(ctx.num_users, 1);
        assert!(ctx.mean_cqi > 10.0, "35 dB should report high CQI: {}", ctx.mean_cqi);
        let a = t.step(&max_ctrl());
        let _ = t.observe_context();
        let b = t.step(&max_ctrl());
        assert_ne!(a.delay_s, b.delay_s, "noise expected");
        assert!((a.delay_s - b.delay_s).abs() < 0.2 * a.delay_s);
        assert!(a.map > 0.4, "full-res mAP {}", a.map);
        assert_eq!(t.period(), 2);
    }

    #[test]
    fn expected_is_deterministic() {
        let t = tb(Scenario::single_user(35.0));
        let a = t.expected(0, &max_ctrl());
        let b = t.expected(0, &max_ctrl());
        assert_eq!(a, b);
    }

    #[test]
    fn expected_map_tracks_fig1() {
        let t = tb(Scenario::single_user(35.0));
        let m_full = t.expected_map(1.0);
        let m_quarter = t.expected_map(0.25);
        assert!((0.5..0.75).contains(&m_full), "mAP(1.0) {m_full}");
        assert!((0.1..0.45).contains(&m_quarter), "mAP(0.25) {m_quarter}");
    }

    #[test]
    fn gpu_contention_inflates_delay_and_gpu_load() {
        let mut t = tb(Scenario::single_user(35.0));
        let free = t.steady_state(&[35.0], &max_ctrl());
        t.set_gpu_contention(2.0);
        assert_eq!(t.gpu_contention(), 2.0);
        let contended = t.steady_state(&[35.0], &max_ctrl());
        assert!(contended.worst_delay_s() > free.worst_delay_s());
        assert!(contended.gpu_delay_s > free.gpu_delay_s);
        // Factors below 1 clamp: a slice can't go faster than dedicated.
        t.set_gpu_contention(0.5);
        assert_eq!(t.gpu_contention(), 1.0);
    }

    #[test]
    fn step_without_context_falls_back() {
        let mut t = tb(Scenario::single_user(35.0));
        let o = t.step(&max_ctrl());
        assert!(o.delay_s > 0.0);
    }
}

//! The prototype-replacement testbed simulator.
//!
//! The paper evaluates EdgeBOL on a physical rig: srsRAN vBS + UE over
//! USRP B210 radios, an RTX 2080 Ti server running Detectron2, and a
//! GW-Instek power meter. This crate replaces that rig with two
//! cross-validated simulators over the models in `edgebol-ran`,
//! `edgebol-edge` and `edgebol-media`:
//!
//! * [`FlowTestbed`] — a fast analytic evaluator of the closed-loop
//!   steady state (fixed-point over transmission share and GPU queueing),
//!   used by the learning loops (Figs. 9–14) where tens of thousands of
//!   period evaluations are needed.
//! * [`DesTestbed`] — a subframe-level (1 ms) discrete-event simulation
//!   of the full pipeline — UE pre-processing, MAC grants, HARQ attempts,
//!   GPU queueing, downlink return — used for validation and for the
//!   measurement figures (Figs. 1–6).
//!
//! Both emit the same [`PeriodObservation`] (the four KPIs of §4.2:
//! service delay `d`, precision `rho`, server power `p_s`, BS power `p_b`)
//! behind the common [`Environment`] trait, with power-meter reading noise
//! applied by [`meter::PowerMeter`]. [`FlowTestbed::expected`] exposes the
//! noiseless steady state for the exhaustive-search oracle baseline.
//!
//! The service model is the paper's: each user runs a *closed loop* — it
//! captures a frame, pre-processes, uploads over the LTE UL, waits for the
//! GPU inference and the downlink reply, then immediately captures the
//! next frame. The closed loop is what couples the radio and compute
//! policies: cheaper radio configurations slow the request rate, which
//! *unloads* the GPU — the central trade-off EdgeBOL exploits.

pub mod calib;
pub mod des;
pub mod flow;
pub mod meter;
pub mod multiservice;
pub mod observe;
pub mod scenario;

pub use calib::Calibration;
pub use des::DesTestbed;
pub use flow::FlowTestbed;
pub use meter::PowerMeter;
pub use multiservice::{MultiServiceTestbed, ServiceCfg};
pub use observe::{ContextObs, ControlInput, PeriodObservation};
pub use scenario::Scenario;

/// A per-period environment: observe a context, apply a control policy,
/// receive the period's KPIs. This is the loop of Algorithm 1 seen from
/// the testbed side.
///
/// `Send` so an orchestrator owning the environment can be driven from a
/// worker thread (the parallel multi-seed runner in `edgebol-bench`).
pub trait Environment: Send {
    /// Observes the context at the start of the period (`c_t`).
    fn observe_context(&mut self) -> ContextObs;

    /// Runs one period under `control` and returns the noisy KPIs.
    fn step(&mut self, control: &ControlInput) -> PeriodObservation;

    /// Number of users currently in the slice.
    fn num_users(&self) -> usize;

    /// Informs the environment of cross-slice GPU contention: `factor`
    /// is the multiplier on effective per-image inference time caused by
    /// other slices sharing the same physical GPU server (`1.0` = the
    /// slice has the server to itself). The fleet layer's shared-server
    /// admission model calls this once per period; environments that do
    /// not model a shared server ignore it (the default is a no-op), so
    /// every existing single-slice environment keeps its behaviour
    /// bit-exactly.
    fn set_gpu_contention(&mut self, _factor: f64) {}

    /// Serializes the environment's evolving state (RNG streams, period
    /// counter) at a period boundary for checkpointing. `None` when the
    /// environment does not support snapshots — the orchestrator then
    /// omits it from checkpoints and a restored run re-creates the
    /// environment cold.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state saved by [`Environment::save_state`] onto an
    /// identically-constructed environment.
    ///
    /// # Errors
    /// A typed [`edgebol_ckpt::CkptError`] on malformed payloads or when the
    /// environment does not support snapshots (the default).
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        Err(edgebol_ckpt::CkptError::BadValue(
            "environment does not support checkpoint restore".into(),
        ))
    }
}

//! Subframe-level discrete-event simulation of the full service pipeline.
//!
//! This is the high-fidelity half of the testbed: every 1 ms subframe the
//! MAC may issue a grant, every grant carries a HARQ-resolved transport
//! block, every completed upload enters the GPU FIFO, and every inference
//! result returns over the downlink. Frames are generated in the
//! closed-loop fashion of the real service: a user starts pre-processing
//! its next frame the moment the previous reply arrives.
//!
//! The DES exists for two reasons: it *generates* the measurement figures
//! (Figs. 1–6) the way the paper does — by running the pipeline and
//! averaging — and it *cross-validates* the flow-level fixed point used by
//! the learning loops (see the workspace integration tests).

use crate::calib::Calibration;
use crate::meter::PowerMeter;
use crate::observe::{ContextObs, ControlInput, PeriodObservation};
use crate::scenario::Scenario;
use crate::Environment;
use edgebol_edge::{GpuSpeedPolicy, InferenceQueue};
use edgebol_linalg::stats::normal;
use edgebol_media::Dataset;
use edgebol_ran::phy::SUBFRAME_S;
use edgebol_ran::{cqi_from_snr, AirtimePolicy, Mcs, McsPolicy, SliceScheduler, UeLink, NUM_MCS};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Where a user is in its frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Capturing + resizing + encoding; ends at the given instant.
    Preproc { until_s: f64 },
    /// Uplink transfer in progress (backlog > 0).
    Uplink,
    /// Waiting for inference + downlink; frame completes at the instant.
    Inference { done_s: f64 },
}

/// A transport block in flight through HARQ.
#[derive(Debug, Clone, Copy)]
struct PendingTb {
    bits: f64,
    remaining_attempts: u8,
    will_succeed: bool,
    mcs: Mcs,
}

/// Per-user simulation state.
#[derive(Debug, Clone)]
struct UeState {
    link: UeLink,
    phase: Phase,
    frame_start_s: f64,
    pending: Option<PendingTb>,
    completed_delays: Vec<f64>,
}

/// The discrete-event testbed.
#[derive(Debug, Clone)]
pub struct DesTestbed {
    calib: Calibration,
    scenario: Scenario,
    dataset: Dataset,
    meter: PowerMeter,
    rng: SmallRng,
    period: usize,
    /// Simulated seconds per period (the paper's orchestrator acts on a
    /// seconds timescale).
    pub period_duration_s: f64,
    now_s: f64,
    ues: Vec<UeState>,
    queue: InferenceQueue,
    scheduler: SliceScheduler,
}

impl DesTestbed {
    /// Creates the simulator; deterministic given `seed`.
    pub fn new(calib: Calibration, scenario: Scenario, seed: u64) -> Self {
        let dataset = Dataset::generate(calib.dataset_size, seed ^ 0x5EED);
        let meter = PowerMeter::new(calib.meter_noise_rel);
        let ues = (0..scenario.num_users())
            .map(|i| UeState {
                link: UeLink::new(scenario.snr_db(i, 0)),
                phase: Phase::Preproc { until_s: 0.0 },
                frame_start_s: 0.0,
                pending: None,
                completed_delays: Vec::new(),
            })
            .collect();
        let queue = InferenceQueue::new(calib.gpu.clone(), GpuSpeedPolicy(1.0));
        let scheduler =
            SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), calib.slice_prbs);
        DesTestbed {
            calib,
            scenario,
            dataset,
            meter,
            rng: SmallRng::seed_from_u64(seed),
            period: 0,
            period_duration_s: 4.0,
            now_s: 0.0,
            ues,
            queue,
            scheduler,
        }
    }

    /// Current period index.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Runs one period of the pipeline under `control`, returning the
    /// period's KPIs without meter noise applied (the `Environment` impl
    /// adds it). Public for tests that want the raw DES output.
    pub fn run_period_raw(&mut self, control: &ControlInput) -> PeriodObservation {
        let calib = self.calib.clone();
        let enc = calib.encode.encode(control.resolution);
        let frame_bits = enc.bytes * 8.0;
        let gamma = GpuSpeedPolicy::clamped(control.gpu_speed);
        self.queue.set_policy(gamma);
        self.queue.reset_accounting();
        self.scheduler
            .set_policies(AirtimePolicy::clamped(control.airtime), McsPolicy(control.mcs_cap));
        self.scheduler.reset_accounting();

        // Refresh channel means for this period.
        for (i, ue) in self.ues.iter_mut().enumerate() {
            ue.link.channel.mean_snr_db = self.scenario.snr_db(i, self.period);
            ue.completed_delays.clear();
        }

        let start_s = self.now_s;
        let end_s = start_s + self.period_duration_s;
        let n_sf = (self.period_duration_s / SUBFRAME_S).round() as u64;
        // Occupied-subframe counters per MCS index, for the power mixture.
        let mut occupied_sf = [0u64; NUM_MCS];
        // Server-side latency accounting (queue wait + inference).
        let mut gpu_delay_acc = 0.0f64;
        let mut gpu_jobs = 0u64;

        for sf in 0..n_sf {
            let now = start_s + sf as f64 * SUBFRAME_S;
            self.now_s = now;

            // Phase transitions.
            for ue in self.ues.iter_mut() {
                match ue.phase {
                    Phase::Preproc { until_s } if now >= until_s => {
                        ue.link.backlog_bits = frame_bits;
                        ue.phase = Phase::Uplink;
                    }
                    Phase::Inference { done_s } if now >= done_s => {
                        ue.completed_delays.push(done_s - ue.frame_start_s);
                        // Closed loop: next frame starts immediately.
                        ue.frame_start_s = now;
                        ue.phase = Phase::Preproc { until_s: now + enc.preproc_s };
                    }
                    _ => {}
                }
            }

            // MAC grant for this subframe.
            let mut links: Vec<UeLink> = self.ues.iter().map(|u| u.link.clone()).collect();
            if let Some(grant) = self.scheduler.tick(&mut links, &mut self.rng) {
                // Propagate channel-state evolution back.
                for (u, l) in self.ues.iter_mut().zip(links) {
                    u.link.channel = l.channel;
                }
                let ue = &mut self.ues[grant.ue];
                let tb = ue.pending.get_or_insert_with(|| {
                    let outcome = calib.harq.attempt(&mut self.rng, grant.snr_db, grant.mcs);
                    PendingTb {
                        bits: grant.tb_bits,
                        remaining_attempts: outcome.attempts,
                        will_succeed: outcome.success,
                        mcs: grant.mcs,
                    }
                });
                occupied_sf[tb.mcs.index()] += 1;
                tb.remaining_attempts -= 1;
                if tb.remaining_attempts == 0 {
                    let tb = ue.pending.take().expect("pending TB present");
                    if tb.will_succeed {
                        ue.link.backlog_bits = (ue.link.backlog_bits - tb.bits).max(0.0);
                        if ue.link.backlog_bits == 0.0 && matches!(ue.phase, Phase::Uplink) {
                            // Upload complete: enter the GPU queue.
                            let (_, done) = self.queue.submit(now, control.resolution);
                            gpu_delay_acc += done - now;
                            gpu_jobs += 1;
                            let finish = done + calib.dl_fixed_s + calib.stack_overhead_s;
                            ue.phase = Phase::Inference { done_s: finish };
                        }
                    }
                    // On failure the backlog stays; RLC retransmits.
                }
            } else {
                for (u, l) in self.ues.iter_mut().zip(links) {
                    u.link.channel = l.channel;
                }
            }
        }
        self.now_s = end_s;

        // --- KPI aggregation -------------------------------------------------
        // Per-user delay: mean of completed frames; censored at the period
        // duration if nothing completed (a clearly constraint-violating
        // configuration).
        let worst_delay = self
            .ues
            .iter()
            .map(|u| {
                if u.completed_delays.is_empty() {
                    self.period_duration_s
                } else {
                    edgebol_linalg::vecops::mean(&u.completed_delays)
                }
            })
            .fold(0.0, f64::max);

        let gpu_util = self.queue.utilization(self.period_duration_s);
        let server_power_w = calib.server_power.power_w(gpu_util, gamma);

        let total_sf = n_sf as f64;
        let occupancies: Vec<f64> = occupied_sf.iter().map(|&c| c as f64 / total_sf).collect();
        let mcs_list: Vec<Mcs> = (0..NUM_MCS).map(|i| Mcs(i as u8)).collect();
        let bs_power_w = calib.bbu_power.power_mixture_w(&occupancies, &mcs_list);

        let map_seed = (self.period as u64).wrapping_mul(0x9E37_79B9) ^ 0xDE5;
        let map = self.dataset.evaluate_map(&calib.detector, control.resolution, map_seed);

        let gpu_delay_s = if gpu_jobs == 0 {
            calib.gpu.inference_time_s(control.resolution, gamma)
        } else {
            gpu_delay_acc / gpu_jobs as f64
        };

        self.period += 1;
        PeriodObservation { delay_s: worst_delay, gpu_delay_s, map, server_power_w, bs_power_w }
    }
}

impl Environment for DesTestbed {
    fn observe_context(&mut self) -> ContextObs {
        let n = self.ues.len();
        let mut reports = Vec::with_capacity(n * 20);
        for i in 0..n {
            let mean = self.scenario.snr_db(i, self.period);
            for _ in 0..20 {
                reports.push(cqi_from_snr(mean + normal(&mut self.rng, 0.0, 1.2)) as f64);
            }
        }
        ContextObs {
            num_users: n,
            mean_cqi: edgebol_linalg::vecops::mean(&reports),
            var_cqi: edgebol_linalg::vecops::variance(&reports),
        }
    }

    fn step(&mut self, control: &ControlInput) -> PeriodObservation {
        let raw = self.run_period_raw(control);
        PeriodObservation {
            delay_s: raw.delay_s,
            gpu_delay_s: raw.gpu_delay_s,
            map: raw.map,
            server_power_w: self.meter.read(raw.server_power_w, &mut self.rng),
            bs_power_w: self.meter.read(raw.bs_power_w, &mut self.rng),
        }
    }

    fn num_users(&self) -> usize {
        self.ues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn des(scenario: Scenario) -> DesTestbed {
        DesTestbed::new(Calibration::default(), scenario, 7)
    }

    #[test]
    fn completes_frames_at_max_resources() {
        let mut t = des(Scenario::single_user(35.0));
        let obs = t.run_period_raw(&ControlInput::max_resources());
        // ~3 frames/s at a ~0.33 s delay: several completions expected.
        assert!(!t.ues[0].completed_delays.is_empty(), "no frames completed");
        assert!((0.25..0.45).contains(&obs.delay_s), "delay {}", obs.delay_s);
    }

    #[test]
    fn delay_in_paper_band_for_quarter_resolution() {
        let mut t = des(Scenario::single_user(35.0));
        let mut c = ControlInput::max_resources();
        c.resolution = 0.25;
        let obs = t.run_period_raw(&c);
        assert!((0.14..0.32).contains(&obs.delay_s), "delay {}", obs.delay_s);
    }

    #[test]
    fn airtime_starvation_shows_in_delay() {
        let mut t = des(Scenario::single_user(35.0));
        let mut c = ControlInput::max_resources();
        c.airtime = 0.2;
        let starved = t.run_period_raw(&c).delay_s;
        let mut t2 = des(Scenario::single_user(35.0));
        let free = t2.run_period_raw(&ControlInput::max_resources()).delay_s;
        assert!(starved > 2.0 * free, "starved {starved} vs free {free}");
    }

    #[test]
    fn censored_delay_when_nothing_completes() {
        let mut t = des(Scenario::single_user(2.0)); // terrible channel
        let mut c = ControlInput::max_resources();
        c.airtime = 0.05;
        let obs = t.run_period_raw(&c);
        assert_eq!(obs.delay_s, t.period_duration_s);
    }

    #[test]
    fn powers_within_calibrated_bands() {
        let mut t = des(Scenario::single_user(35.0));
        let obs = t.run_period_raw(&ControlInput::max_resources());
        assert!((70.0..200.0).contains(&obs.server_power_w), "{}", obs.server_power_w);
        assert!((4.0..8.0).contains(&obs.bs_power_w), "{}", obs.bs_power_w);
    }

    #[test]
    fn ten_users_saturate_airtime_and_raise_bs_power() {
        let mut one = des(Scenario::single_user(35.0));
        let mut ten = des(Scenario::tenx_load(35.0));
        let c = ControlInput::max_resources();
        let p1 = one.run_period_raw(&c).bs_power_w;
        let p10 = ten.run_period_raw(&c).bs_power_w;
        assert!(p10 > p1 + 0.3, "10x load must raise BS power: {p10} vs {p1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = DesTestbed::new(Calibration::default(), Scenario::single_user(30.0), 3);
        let mut b = DesTestbed::new(Calibration::default(), Scenario::single_user(30.0), 3);
        let c = ControlInput::max_resources();
        assert_eq!(a.run_period_raw(&c), b.run_period_raw(&c));
    }

    #[test]
    fn environment_step_adds_meter_noise() {
        let mut a = DesTestbed::new(Calibration::default(), Scenario::single_user(30.0), 3);
        let mut b = DesTestbed::new(Calibration::default(), Scenario::single_user(30.0), 3);
        let c = ControlInput::max_resources();
        let ra = a.step(&c);
        let rb = b.run_period_raw(&c);
        // Same underlying dynamics, but the metered powers differ slightly.
        assert!((ra.server_power_w - rb.server_power_w).abs() < 0.1 * rb.server_power_w);
        assert_eq!(ra.map, rb.map);
    }

    #[test]
    fn context_reports_track_snr() {
        let mut t = des(Scenario::single_user(35.0));
        let ctx = t.observe_context();
        assert!(ctx.mean_cqi > 12.0, "{}", ctx.mean_cqi);
        let mut t_low = des(Scenario::single_user(3.0));
        let ctx_low = t_low.observe_context();
        assert!(ctx_low.mean_cqi < ctx.mean_cqi);
    }

    #[test]
    fn state_persists_across_periods() {
        let mut t = des(Scenario::single_user(35.0));
        let c = ControlInput::max_resources();
        t.run_period_raw(&c);
        let before = t.period();
        t.run_period_raw(&c);
        assert_eq!(t.period(), before + 1);
        assert!(t.now_s >= 2.0 * t.period_duration_s - 1e-9);
    }
}

//! Multi-service extension (§4.4 of the paper).
//!
//! The paper sketches extending EdgeBOL to jointly optimize several AI
//! services sharing the vBS and the GPU — expanding the context/action
//! spaces to `4S + 3` dimensions and the constraints to `2S + 2` — and
//! argues this is "intractable in real-life large-scale deployments"
//! (curse of dimensionality), recommending pre-partitioned per-service
//! slices instead. This module implements the *environment* side of that
//! discussion so the claim can be tested: `S` services, each a closed-loop
//! single-user pipeline with its own control, coupled through
//!
//! * the **shared airtime budget** — if the services' airtime policies
//!   oversubscribe the carrier, the MAC scales every slice down
//!   proportionally, and
//! * the **shared GPU** — every service's requests feed one inference
//!   queue, so one service's low-res/high-rate traffic inflates the
//!   others' queueing delay.
//!
//! The `multiservice` bench bin compares joint learning on the expanded
//! space against independent per-slice agents with pre-partitioned
//! budgets, reproducing §4.4's trade-off.

use crate::calib::Calibration;
use crate::meter::PowerMeter;
use crate::observe::{ControlInput, PeriodObservation};
use edgebol_edge::GpuSpeedPolicy;
use edgebol_linalg::stats::normal;
use edgebol_media::Dataset;
use edgebol_ran::{cqi_from_snr, max_mcs_for_cqi, phy, tbs_bits};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One service's static configuration.
#[derive(Debug, Clone)]
pub struct ServiceCfg {
    /// The service's user mean SNR (dB).
    pub snr_db: f64,
}

/// The coupled multi-service testbed.
#[derive(Debug, Clone)]
pub struct MultiServiceTestbed {
    calib: Calibration,
    services: Vec<ServiceCfg>,
    datasets: Vec<Dataset>,
    meter: PowerMeter,
    rng: SmallRng,
    period: usize,
}

impl MultiServiceTestbed {
    /// Creates the testbed for `services`, deterministic given `seed`.
    ///
    /// # Panics
    /// Panics if `services` is empty.
    pub fn new(calib: Calibration, services: Vec<ServiceCfg>, seed: u64) -> Self {
        assert!(!services.is_empty(), "need at least one service");
        let datasets = (0..services.len())
            .map(|i| Dataset::generate(calib.dataset_size, seed ^ (0x5EED + i as u64)))
            .collect();
        let meter = PowerMeter::new(calib.meter_noise_rel);
        MultiServiceTestbed {
            calib,
            services,
            datasets,
            meter,
            rng: SmallRng::seed_from_u64(seed),
            period: 0,
        }
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Current period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Solves the coupled steady state: per-service delays and the shared
    /// power draws. Noiseless; `step` adds the measurement noise.
    ///
    /// # Panics
    /// Panics if `controls.len() != self.num_services()`.
    pub fn joint_steady_state(&self, controls: &[ControlInput]) -> JointSteadyState {
        assert_eq!(controls.len(), self.services.len(), "one control per service");
        let c = &self.calib;
        let s = controls.len();

        // Airtime admission: oversubscribed slices are scaled down
        // proportionally by the MAC.
        let requested: f64 = controls.iter().map(|x| x.airtime.clamp(0.05, 1.0)).sum();
        let scale = if requested > 1.0 { 1.0 / requested } else { 1.0 };

        // Per-service static pieces.
        let mut bits = Vec::with_capacity(s);
        let mut pre = Vec::with_capacity(s);
        let mut inf = Vec::with_capacity(s);
        let mut rate = Vec::with_capacity(s);
        let mut sf_per_image = Vec::with_capacity(s);
        let mut mcs = Vec::with_capacity(s);
        for (x, svc) in controls.iter().zip(&self.services) {
            let enc = c.encode.encode(x.resolution);
            bits.push(enc.bytes * 8.0);
            pre.push(enc.preproc_s);
            let gamma = GpuSpeedPolicy::clamped(x.gpu_speed);
            inf.push(c.gpu.inference_time_s(x.resolution, gamma));
            let m = max_mcs_for_cqi(cqi_from_snr(svc.snr_db)).min(x.mcs_cap);
            let gf = c.harq.goodput_factor(svc.snr_db, m).max(1e-3);
            let tbs = tbs_bits(m, c.slice_prbs);
            rate.push(tbs * gf / phy::SUBFRAME_S);
            sf_per_image.push(bits[bits.len() - 1] / (tbs * gf));
            mcs.push(m);
        }
        let fixed = c.dl_fixed_s + c.stack_overhead_s;

        // Coupled fixed point: each service transmits within its own
        // (admitted) slice; all share the GPU.
        let mut d: Vec<f64> = (0..s).map(|i| pre[i] + inf[i] + fixed + 1.0).collect();
        for _ in 0..60 {
            let lambda: f64 = d.iter().map(|dd| 1.0 / dd).sum();
            for i in 0..s {
                let alpha_i = controls[i].airtime.clamp(0.05, 1.0) * scale;
                let tx = bits[i] / (rate[i] * alpha_i);
                // Joint GPU utilization with per-service share excluded.
                let rho_all: f64 = (0..s).map(|j| inf[j] / d[j]).sum::<f64>().min(0.95);
                let rho_others = (rho_all - inf[i] / d[i]).max(0.0);
                // Mean service time of the mixture for the M/G/1-ish wait.
                let mean_inf = (0..s).map(|j| inf[j] / d[j]).sum::<f64>() / lambda.max(1e-9);
                let wait = rho_others * mean_inf / (2.0 * (1.0 - rho_all));
                let new_d = pre[i] + tx + wait + inf[i] + fixed;
                d[i] = 0.5 * d[i] + 0.5 * new_d;
            }
        }

        let gpu_utilization = ((0..s).map(|j| inf[j] / d[j]).sum::<f64>()).min(1.0);
        // The server runs at the fastest configured limit among services
        // (one physical GPU; the paper's extension would add a coupling
        // constraint here — we take the max-limit policy as the enforced
        // one, the conservative choice for power).
        let gamma_max = controls.iter().map(|x| x.gpu_speed).fold(0.0f64, f64::max);
        let server_power_w =
            c.server_power.power_w(gpu_utilization, GpuSpeedPolicy::clamped(gamma_max));

        let mut occupancy: Vec<f64> =
            (0..s).map(|i| sf_per_image[i] / d[i] * phy::SUBFRAME_S).collect();
        let total: f64 = occupancy.iter().sum();
        if total > 1.0 {
            for o in &mut occupancy {
                *o /= total;
            }
        }
        let bs_power_w = c.bbu_power.power_mixture_w(&occupancy, &mcs);

        JointSteadyState { delays_s: d, gpu_utilization, server_power_w, bs_power_w, scale }
    }

    /// Runs one period: noisy per-service observations. Power draws are
    /// shared quantities and appear identically in every service's
    /// observation.
    pub fn step(&mut self, controls: &[ControlInput]) -> Vec<PeriodObservation> {
        let ss = self.joint_steady_state(controls);
        let srv = self.meter.read(ss.server_power_w, &mut self.rng);
        let bs = self.meter.read(ss.bs_power_w, &mut self.rng);
        let out = (0..self.services.len())
            .map(|i| {
                let map_seed = (self.period as u64).wrapping_mul(0x9E37_79B9) ^ (i as u64) << 7;
                let map = self.datasets[i].evaluate_map(
                    &self.calib.detector,
                    controls[i].resolution,
                    map_seed,
                );
                let delay =
                    ss.delays_s[i] * (1.0 + normal(&mut self.rng, 0.0, self.calib.delay_noise_rel));
                PeriodObservation {
                    delay_s: delay.max(1e-3),
                    gpu_delay_s: ss.delays_s[i].min(1.0), // coupled; detail KPI
                    map,
                    server_power_w: srv,
                    bs_power_w: bs,
                }
            })
            .collect();
        self.period += 1;
        out
    }
}

/// Noiseless joint steady state.
#[derive(Debug, Clone)]
pub struct JointSteadyState {
    /// Per-service end-to-end delay (s).
    pub delays_s: Vec<f64>,
    /// Shared GPU utilization.
    pub gpu_utilization: f64,
    /// Shared server power (W).
    pub server_power_w: f64,
    /// Shared BS power (W).
    pub bs_power_w: f64,
    /// Airtime admission scale applied (1.0 = no oversubscription).
    pub scale: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_ran::Mcs;

    fn testbed(n: usize) -> MultiServiceTestbed {
        MultiServiceTestbed::new(
            Calibration::fast(),
            (0..n).map(|_| ServiceCfg { snr_db: 35.0 }).collect(),
            9,
        )
    }

    fn ctl(res: f64, airtime: f64) -> ControlInput {
        ControlInput { resolution: res, airtime, gpu_speed: 1.0, mcs_cap: Mcs::MAX }
    }

    #[test]
    fn single_service_matches_flow_testbed() {
        // With one service the joint model must reduce to the single-user
        // flow model.
        let multi = testbed(1);
        let flow =
            crate::FlowTestbed::new(Calibration::fast(), crate::Scenario::single_user(35.0), 9);
        let x = ctl(1.0, 1.0);
        let joint = multi.joint_steady_state(&[x]);
        let single = flow.steady_state(&[35.0], &x);
        assert!(
            (joint.delays_s[0] - single.worst_delay_s()).abs() < 0.02,
            "joint {} vs single {}",
            joint.delays_s[0],
            single.worst_delay_s()
        );
        assert!((joint.server_power_w - single.server_power_w).abs() < 3.0);
    }

    #[test]
    fn gpu_coupling_inflates_the_other_service() {
        let multi = testbed(2);
        // Service 1 alone vs service 1 next to a hungry low-res service.
        let solo = multi.joint_steady_state(&[ctl(1.0, 0.5), ctl(1.0, 0.5)]);
        let coupled = multi.joint_steady_state(&[ctl(1.0, 0.5), ctl(0.25, 0.5)]);
        assert!(
            coupled.delays_s[0] > solo.delays_s[0],
            "low-res neighbour should inflate service 1's delay: {} vs {}",
            coupled.delays_s[0],
            solo.delays_s[0]
        );
        assert!(coupled.server_power_w > solo.server_power_w);
    }

    #[test]
    fn airtime_oversubscription_is_admitted_proportionally() {
        let multi = testbed(2);
        let over = multi.joint_steady_state(&[ctl(1.0, 0.8), ctl(1.0, 0.8)]);
        assert!((over.scale - 1.0 / 1.6).abs() < 1e-12);
        let fit = multi.joint_steady_state(&[ctl(1.0, 0.5), ctl(1.0, 0.5)]);
        assert_eq!(fit.scale, 1.0);
        // Scaling slows both services relative to the fitting allocation.
        assert!(over.delays_s[0] > fit.delays_s[0] * 0.99);
    }

    #[test]
    fn step_emits_one_observation_per_service() {
        let mut multi = testbed(3);
        let controls = vec![ctl(1.0, 0.3), ctl(0.5, 0.3), ctl(0.75, 0.3)];
        let obs = multi.step(&controls);
        assert_eq!(obs.len(), 3);
        for o in &obs {
            assert!(o.delay_s > 0.0);
            assert!((0.0..=1.0).contains(&o.map));
        }
        // Shared power draws are identical across services.
        assert_eq!(obs[0].server_power_w, obs[1].server_power_w);
        assert_eq!(obs[0].bs_power_w, obs[2].bs_power_w);
        // Different resolutions give different mAP.
        assert!(obs[0].map > obs[1].map);
        assert_eq!(multi.period(), 1);
    }

    #[test]
    #[should_panic(expected = "one control per service")]
    fn rejects_control_count_mismatch() {
        let multi = testbed(2);
        let _ = multi.joint_steady_state(&[ctl(1.0, 1.0)]);
    }
}

//! Shared observation and control types.

use edgebol_ran::Mcs;
use serde::{Deserialize, Serialize};

/// The control policy `x = [eta, a, gamma, m]` of §4.2, in physical units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlInput {
    /// Policy 1 — image resolution fraction in (0, 1].
    pub resolution: f64,
    /// Policy 2 — uplink airtime (duty-cycle) fraction in (0, 1].
    pub airtime: f64,
    /// Policy 3 — GPU speed fraction in [0, 1] (power limit 100–280 W).
    pub gpu_speed: f64,
    /// Policy 4 — maximum eligible MCS.
    pub mcs_cap: Mcs,
}

impl ControlInput {
    /// The most resource-hungry, delay-minimizing configuration: the
    /// paper's initial safe set `S_0` ("intentionally selected to be the
    /// ones with the lowest delay, the highest mAP and, therefore, the
    /// highest consumed power").
    pub fn max_resources() -> Self {
        ControlInput { resolution: 1.0, airtime: 1.0, gpu_speed: 1.0, mcs_cap: Mcs::MAX }
    }

    /// Builds a control from normalized grid coordinates in `[0, 1]^4`
    /// (the learner's action space). Resolution and airtime are floored
    /// at 10% / 5% — zero-resolution or zero-airtime slices are dead.
    pub fn from_unit(eta: f64, a: f64, gamma: f64, m: f64) -> Self {
        ControlInput {
            resolution: (0.1 + 0.9 * eta.clamp(0.0, 1.0)).clamp(0.1, 1.0),
            airtime: (0.05 + 0.95 * a.clamp(0.0, 1.0)).clamp(0.05, 1.0),
            gpu_speed: gamma.clamp(0.0, 1.0),
            mcs_cap: Mcs::clamped((m.clamp(0.0, 1.0) * 28.0).round() as i64),
        }
    }

    /// Projects back to normalized grid coordinates in `[0, 1]^4`.
    pub fn to_unit(&self) -> [f64; 4] {
        [
            ((self.resolution - 0.1) / 0.9).clamp(0.0, 1.0),
            ((self.airtime - 0.05) / 0.95).clamp(0.0, 1.0),
            self.gpu_speed.clamp(0.0, 1.0),
            self.mcs_cap.index() as f64 / 28.0,
        ]
    }
}

/// The context `c_t = [n_t, mean CQI, var CQI]` of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextObs {
    /// Number of users in the slice.
    pub num_users: usize,
    /// Mean uplink CQI across users over the previous period.
    pub mean_cqi: f64,
    /// Variance of the uplink CQI across users over the previous period.
    pub var_cqi: f64,
}

impl ContextObs {
    /// Normalized context vector for the learner: users scaled by a
    /// nominal maximum of 8, CQI by its 1–15 range, variance by 16.
    pub fn to_unit(&self) -> [f64; 3] {
        [
            (self.num_users as f64 / 8.0).min(1.0),
            ((self.mean_cqi - 1.0) / 14.0).clamp(0.0, 1.0),
            (self.var_cqi / 16.0).clamp(0.0, 1.0),
        ]
    }
}

/// One period's noisy KPI observations (§4.2): the four quantities
/// EdgeBOL's GPs are trained on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodObservation {
    /// Service delay `d_t` (worst across users), seconds.
    pub delay_s: f64,
    /// Server-side latency component (GPU queueing + inference), seconds —
    /// the "GPU delay" of Fig. 3 (bottom).
    pub gpu_delay_s: f64,
    /// Precision `rho_t` (mAP, worst across users).
    pub map: f64,
    /// Edge-server power `p^s_t`, watts.
    pub server_power_w: f64,
    /// vBS (BBU) power `p^b_t`, watts.
    pub bs_power_w: f64,
}

impl PeriodObservation {
    /// The scalar cost of eq. (1): `u = delta1 * p_s + delta2 * p_b`.
    pub fn cost(&self, delta1: f64, delta2: f64) -> f64 {
        delta1 * self.server_power_w + delta2 * self.bs_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrip_on_grid() {
        for i in 0..=10 {
            let v = i as f64 / 10.0;
            let c = ControlInput::from_unit(v, v, v, v);
            let back = c.to_unit();
            assert!((back[0] - v).abs() < 1e-9, "eta");
            assert!((back[1] - v).abs() < 1e-9, "airtime");
            assert!((back[2] - v).abs() < 1e-9, "gamma");
            // MCS is quantized to 29 levels; allow half a step.
            assert!((back[3] - v).abs() <= 0.5 / 28.0 + 1e-9, "mcs");
        }
    }

    #[test]
    fn from_unit_floors_resolution_and_airtime() {
        let c = ControlInput::from_unit(0.0, 0.0, 0.0, 0.0);
        assert!(c.resolution >= 0.1);
        assert!(c.airtime >= 0.05);
        assert_eq!(c.mcs_cap, Mcs(0));
    }

    #[test]
    fn max_resources_is_top_corner() {
        let c = ControlInput::max_resources();
        assert_eq!(c.resolution, 1.0);
        assert_eq!(c.airtime, 1.0);
        assert_eq!(c.gpu_speed, 1.0);
        assert_eq!(c.mcs_cap, Mcs::MAX);
        assert_eq!(c.to_unit(), [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn context_normalization_bounds() {
        let c = ContextObs { num_users: 20, mean_cqi: 15.0, var_cqi: 100.0 };
        let u = c.to_unit();
        assert!(u.iter().all(|v| (0.0..=1.0).contains(v)));
        let c2 = ContextObs { num_users: 1, mean_cqi: 1.0, var_cqi: 0.0 };
        let u2 = c2.to_unit();
        assert_eq!(u2[1], 0.0);
        assert_eq!(u2[2], 0.0);
    }

    #[test]
    fn cost_combines_powers() {
        let o = PeriodObservation {
            delay_s: 0.3,
            gpu_delay_s: 0.1,
            map: 0.5,
            server_power_w: 100.0,
            bs_power_w: 5.0,
        };
        assert_eq!(o.cost(1.0, 8.0), 140.0);
        assert_eq!(o.cost(0.0, 1.0), 5.0);
    }
}

//! Experiment scenarios: user populations and SNR dynamics.

use edgebol_ran::SnrTrace;
use serde::{Deserialize, Serialize};

/// One user's radio situation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserCfg {
    /// Mean uplink SNR (dB) relative to the scenario trace: the user's
    /// effective mean SNR at period `t` is `trace.snr_at(t) + offset_db`.
    pub offset_db: f64,
}

/// A full experiment scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The base SNR trajectory (constant for static experiments,
    /// [`SnrTrace::dynamic_fig13`] for Fig. 13).
    pub trace: SnrTrace,
    /// Users in the slice; `offset_db = 0` for a single nominal user.
    pub users: Vec<UserCfg>,
}

impl Scenario {
    /// Single user at a constant mean SNR — the setup of §6.2/§6.3
    /// (35 dB = "good wireless conditions").
    pub fn single_user(snr_db: f64) -> Self {
        Scenario { trace: SnrTrace::constant(snr_db), users: vec![UserCfg { offset_db: 0.0 }] }
    }

    /// The §6.4 heterogeneous population: user 1 at 30 dB and every
    /// additional user 20% lower (in dB), up to `n` users.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn heterogeneous(n: usize) -> Self {
        assert!(n > 0, "need at least one user");
        let base = 30.0;
        let users =
            (0..n).map(|i| UserCfg { offset_db: base * 0.8f64.powi(i as i32) - base }).collect();
        Scenario { trace: SnrTrace::constant(base), users }
    }

    /// The Fig. 6 "10x load" scenario: ten identical users at good SNR.
    pub fn tenx_load(snr_db: f64) -> Self {
        Scenario {
            trace: SnrTrace::constant(snr_db),
            users: (0..10).map(|_| UserCfg { offset_db: 0.0 }).collect(),
        }
    }

    /// The Fig. 13 dynamic-context scenario: one user, stepping SNR.
    pub fn dynamic() -> Self {
        Scenario { trace: SnrTrace::dynamic_fig13(), users: vec![UserCfg { offset_db: 0.0 }] }
    }

    /// The degraded-mode (chaos) suite setting: a single nominal user at
    /// the §6.2 good-SNR operating point. A fixed, well-conditioned
    /// environment so every divergence between a faulted and a fault-free
    /// episode is attributable to the control plane, not the radio.
    pub fn chaos_suite() -> Self {
        Self::single_user(35.0)
    }

    /// The recovery (survivable-control-plane) suite setting: identical
    /// to [`Scenario::chaos_suite`], named separately so outage/resync
    /// experiments keep compiling if the chaos suite's operating point
    /// ever moves. Trace-prefix assertions ("bit-identical up to the
    /// outage window") rely on the fixed environment this provides.
    pub fn recovery_suite() -> Self {
        Self::chaos_suite()
    }

    /// The deterministic fleet-slice scenario family: slice `id` of a
    /// multi-slice deployment gets a population and radio situation
    /// derived (splitmix-style) from its id alone, so a fleet of any
    /// size is reproducible without carrying per-slice configuration.
    ///
    /// The family spans the contextual range the paper's learner sees:
    /// 1–4 users, base SNR 22–38 dB, per-user offsets up to −6 dB. Two
    /// slices with nearby ids are *not* correlated — neighbourhood in
    /// context space is what the fleet layer's warm-start transfer keys
    /// on, not id adjacency.
    pub fn fleet_slice(id: u64) -> Self {
        // splitmix64: a well-mixed 64-bit hash of the slice id.
        let mut x = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let n = 1 + (x % 4) as usize;
        let snr = 22.0 + ((x >> 8) % 1601) as f64 * 0.01; // 22.00–38.00 dB
        let users = (0..n)
            .map(|i| {
                let h = (x >> (16 + 4 * i)) & 0xFF;
                UserCfg { offset_db: -(h as f64) * 6.0 / 255.0 }
            })
            .collect();
        Scenario { trace: SnrTrace::constant(snr), users }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Mean SNR of user `i` at period `t`.
    pub fn snr_db(&self, user: usize, period: usize) -> f64 {
        self.trace.snr_at(period) + self.users[user].offset_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_constant() {
        let s = Scenario::single_user(35.0);
        assert_eq!(s.num_users(), 1);
        assert_eq!(s.snr_db(0, 0), 35.0);
        assert_eq!(s.snr_db(0, 1000), 35.0);
    }

    #[test]
    fn heterogeneous_degrades_20pct_per_user() {
        let s = Scenario::heterogeneous(4);
        assert_eq!(s.num_users(), 4);
        assert!((s.snr_db(0, 0) - 30.0).abs() < 1e-12);
        assert!((s.snr_db(1, 0) - 24.0).abs() < 1e-12);
        assert!((s.snr_db(2, 0) - 19.2).abs() < 1e-12);
        assert!((s.snr_db(3, 0) - 15.36).abs() < 1e-12);
    }

    #[test]
    fn tenx_load_has_ten_users() {
        let s = Scenario::tenx_load(35.0);
        assert_eq!(s.num_users(), 10);
        for i in 0..10 {
            assert_eq!(s.snr_db(i, 0), 35.0);
        }
    }

    #[test]
    fn dynamic_scenario_changes_over_time() {
        let s = Scenario::dynamic();
        let early = s.snr_db(0, 0);
        let later = s.snr_db(0, 110);
        assert_ne!(early, later);
    }

    #[test]
    fn recovery_suite_matches_the_chaos_suite_operating_point() {
        let r = Scenario::recovery_suite();
        let c = Scenario::chaos_suite();
        assert_eq!(r.num_users(), c.num_users());
        assert_eq!(r.snr_db(0, 0), c.snr_db(0, 0));
        assert_eq!(r.snr_db(0, 500), c.snr_db(0, 500));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn heterogeneous_rejects_zero_users() {
        let _ = Scenario::heterogeneous(0);
    }

    #[test]
    fn fleet_slice_is_deterministic_and_in_range() {
        for id in 0..200 {
            let a = Scenario::fleet_slice(id);
            let b = Scenario::fleet_slice(id);
            assert_eq!(a.num_users(), b.num_users(), "slice {id}");
            assert!((1..=4).contains(&a.num_users()), "slice {id}: {} users", a.num_users());
            for u in 0..a.num_users() {
                assert_eq!(a.snr_db(u, 0), b.snr_db(u, 0), "slice {id} user {u}");
                let snr = a.snr_db(u, 0);
                assert!((16.0..=38.0).contains(&snr), "slice {id} user {u}: {snr} dB");
            }
        }
    }

    #[test]
    fn fleet_slices_are_diverse() {
        let counts: Vec<usize> = (0..64).map(|i| Scenario::fleet_slice(i).num_users()).collect();
        let snrs: Vec<f64> = (0..64).map(|i| Scenario::fleet_slice(i).snr_db(0, 0)).collect();
        assert!(counts.contains(&1) && counts.iter().any(|&c| c > 1));
        let lo = snrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = snrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 5.0, "SNR spread {lo}..{hi} too narrow");
    }
}

//! Experiment scenarios: user populations and SNR dynamics.

use edgebol_ran::SnrTrace;
use serde::{Deserialize, Serialize};

/// One user's radio situation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserCfg {
    /// Mean uplink SNR (dB) relative to the scenario trace: the user's
    /// effective mean SNR at period `t` is `trace.snr_at(t) + offset_db`.
    pub offset_db: f64,
}

/// A full experiment scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The base SNR trajectory (constant for static experiments,
    /// [`SnrTrace::dynamic_fig13`] for Fig. 13).
    pub trace: SnrTrace,
    /// Users in the slice; `offset_db = 0` for a single nominal user.
    pub users: Vec<UserCfg>,
}

impl Scenario {
    /// Single user at a constant mean SNR — the setup of §6.2/§6.3
    /// (35 dB = "good wireless conditions").
    pub fn single_user(snr_db: f64) -> Self {
        Scenario { trace: SnrTrace::constant(snr_db), users: vec![UserCfg { offset_db: 0.0 }] }
    }

    /// The §6.4 heterogeneous population: user 1 at 30 dB and every
    /// additional user 20% lower (in dB), up to `n` users.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn heterogeneous(n: usize) -> Self {
        assert!(n > 0, "need at least one user");
        let base = 30.0;
        let users =
            (0..n).map(|i| UserCfg { offset_db: base * 0.8f64.powi(i as i32) - base }).collect();
        Scenario { trace: SnrTrace::constant(base), users }
    }

    /// The Fig. 6 "10x load" scenario: ten identical users at good SNR.
    pub fn tenx_load(snr_db: f64) -> Self {
        Scenario {
            trace: SnrTrace::constant(snr_db),
            users: (0..10).map(|_| UserCfg { offset_db: 0.0 }).collect(),
        }
    }

    /// The Fig. 13 dynamic-context scenario: one user, stepping SNR.
    pub fn dynamic() -> Self {
        Scenario { trace: SnrTrace::dynamic_fig13(), users: vec![UserCfg { offset_db: 0.0 }] }
    }

    /// The degraded-mode (chaos) suite setting: a single nominal user at
    /// the §6.2 good-SNR operating point. A fixed, well-conditioned
    /// environment so every divergence between a faulted and a fault-free
    /// episode is attributable to the control plane, not the radio.
    pub fn chaos_suite() -> Self {
        Self::single_user(35.0)
    }

    /// The recovery (survivable-control-plane) suite setting: identical
    /// to [`Scenario::chaos_suite`], named separately so outage/resync
    /// experiments keep compiling if the chaos suite's operating point
    /// ever moves. Trace-prefix assertions ("bit-identical up to the
    /// outage window") rely on the fixed environment this provides.
    pub fn recovery_suite() -> Self {
        Self::chaos_suite()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Mean SNR of user `i` at period `t`.
    pub fn snr_db(&self, user: usize, period: usize) -> f64 {
        self.trace.snr_at(period) + self.users[user].offset_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_constant() {
        let s = Scenario::single_user(35.0);
        assert_eq!(s.num_users(), 1);
        assert_eq!(s.snr_db(0, 0), 35.0);
        assert_eq!(s.snr_db(0, 1000), 35.0);
    }

    #[test]
    fn heterogeneous_degrades_20pct_per_user() {
        let s = Scenario::heterogeneous(4);
        assert_eq!(s.num_users(), 4);
        assert!((s.snr_db(0, 0) - 30.0).abs() < 1e-12);
        assert!((s.snr_db(1, 0) - 24.0).abs() < 1e-12);
        assert!((s.snr_db(2, 0) - 19.2).abs() < 1e-12);
        assert!((s.snr_db(3, 0) - 15.36).abs() < 1e-12);
    }

    #[test]
    fn tenx_load_has_ten_users() {
        let s = Scenario::tenx_load(35.0);
        assert_eq!(s.num_users(), 10);
        for i in 0..10 {
            assert_eq!(s.snr_db(i, 0), 35.0);
        }
    }

    #[test]
    fn dynamic_scenario_changes_over_time() {
        let s = Scenario::dynamic();
        let early = s.snr_db(0, 0);
        let later = s.snr_db(0, 110);
        assert_ne!(early, later);
    }

    #[test]
    fn recovery_suite_matches_the_chaos_suite_operating_point() {
        let r = Scenario::recovery_suite();
        let c = Scenario::chaos_suite();
        assert_eq!(r.num_users(), c.num_users());
        assert_eq!(r.snr_db(0, 0), c.snr_db(0, 0));
        assert_eq!(r.snr_db(0, 500), c.snr_db(0, 500));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn heterogeneous_rejects_zero_users() {
        let _ = Scenario::heterogeneous(0);
    }
}

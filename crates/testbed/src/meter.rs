//! Power-meter reading noise (GW-Instek GPM-8213 stand-in).

use edgebol_linalg::stats::normal;
use rand::Rng;

/// A sampling power meter with multiplicative Gaussian reading noise.
///
/// The paper's observations are explicitly noisy ("the observations of the
/// performance indicators are noisy … since the system is stochastic in
/// nature"); the learner's GP noise variance exists to absorb exactly this.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    /// Relative standard deviation of a reading.
    rel_std: f64,
}

impl PowerMeter {
    /// Creates a meter with the given relative reading noise.
    ///
    /// # Panics
    /// Panics if `rel_std` is negative or not finite.
    pub fn new(rel_std: f64) -> Self {
        assert!(rel_std >= 0.0 && rel_std.is_finite(), "noise std must be non-negative");
        PowerMeter { rel_std }
    }

    /// Samples a reading of a true power value (never negative).
    pub fn read<R: Rng + ?Sized>(&self, true_power_w: f64, rng: &mut R) -> f64 {
        (true_power_w * (1.0 + normal(rng, 0.0, self.rel_std))).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_linalg::stats::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_exact() {
        let m = PowerMeter::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.read(123.4, &mut rng), 123.4);
    }

    #[test]
    fn readings_unbiased_with_configured_spread() {
        let m = PowerMeter::new(0.02);
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.push(m.read(100.0, &mut rng));
        }
        assert!((w.mean() - 100.0).abs() < 0.2, "mean {}", w.mean());
        assert!((w.std() - 2.0).abs() < 0.2, "std {}", w.std());
    }

    #[test]
    fn readings_never_negative() {
        let m = PowerMeter::new(2.0); // absurd noise
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(m.read(1.0, &mut rng) >= 0.0);
        }
    }
}

//! Property-based tests of the neural substrate.

use edgebol_nn::{soft_update, Activation, Adam, Mlp, ReplayBuffer};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Analytic parameter gradients match central differences for random
    /// tanh networks and random inputs.
    #[test]
    fn gradients_match_finite_differences(
        seed in 0u64..200,
        x in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let (y, cache) = net.forward_train(&x);
        let (grads, input_grad) = net.backward(&cache, &y); // L = |y|^2 / 2
        let loss = |n: &Mlp, x: &[f64]| n.forward(x).iter().map(|v| v * v).sum::<f64>() / 2.0;
        let eps = 1e-6;
        for pi in (0..net.param_count()).step_by(5) {
            let orig = net.params()[pi];
            net.params_mut()[pi] = orig + eps;
            let lp = loss(&net, &x);
            net.params_mut()[pi] = orig - eps;
            let lm = loss(&net, &x);
            net.params_mut()[pi] = orig;
            prop_assert!(((lp - lm) / (2.0 * eps) - grads[pi]).abs() < 1e-5);
        }
        for xi in 0..3 {
            let mut xp = x.clone();
            xp[xi] += eps;
            let mut xm = x.clone();
            xm[xi] -= eps;
            let fd = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            prop_assert!((fd - input_grad[xi]).abs() < 1e-5);
        }
    }

    /// Sigmoid outputs always live strictly inside (0, 1).
    #[test]
    fn sigmoid_head_bounded(seed in 0u64..100, x in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Sigmoid, &mut rng);
        let y = net.forward(&x);
        prop_assert!(y.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    /// Adam with any positive learning rate reduces a convex quadratic.
    #[test]
    fn adam_descends_quadratic(lr in 0.001f64..0.5, x0 in -10.0f64..10.0) {
        let mut x = vec![x0];
        let mut opt = Adam::new(1, lr);
        let f = |x: f64| (x - 1.0) * (x - 1.0);
        let before = f(x[0]);
        for _ in 0..200 {
            let g = vec![2.0 * (x[0] - 1.0)];
            opt.step(&mut x, &g);
        }
        prop_assert!(f(x[0]) <= before + 1e-12, "ascended: {} -> {}", before, f(x[0]));
    }

    /// Soft update with tau keeps parameters between source and target.
    #[test]
    fn soft_update_is_convex_combination(tau in 0.0f64..=1.0, seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let src = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let mut dst = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let old: Vec<f64> = dst.params().to_vec();
        soft_update(&mut dst, &src, tau);
        for ((d, &s), &o) in dst.params().iter().zip(src.params()).zip(&old) {
            let lo = s.min(o) - 1e-12;
            let hi = s.max(o) + 1e-12;
            prop_assert!(*d >= lo && *d <= hi);
        }
    }

    /// Replay buffer: capacity respected, sampling only returns stored
    /// values, retained set is the most recent suffix.
    #[test]
    fn replay_semantics(cap in 1usize..20, n in 0usize..60, seed in 0u64..20) {
        let mut rb = ReplayBuffer::new(cap);
        for i in 0..n {
            rb.push(i);
        }
        prop_assert_eq!(rb.len(), n.min(cap));
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in rb.sample(&mut rng, 32) {
            prop_assert!(v < n, "sampled a value never pushed");
            prop_assert!(n <= cap || v >= n - cap, "sampled an evicted value");
        }
    }
}

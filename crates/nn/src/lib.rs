//! Minimal neural-network substrate for the DDPG benchmark.
//!
//! The paper compares EdgeBOL against a deep deterministic policy gradient
//! (DDPG) agent "implemented with neural networks" (§6.5, Fig. 14), adapted
//! from vrAIn. Reproducing that benchmark from scratch requires a small but
//! complete deep-learning stack:
//!
//! * [`Mlp`] — fully-connected networks with ReLU/Tanh/Sigmoid/linear
//!   activations, exact reverse-mode gradients for both parameters **and
//!   inputs** (the input gradient is what the DDPG actor update needs:
//!   `∇_a Q(s, a)`).
//! * [`Adam`] — the Adam optimizer with bias correction.
//! * [`ReplayBuffer`] — a fixed-capacity ring buffer with uniform sampling.
//! * [`soft_update`] — Polyak averaging for target networks.
//!
//! The stack is deliberately scalar-`f64`, allocation-conscious and fully
//! deterministic given an RNG seed; the networks involved (a few thousand
//! parameters) do not justify SIMD/GPU machinery.
//!
//! # Example
//!
//! ```
//! use edgebol_nn::{Activation, Adam, Mlp};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Fit y = 2x - 1 with a tiny network.
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Relu, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(net.param_count(), 1e-2);
//! for step in 0..600 {
//!     let x = (step % 20) as f64 / 10.0 - 1.0;
//!     let (y, cache) = net.forward_train(&[x]);
//!     let err = y[0] - (2.0 * x - 1.0);
//!     let (grads, _) = net.backward(&cache, &[2.0 * err]);
//!     opt.step(net.params_mut(), &grads);
//! }
//! let y = net.forward(&[0.25]);
//! assert!((y[0] - (-0.5)).abs() < 0.15);
//! ```

mod adam;
mod mlp;
mod replay;

pub use adam::Adam;
pub use mlp::{soft_update, Activation, ForwardCache, Mlp};
pub use replay::ReplayBuffer;

//! The Adam optimizer (Kingma & Ba, 2015) over a flat parameter vector.

/// Adam state for one parameter vector.
///
/// Keeps first/second moment estimates and the step counter; `step`
/// applies one bias-corrected update in place.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with the standard
    /// `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    ///
    /// # Panics
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(n: usize, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Overrides the moment decay coefficients.
    ///
    /// # Panics
    /// Panics unless both betas lie in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Adjusts the learning rate (e.g., for decay schedules).
    ///
    /// # Panics
    /// Panics if `lr` is not strictly positive and finite.
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one descent step: `params -= lr * m_hat / (sqrt(v_hat) + eps)`.
    ///
    /// # Panics
    /// Panics if `params` or `grads` disagree with the optimizer size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_convex_quadratic() {
        // f(x) = (x0-1)^2 + (x1+2)^2
        let mut x = vec![5.0, 5.0];
        let mut opt = Adam::new(2, 0.1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 1.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] + 2.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ~lr * sign(g).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[123.0]);
        assert!((x[0] + 0.01).abs() < 1e-6, "{}", x[0]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn zero_grad_is_noop_after_reset_state() {
        let mut x = vec![1.0, 2.0];
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut x, &[0.0, 0.0]);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut opt = Adam::new(1, 0.1);
        opt.set_lr(1e-3);
        assert_eq!(opt.lr(), 1e-3);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
        assert!(x[0].abs() < 2e-3);
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn rejects_mismatched_sizes() {
        let mut opt = Adam::new(2, 0.1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
    }
}

//! Fixed-capacity experience replay with uniform sampling.

use rand::{Rng, RngExt};

/// A ring buffer of transitions for off-policy learning.
///
/// Once full, new items overwrite the oldest ones. Sampling is uniform
/// with replacement, which is the standard choice for DDPG.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    buf: Vec<T>,
    cap: usize,
    /// Next write position once the buffer is full.
    head: usize,
}

impl<T: Clone> ReplayBuffer<T> {
    /// Creates a buffer that retains at most `cap` items.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "replay capacity must be positive");
        ReplayBuffer { buf: Vec::with_capacity(cap.min(4096)), cap, head: 0 }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Stores one transition, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Uniformly samples `n` items (with replacement).
    ///
    /// Returns an empty vector when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<T> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| self.buf[rng.random_range(0..self.buf.len())].clone()).collect()
    }

    /// Iterates over the retained items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_then_wraps() {
        let mut rb = ReplayBuffer::new(3);
        assert!(rb.is_empty());
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.len(), 3);
        let mut kept: Vec<i32> = rb.iter().copied().collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn sample_draws_only_stored_items() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..4 {
            rb.push(i);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let s = rb.sample(&mut rng, 100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| (0..4).contains(v)));
        // All four items appear in a large sample.
        for i in 0..4 {
            assert!(s.contains(&i), "item {i} never sampled");
        }
    }

    #[test]
    fn sample_empty_returns_empty() {
        let rb: ReplayBuffer<u8> = ReplayBuffer::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rb.sample(&mut rng, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "replay capacity must be positive")]
    fn rejects_zero_capacity() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }
}

//! Fully-connected networks with exact reverse-mode gradients.

use edgebol_linalg::stats::normal;
use rand::Rng;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid — used for the DDPG actor output so that actions
    /// land in `[0, 1]^4` (the paper adds "a sigmoid function for the
    /// actor's output", §6.5).
    Sigmoid,
    /// Identity (linear output).
    Identity,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }
}

/// Activations and pre-activations recorded during a training forward pass;
/// consumed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `inputs[l]` is the input fed to layer `l` (so `inputs[0]` is the
    /// network input).
    inputs: Vec<Vec<f64>>,
    /// `zs[l]` is the pre-activation output of layer `l`.
    zs: Vec<Vec<f64>>,
}

/// A multilayer perceptron with a single flat parameter vector.
///
/// Parameters are stored contiguously — layer 0 weights (row-major,
/// `out x in`), layer 0 biases, layer 1 weights, … — so the optimizer
/// ([`crate::Adam`]) can treat the whole network as one array.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths, e.g. `[7, 64, 64, 4]`.
    sizes: Vec<usize>,
    hidden_act: Activation,
    out_act: Activation,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates a network with the given layer sizes, He/Xavier-style
    /// initialization (scaled normal weights, zero biases).
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut params = Vec::new();
        for l in 0..sizes.len() - 1 {
            let fan_in = sizes[l];
            let fan_out = sizes[l + 1];
            // He init for ReLU hidden layers, Xavier otherwise.
            let scale = match hidden_act {
                Activation::Relu => (2.0 / fan_in as f64).sqrt(),
                _ => (1.0 / fan_in as f64).sqrt(),
            };
            for _ in 0..fan_in * fan_out {
                params.push(normal(rng, 0.0, scale));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        Mlp { sizes: sizes.to_vec(), hidden_act, out_act, params }
    }

    /// Number of layers (weight matrices).
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Input dimensionality.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output dimensionality.
    #[inline]
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    /// Total number of parameters.
    #[inline]
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Immutable view of the flat parameter vector.
    #[inline]
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable view of the flat parameter vector (for the optimizer).
    #[inline]
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Offset of layer `l`'s weights within the flat vector.
    fn layer_offset(&self, l: usize) -> usize {
        let mut off = 0;
        for i in 0..l {
            off += self.sizes[i] * self.sizes[i + 1] + self.sizes[i + 1];
        }
        off
    }

    /// Activation used at layer `l`.
    fn act(&self, l: usize) -> Activation {
        if l == self.num_layers() - 1 {
            self.out_act
        } else {
            self.hidden_act
        }
    }

    /// Inference forward pass.
    ///
    /// # Panics
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "forward: input size");
        let mut a = x.to_vec();
        for l in 0..self.num_layers() {
            a = self.layer_forward(l, &a).1;
        }
        a
    }

    /// Forward pass of one layer; returns `(z, activation(z))`.
    fn layer_forward(&self, l: usize, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let fan_in = self.sizes[l];
        let fan_out = self.sizes[l + 1];
        let off = self.layer_offset(l);
        let w = &self.params[off..off + fan_in * fan_out];
        let b = &self.params[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
        let act = self.act(l);
        let mut z = Vec::with_capacity(fan_out);
        for o in 0..fan_out {
            let row = &w[o * fan_in..(o + 1) * fan_in];
            z.push(edgebol_linalg::vecops::dot(row, input) + b[o]);
        }
        let a = z.iter().map(|&v| act.apply(v)).collect();
        (z, a)
    }

    /// Forward pass that records the cache needed by [`Self::backward`].
    pub fn forward_train(&self, x: &[f64]) -> (Vec<f64>, ForwardCache) {
        assert_eq!(x.len(), self.input_dim(), "forward_train: input size");
        let mut inputs = Vec::with_capacity(self.num_layers());
        let mut zs = Vec::with_capacity(self.num_layers());
        let mut a = x.to_vec();
        for l in 0..self.num_layers() {
            inputs.push(a.clone());
            let (z, out) = self.layer_forward(l, &a);
            zs.push(z);
            a = out;
        }
        (a, ForwardCache { inputs, zs })
    }

    /// Reverse-mode pass. `grad_out` is `dL/dy` at the network output.
    ///
    /// Returns `(parameter gradient, input gradient)`; the parameter
    /// gradient is flat and aligned with [`Self::params`], and the input
    /// gradient `dL/dx` is what DDPG's deterministic policy-gradient chain
    /// rule needs.
    ///
    /// # Panics
    /// Panics if `grad_out.len() != self.output_dim()`.
    pub fn backward(&self, cache: &ForwardCache, grad_out: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(grad_out.len(), self.output_dim(), "backward: grad size");
        let mut grads = vec![0.0; self.params.len()];
        let mut delta: Vec<f64> = grad_out.to_vec();
        for l in (0..self.num_layers()).rev() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let off = self.layer_offset(l);
            let act = self.act(l);
            // delta <- dL/dz_l = dL/da_l * act'(z_l)
            for (d, &z) in delta.iter_mut().zip(&cache.zs[l]) {
                *d *= act.derivative(z);
            }
            let input = &cache.inputs[l];
            // Parameter grads.
            for o in 0..fan_out {
                let d = delta[o];
                let wrow = &mut grads[off + o * fan_in..off + (o + 1) * fan_in];
                for (g, &inp) in wrow.iter_mut().zip(input) {
                    *g += d * inp;
                }
                grads[off + fan_in * fan_out + o] += d;
            }
            // Input grad for the next (earlier) layer: W^T delta.
            let w = &self.params[off..off + fan_in * fan_out];
            let mut prev = vec![0.0; fan_in];
            for o in 0..fan_out {
                let d = delta[o];
                let row = &w[o * fan_in..(o + 1) * fan_in];
                for (p, &wv) in prev.iter_mut().zip(row) {
                    *p += d * wv;
                }
            }
            delta = prev;
        }
        let input_grad = delta;
        (grads, input_grad)
    }
}

/// Polyak (soft) target-network update:
/// `target <- tau * source + (1 - tau) * target`.
///
/// # Panics
/// Panics if the two networks have different parameter counts or
/// `tau` is outside `[0, 1]`.
pub fn soft_update(target: &mut Mlp, source: &Mlp, tau: f64) {
    assert!((0.0..=1.0).contains(&tau), "tau must be in [0,1]");
    assert_eq!(target.param_count(), source.param_count(), "network shape mismatch");
    for (t, &s) in target.params_mut().iter_mut().zip(source.params()) {
        *t = tau * s + (1.0 - tau) * *t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn activations_and_derivatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Sigmoid.derivative(0.0) - 0.25).abs() < 1e-12);
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert_eq!(Activation::Identity.derivative(-7.0), 1.0);
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Identity, &mut rng());
        // (3*5 + 5) + (5*2 + 2) = 20 + 12 = 32.
        assert_eq!(net.param_count(), 32);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn forward_train_matches_forward() {
        let net = Mlp::new(&[4, 8, 3], Activation::Tanh, Activation::Sigmoid, &mut rng());
        let x = [0.5, -0.2, 0.9, 0.0];
        let y1 = net.forward(&x);
        let (y2, _) = net.forward_train(&x);
        assert_eq!(y1, y2);
        // Sigmoid output stays in (0, 1).
        assert!(y1.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    /// Central-difference check of both parameter and input gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut net = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Identity, &mut rng());
        let x = [0.3, -0.7, 0.1];
        // Loss: L = sum(y^2) / 2  =>  dL/dy = y.
        let loss = |net: &Mlp, x: &[f64]| -> f64 {
            net.forward(x).iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let (y, cache) = net.forward_train(&x);
        let (grads, input_grad) = net.backward(&cache, &y);

        let eps = 1e-6;
        for pi in (0..net.param_count()).step_by(7) {
            let orig = net.params()[pi];
            net.params_mut()[pi] = orig + eps;
            let lp = loss(&net, &x);
            net.params_mut()[pi] = orig - eps;
            let lm = loss(&net, &x);
            net.params_mut()[pi] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grads[pi]).abs() < 1e-6, "param {pi}: fd {fd} vs analytic {}", grads[pi]);
        }
        for xi in 0..3 {
            let mut xp = x;
            xp[xi] += eps;
            let mut xm = x;
            xm[xi] -= eps;
            let fd = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * eps);
            assert!(
                (fd - input_grad[xi]).abs() < 1e-6,
                "input {xi}: fd {fd} vs analytic {}",
                input_grad[xi]
            );
        }
    }

    #[test]
    fn relu_gradient_matches_finite_differences_off_kink() {
        let mut net = Mlp::new(&[2, 10, 1], Activation::Relu, Activation::Identity, &mut rng());
        let x = [0.42, -0.1337];
        let loss = |net: &Mlp, x: &[f64]| net.forward(x)[0];
        let (_, cache) = net.forward_train(&x);
        let (grads, _) = net.backward(&cache, &[1.0]);
        let eps = 1e-6;
        let mut checked = 0;
        for (pi, &g) in grads.iter().enumerate() {
            let orig = net.params()[pi];
            net.params_mut()[pi] = orig + eps;
            let lp = loss(&net, &x);
            net.params_mut()[pi] = orig - eps;
            let lm = loss(&net, &x);
            net.params_mut()[pi] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            // Skip parameters sitting exactly on a ReLU kink.
            if (fd - g).abs() < 1e-5 {
                checked += 1;
            }
        }
        assert!(checked as f64 >= net.param_count() as f64 * 0.95, "{checked} ok");
    }

    #[test]
    fn soft_update_interpolates() {
        let mut r = rng();
        let a = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Identity, &mut r);
        let mut b = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Identity, &mut r);
        let before = b.params().to_vec();
        soft_update(&mut b, &a, 0.25);
        for ((bv, &av), &old) in b.params().iter().zip(a.params()).zip(&before) {
            assert!((bv - (0.25 * av + 0.75 * old)).abs() < 1e-12);
        }
        // tau = 1 copies exactly.
        soft_update(&mut b, &a, 1.0);
        assert_eq!(b.params(), a.params());
    }

    #[test]
    #[should_panic(expected = "layer sizes must be positive")]
    fn rejects_zero_width_layer() {
        let _ = Mlp::new(&[2, 0, 1], Activation::Relu, Activation::Identity, &mut rng());
    }
}

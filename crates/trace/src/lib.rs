//! Structured event journal for the EdgeBOL control plane.
//!
//! The journal is the *narrative* counterpart to `edgebol-metrics`:
//! metrics answer "how much / how often" with pre-aggregated counters,
//! while the journal answers "what happened, in which order" with a
//! bounded ring of seq-numbered [`Event`]s. It is designed for the
//! orchestrator hot loop:
//!
//! - **Lock-free claim**: a writer claims a slot with one
//!   `fetch_add`; the per-slot mutex is only held while moving the
//!   event body in (and by snapshot readers), never contended across
//!   writers except when the ring wraps onto a slot being read.
//! - **Fixed memory**: capacity is chosen at construction; once the
//!   ring wraps, the oldest events are overwritten. Nothing in the
//!   hot path allocates beyond the event's own field strings.
//! - **Crash flight-recorder**: [`dump_flight_record`] filters the
//!   last K periods of events and writes them as one JSON incident
//!   file, turning a one-line fatal error into a replayable record.
//!
//! Journals are explicit values (typically `Arc<Journal>`): there is
//! no process-global journal, so parallel test runs cannot
//! cross-pollute each other.
//!
//! ```
//! use edgebol_trace::{Journal, Layer};
//!
//! let j = Journal::with_capacity(64);
//! j.record(Layer::Orchestrator, "period_start", Some(0), vec![]);
//! j.record(Layer::Recovery, "backoff", Some(0), vec![("attempt", "1".into())]);
//! let tail = j.tail(10);
//! assert_eq!(tail.len(), 2);
//! assert_eq!(tail[1].kind, "backoff");
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub mod json;

/// Which subsystem emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The period-clocked control loop in `edgebol-core`.
    Orchestrator,
    /// Reconnect supervisor / circuit-breaker transitions.
    Recovery,
    /// Chaos fault injections.
    Chaos,
    /// Transport / reactor lifecycle.
    Transport,
    /// The HTTP ops surface itself.
    Ops,
    /// Bench harness lifecycle (run start/stop, flight dumps).
    Bench,
    /// Multi-slice fleet lifecycle (spawn, warm-start, admission, retire).
    Fleet,
}

impl Layer {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Orchestrator => "orchestrator",
            Layer::Recovery => "recovery",
            Layer::Chaos => "chaos",
            Layer::Transport => "transport",
            Layer::Ops => "ops",
            Layer::Bench => "bench",
            Layer::Fleet => "fleet",
        }
    }
}

/// One journal entry.
///
/// `seq` is globally ordered per journal; `t_ms` is milliseconds since
/// the journal was created (wall-clock free, so two journals never
/// need clock agreement). `period` ties the event to the control-loop
/// period clock when one applies.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Milliseconds since the owning journal was created.
    pub t_ms: u64,
    /// Control-loop period the event belongs to, if any.
    pub period: Option<u64>,
    /// Emitting subsystem.
    pub layer: Layer,
    /// Short static event name, e.g. `"circuit_open"`.
    pub kind: &'static str,
    /// Free-form key/value payload; keys are static, values owned.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// Renders this event as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t_ms\":");
        s.push_str(&self.t_ms.to_string());
        s.push_str(",\"period\":");
        match self.period {
            Some(p) => s.push_str(&p.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"layer\":\"");
        s.push_str(self.layer.as_str());
        s.push_str("\",\"kind\":");
        json::push_escaped(&mut s, self.kind);
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_escaped(&mut s, k);
            s.push(':');
            json::push_escaped(&mut s, v);
        }
        s.push_str("}}");
        s
    }
}

/// Renders a slice of events as a JSON array.
pub fn events_to_json(events: &[Event]) -> String {
    let mut s = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.to_json());
    }
    s.push(']');
    s
}

struct Slot {
    /// `seq + 1` of the completed event stored here; 0 = empty.
    ready: AtomicU64,
    ev: Mutex<Option<Event>>,
}

/// Fixed-capacity, seq-numbered ring buffer of [`Event`]s.
///
/// Writers never block each other on the hot path: claiming a slot is
/// a single `fetch_add`, and the per-slot mutex is only taken by the
/// claiming writer and by snapshot readers. When the ring wraps, the
/// oldest events are overwritten (visible as a gap in `seq`).
pub struct Journal {
    start: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Default ring capacity: enough for several hundred periods of
/// span + recovery + chaos events without exceeding ~1 MiB.
pub const DEFAULT_CAPACITY: usize = 4096;

impl Default for Journal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal with [`DEFAULT_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a journal holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Slot { ready: AtomicU64::new(0), ev: Mutex::new(None) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Journal { start: Instant::now(), head: AtomicU64::new(0), slots }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap so far.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one event and returns its sequence number.
    pub fn record(
        &self,
        layer: Layer,
        kind: &'static str,
        period: Option<u64>,
        fields: Vec<(&'static str, String)>,
    ) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let t_ms = self.start.elapsed().as_millis() as u64;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        {
            let mut guard = slot.ev.lock().unwrap_or_else(|e| e.into_inner());
            *guard = Some(Event { seq, t_ms, period, layer, kind, fields });
        }
        slot.ready.store(seq + 1, Ordering::Release);
        seq
    }

    /// Starts a per-period stage span; see [`StageSpan`].
    pub fn span(&self, period: u64) -> StageSpan<'_> {
        let now = Instant::now();
        StageSpan { journal: self, period, started: now, last: now, stages: Vec::with_capacity(4) }
    }

    /// Copies out every live event, ordered by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            if slot.ready.load(Ordering::Acquire) == 0 {
                continue;
            }
            let guard = slot.ev.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(ev) = guard.as_ref() {
                out.push(ev.clone());
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

/// Monotonic stage timer for one control-loop period.
///
/// The orchestrator walks sense → optimize → deploy → KPI each period;
/// a span records the duration of each stage and emits them as one
/// `period_span` event when finished:
///
/// ```
/// use edgebol_trace::{Journal, Layer};
/// let j = Journal::with_capacity(8);
/// let mut span = j.span(7);
/// // ... sense ...
/// span.stage("sense");
/// // ... optimize ...
/// span.stage("optimize");
/// span.finish();
/// let ev = j.tail(1).pop().unwrap();
/// assert_eq!(ev.kind, "period_span");
/// assert_eq!(ev.period, Some(7));
/// assert_eq!(ev.fields.iter().filter(|(k, _)| *k == "sense").count(), 1);
/// ```
pub struct StageSpan<'a> {
    journal: &'a Journal,
    period: u64,
    started: Instant,
    last: Instant,
    stages: Vec<(&'static str, u64)>,
}

impl StageSpan<'_> {
    /// Closes the current stage under `name`, recording the
    /// microseconds elapsed since the previous stage boundary.
    pub fn stage(&mut self, name: &'static str) {
        let now = Instant::now();
        self.stages.push((name, now.duration_since(self.last).as_micros() as u64));
        self.last = now;
    }

    /// Emits the accumulated stage timings as one `period_span` event.
    pub fn finish(self) {
        let total = self.started.elapsed().as_micros() as u64;
        let mut fields: Vec<(&'static str, String)> = Vec::with_capacity(self.stages.len() + 1);
        fields.push(("total_us", total.to_string()));
        for (name, us) in self.stages {
            fields.push((name, us.to_string()));
        }
        self.journal.record(Layer::Orchestrator, "period_span", Some(self.period), fields);
    }
}

/// Filters the last `keep_periods` periods of `journal` and writes
/// them as one JSON incident file under `dir`.
///
/// The file is named `flight-<reason>-p<last_period>.json` (reason
/// sanitized to `[a-z0-9-]`; `pnone` when no event carried a period)
/// so repeated identical failures overwrite rather than accumulate.
/// Events without a period (e.g. chaos arm/fault records) are kept
/// whenever they are newer than the oldest kept period event.
///
/// Returns the path written. `extra` key/values land under `"meta"`
/// as JSON strings.
pub fn dump_flight_record(
    dir: &Path,
    reason: &str,
    keep_periods: u64,
    journal: &Journal,
    extra: &[(&'static str, String)],
) -> std::io::Result<PathBuf> {
    let events = journal.snapshot();
    let last_period = events.iter().filter_map(|e| e.period).max();
    let kept: Vec<&Event> = match last_period {
        None => events.iter().collect(),
        Some(last) => {
            let cutoff = last.saturating_sub(keep_periods.saturating_sub(1));
            let min_seq = events
                .iter()
                .filter(|e| e.period.is_some_and(|p| p >= cutoff))
                .map(|e| e.seq)
                .min()
                .unwrap_or(0);
            events.iter().filter(|e| e.seq >= min_seq).collect()
        }
    };

    let mut body = String::with_capacity(4096);
    body.push_str("{\"version\":1,\"reason\":");
    json::push_escaped(&mut body, reason);
    body.push_str(",\"last_period\":");
    match last_period {
        Some(p) => body.push_str(&p.to_string()),
        None => body.push_str("null"),
    }
    body.push_str(",\"keep_periods\":");
    body.push_str(&keep_periods.to_string());
    body.push_str(",\"recorded\":");
    body.push_str(&journal.recorded().to_string());
    body.push_str(",\"overwritten\":");
    body.push_str(&journal.overwritten().to_string());
    body.push_str(",\"meta\":{");
    for (i, (k, v)) in extra.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        json::push_escaped(&mut body, k);
        body.push(':');
        json::push_escaped(&mut body, v);
    }
    body.push_str("},\"events\":[");
    for (i, e) in kept.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&e.to_json());
    }
    body.push_str("]}\n");

    std::fs::create_dir_all(dir)?;
    let mut name = String::from("flight-");
    for c in reason.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c.to_ascii_lowercase());
        } else if !name.ends_with('-') {
            name.push('-');
        }
    }
    if !name.ends_with('-') {
        name.push('-');
    }
    match last_period {
        Some(p) => name.push_str(&format!("p{p}")),
        None => name.push_str("pnone"),
    }
    name.push_str(".json");
    let path = dir.join(name);
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(j: &Journal, kind: &'static str, period: u64) -> u64 {
        j.record(Layer::Orchestrator, kind, Some(period), vec![])
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let j = Journal::with_capacity(16);
        for p in 0..10 {
            ev(&j, "tick", p);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.overwritten(), 0);
    }

    #[test]
    fn ring_wrap_keeps_only_the_newest_events() {
        let j = Journal::with_capacity(8);
        for p in 0..20 {
            ev(&j, "tick", p);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.first().unwrap().seq, 12);
        assert_eq!(snap.last().unwrap().seq, 19);
        assert_eq!(j.overwritten(), 12);
    }

    #[test]
    fn tail_returns_newest_first_ordered_oldest_to_newest() {
        let j = Journal::with_capacity(32);
        for p in 0..6 {
            ev(&j, "tick", p);
        }
        let t = j.tail(3);
        assert_eq!(t.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(j.tail(100).len(), 6);
    }

    #[test]
    fn concurrent_writers_never_lose_sequence_density() {
        let j = std::sync::Arc::new(Journal::with_capacity(4096));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        j.record(Layer::Chaos, "fault", None, vec![]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.recorded(), 2000);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 2000);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2000, "duplicate or missing sequence numbers");
    }

    #[test]
    fn event_json_is_valid_and_escapes_hostile_fields() {
        let j = Journal::with_capacity(4);
        j.record(
            Layer::Ops,
            "weird",
            Some(3),
            vec![("msg", "line1\nline2 \"quoted\" back\\slash \u{1}".to_string())],
        );
        let s = events_to_json(&j.snapshot());
        json::validate(&s).expect("events JSON must parse");
        assert!(s.contains("\\n"), "newline must be escaped: {s}");
        assert!(s.contains("\\\""), "quote must be escaped: {s}");
        assert!(s.contains("\\u0001"), "control char must be escaped: {s}");
    }

    #[test]
    fn flight_record_keeps_only_last_k_periods() {
        let dir = std::env::temp_dir().join(format!(
            "edgebol-trace-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let j = Journal::with_capacity(256);
        j.record(Layer::Chaos, "armed", None, vec![]);
        for p in 0..50 {
            ev(&j, "tick", p);
        }
        let path = dump_flight_record(
            &dir,
            "circuit open: E2",
            10,
            &j,
            &[("first_outage_period", "40".to_string())],
        )
        .expect("dump");
        let body = std::fs::read_to_string(&path).expect("read dump");
        json::validate(body.trim_end()).expect("dump must be valid JSON");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flight-circuit-open"));
        assert!(body.contains("\"last_period\":49"), "{body}");
        // Periods 0..39 are older than the keep window.
        assert!(!body.contains("\"period\":39,"), "{body}");
        assert!(body.contains("\"period\":40,"), "{body}");
        assert!(body.contains("\"first_outage_period\":\"40\""), "{body}");
        // The periodless chaos event predates the window and is dropped.
        assert!(!body.contains("\"kind\":\"armed\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_emits_all_stage_fields() {
        let j = Journal::with_capacity(8);
        let mut span = j.span(11);
        span.stage("sense");
        span.stage("optimize");
        span.stage("deploy");
        span.stage("kpi");
        span.finish();
        let ev = j.tail(1).pop().unwrap();
        assert_eq!(ev.kind, "period_span");
        assert_eq!(ev.period, Some(11));
        let keys: Vec<&str> = ev.fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["total_us", "sense", "optimize", "deploy", "kpi"]);
        for (_, v) in &ev.fields {
            v.parse::<u64>().expect("stage timing must be numeric");
        }
    }
}

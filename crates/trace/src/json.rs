//! Minimal hand-rolled JSON helpers: string escaping for the journal
//! renderers and a strict validator used by tests and the ops layer.
//!
//! The workspace deliberately has no `serde_json`; everything that
//! emits JSON builds strings by hand, and this validator is the
//! cross-check that the hand-built output actually parses.

/// Appends `v` to `out` as a quoted JSON string, escaping `\`, `"`
/// and all control characters (`\n`, `\r`, `\t` get short forms, the
/// rest `\u00XX`).
pub fn push_escaped(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience wrapper around [`push_escaped`].
pub fn escape(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    push_escaped(&mut s, v);
    s
}

/// Validates that `s` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and a
/// short message on failure.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at offset {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"', "expected '\"'")?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\n\\u00ff\"",
            "[]",
            "{}",
            "[1, 2, {\"a\": [null, false]}]",
            "  {\"k\" : \"v\"}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1.",
            "1e",
            "nul",
            "\"raw\ncontrol\"",
            "{} extra",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let hostile = "a\"b\\c\nd\re\tf\u{0}g\u{7f}";
        let s = escape(hostile);
        validate(&s).expect("escaped string must validate");
    }
}

//! Property-based tests of the GP layer.

use edgebol_gp::{GaussianProcess, Kernel, KernelKind};
use proptest::prelude::*;

fn kernel_kind() -> impl Strategy<Value = KernelKind> {
    prop_oneof![Just(KernelKind::Matern32), Just(KernelKind::Matern52), Just(KernelKind::Rbf),]
}

proptest! {
    /// Kernels are symmetric, bounded by the signal variance, and maximal
    /// at zero distance.
    #[test]
    fn kernel_axioms(
        kind in kernel_kind(),
        sig in 0.1f64..10.0,
        ls in proptest::collection::vec(0.05f64..3.0, 3),
        a in proptest::collection::vec(-2.0f64..2.0, 3),
        b in proptest::collection::vec(-2.0f64..2.0, 3),
    ) {
        let k = Kernel::new(kind, sig, ls);
        let kab = k.eval(&a, &b);
        prop_assert!((kab - k.eval(&b, &a)).abs() < 1e-12, "symmetry");
        prop_assert!(kab <= sig + 1e-12, "bounded by signal variance");
        prop_assert!(kab >= 0.0, "non-negative for these families");
        prop_assert!((k.eval(&a, &a) - sig).abs() < 1e-12, "maximal at 0");
    }

    /// The posterior mean at an observed point converges to the
    /// observation as noise vanishes; posterior std is bounded by prior.
    #[test]
    fn posterior_sanity(
        kind in kernel_kind(),
        xs in proptest::collection::vec(0.0f64..1.0, 2..10),
        ys in proptest::collection::vec(-5.0f64..5.0, 10),
    ) {
        let mut gp = GaussianProcess::new(Kernel::new(kind, 1.0, vec![0.3]), 1e-6);
        // Enforce a minimum separation of half a length-scale: steep
        // targets across closer designs are numerically near-singular for
        // the RBF kernel (the factorization's rescue jitter then smooths
        // the interpolant), which is a conditioning fact, not a bug this
        // property should fail on.
        let mut seen: Vec<f64> = Vec::new();
        let mut used = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            if seen.iter().any(|&s: &f64| (s - x).abs() < 0.15) {
                continue;
            }
            seen.push(x);
            let y = ys[i % ys.len()];
            gp.observe(&[x], y).unwrap();
            used.push((x, y));
        }
        // Tolerance reflects conditioning: strongly correlated designs
        // (many points within one length-scale) force diagonal jitter
        // during factorization, which smooths the interpolant by a few
        // percent of the target range.
        let range = used.iter().map(|&(_, y): &(f64, f64)| y).fold(0.0f64, |a, y| a.max(y.abs()));
        let tol = 0.05 * (2.0 * range).max(1.0);
        for (x, y) in used {
            let (m, s) = gp.predict(&[x]);
            prop_assert!((m - y).abs() < tol, "mean {m} should track obs {y} at {x}");
            prop_assert!(s <= 1.0 + 1e-9, "posterior std above prior");
        }
    }

    /// Batch prediction equals pointwise prediction.
    #[test]
    fn batch_equals_pointwise(
        xs in proptest::collection::vec(0.0f64..1.0, 1..8),
        q in proptest::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let mut gp = GaussianProcess::new(Kernel::matern32(2.0, vec![0.4]), 1e-3);
        for (i, &x) in xs.iter().enumerate() {
            gp.observe(&[x], (i as f64).sin()).unwrap();
        }
        let (bm, bs) = gp.predict_batch(&q);
        for (j, &x) in q.iter().enumerate() {
            let (m, s) = gp.predict(&[x]);
            prop_assert!((bm[j] - m).abs() < 1e-9);
            prop_assert!((bs[j] - s).abs() < 1e-9);
        }
    }

    /// The sliding window never retains more than its capacity and keeps
    /// the most recent observations.
    #[test]
    fn window_semantics(cap in 1usize..6, n in 1usize..20) {
        let mut gp = GaussianProcess::new(Kernel::rbf(1.0, vec![0.5]), 1e-3)
            .with_max_observations(cap);
        for i in 0..n {
            gp.observe(&[i as f64], i as f64).unwrap();
        }
        prop_assert_eq!(gp.len(), n.min(cap));
        let (_, ys) = gp.data();
        if n >= cap {
            prop_assert_eq!(ys[0], (n - cap) as f64);
        }
    }

    /// More observations never increase the posterior variance at a fixed
    /// query (information monotonicity for exact GPs).
    #[test]
    fn variance_monotone_in_data(
        xs in proptest::collection::vec(0.0f64..1.0, 2..10),
        q in 0.0f64..1.0,
    ) {
        let mut gp = GaussianProcess::new(Kernel::matern52(1.5, vec![0.3]), 1e-4);
        let mut prev = f64::INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            gp.observe(&[x], i as f64 * 0.1).unwrap();
            let (_, s) = gp.predict(&[q]);
            prop_assert!(s <= prev + 1e-9, "std grew from {prev} to {s}");
            prev = s;
        }
    }
}

//! Hyperparameter fitting by log-marginal-likelihood maximization.
//!
//! The paper (§5, "Kernel selection") fits length-scales and noise variance
//! "by maximizing the likelihood estimation over prior data" and freezes
//! them during execution. We do the same: a derivative-free Nelder–Mead
//! search over log-parameters (so positivity is automatic), restarted from
//! several initial simplexes to dodge local optima.

use crate::{GaussianProcess, GpError, Kernel, KernelKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for the Nelder–Mead optimizer.
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Initial simplex edge length (in parameter units).
    pub init_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions { max_evals: 400, f_tol: 1e-7, init_step: 0.5 }
    }
}

/// Minimizes `f` with the Nelder–Mead simplex method starting at `x0`.
///
/// Returns `(x_best, f_best)`. This is a plain, allocation-light
/// implementation of the standard reflect/expand/contract/shrink scheme;
/// it is exposed publicly because the bandit crate reuses it.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert!(n > 0, "nelder_mead requires at least one parameter");
    // Standard coefficients.
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += opts.init_step;
        simplex.push(v);
    }
    let mut fvals: Vec<f64> = simplex.iter().map(|x| f(x)).collect();
    let mut evals = fvals.len();

    while evals < opts.max_evals {
        // Order the simplex by objective value.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| fvals[a].partial_cmp(&fvals[b]).unwrap_or(std::cmp::Ordering::Equal));
        let reorder = |v: &mut Vec<Vec<f64>>, fv: &mut Vec<f64>, idx: &[usize]| {
            *v = idx.iter().map(|&i| v[i].clone()).collect();
            *fv = idx.iter().map(|&i| fv[i]).collect();
        };
        reorder(&mut simplex, &mut fvals, &idx);

        if fvals[n] - fvals[0] < opts.f_tol {
            break;
        }

        // Centroid of all but the worst.
        let mut cen = vec![0.0; n];
        for s in simplex.iter().take(n) {
            for (c, &v) in cen.iter_mut().zip(s) {
                *c += v / n as f64;
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(&av, &bv)| av + t * (bv - av)).collect()
        };

        // Reflection.
        let xr = lerp(&cen, &simplex[n], -alpha);
        let fr = f(&xr);
        evals += 1;
        if fr < fvals[0] {
            // Expansion.
            let xe = lerp(&cen, &simplex[n], -gamma);
            let fe = f(&xe);
            evals += 1;
            if fe < fr {
                simplex[n] = xe;
                fvals[n] = fe;
            } else {
                simplex[n] = xr;
                fvals[n] = fr;
            }
            continue;
        }
        if fr < fvals[n - 1] {
            simplex[n] = xr;
            fvals[n] = fr;
            continue;
        }
        // Contraction.
        let xc = lerp(&cen, &simplex[n], rho);
        let fc = f(&xc);
        evals += 1;
        if fc < fvals[n] {
            simplex[n] = xc;
            fvals[n] = fc;
            continue;
        }
        // Shrink toward the best vertex.
        let best = simplex[0].clone();
        for i in 1..=n {
            simplex[i] = lerp(&best, &simplex[i], sigma);
            fvals[i] = f(&simplex[i]);
            evals += 1;
        }
    }

    let besti = fvals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (simplex[besti].clone(), fvals[besti])
}

/// Configuration of the hyperparameter fit.
#[derive(Debug, Clone)]
pub struct HyperFitConfig {
    /// Kernel family to fit.
    pub kind: KernelKind,
    /// Number of random multistarts (besides the heuristic start).
    pub restarts: usize,
    /// RNG seed for the restarts.
    pub seed: u64,
    /// Per-start Nelder–Mead options.
    pub nm: NelderMeadOptions,
    /// Lower/upper bounds on log10 length-scales.
    pub log_ls_bounds: (f64, f64),
    /// Lower/upper bounds on log10 noise variance.
    pub log_noise_bounds: (f64, f64),
}

impl Default for HyperFitConfig {
    fn default() -> Self {
        HyperFitConfig {
            kind: KernelKind::Matern32,
            restarts: 4,
            seed: 0xEDBE,
            nm: NelderMeadOptions::default(),
            log_ls_bounds: (-2.0, 1.5),
            log_noise_bounds: (-6.0, 0.0),
        }
    }
}

/// Result of [`fit_hyperparams`].
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The fitted kernel (signal variance and per-dimension length-scales).
    pub kernel: Kernel,
    /// The fitted observation-noise variance.
    pub noise_var: f64,
    /// The achieved log marginal likelihood.
    pub log_marginal: f64,
}

/// Fits kernel hyperparameters (ARD length-scales, signal variance, noise
/// variance) to seed data by maximizing the log marginal likelihood.
///
/// * `xs` — flat row-major inputs (`n x dim`),
/// * `ys` — targets of length `n`.
///
/// Internally the parameter vector is
/// `[log10 l_1, .., log10 l_dim, log10 sigma_f^2, log10 zeta^2]`, softly
/// clamped to the configured bounds.
///
/// # Errors
/// Returns [`GpError::Empty`] for empty data and
/// [`GpError::DimensionMismatch`] when `xs.len()` is not `n * dim`.
pub fn fit_hyperparams(
    xs: &[f64],
    ys: &[f64],
    dim: usize,
    cfg: &HyperFitConfig,
) -> Result<FitResult, GpError> {
    if ys.is_empty() {
        return Err(GpError::Empty);
    }
    if xs.len() != ys.len() * dim {
        return Err(GpError::DimensionMismatch {
            expected: ys.len() * dim,
            got: xs.len() / dim.max(1),
        });
    }
    let yvar = edgebol_linalg::vecops::variance(ys).max(1e-8);

    let clampp = |v: f64, (lo, hi): (f64, f64)| v.max(lo).min(hi);
    let objective = |p: &[f64]| -> f64 {
        // Negative LML (we minimize).
        let ls: Vec<f64> =
            p[..dim].iter().map(|&v| 10f64.powf(clampp(v, cfg.log_ls_bounds))).collect();
        let sig = 10f64.powf(clampp(p[dim], (-4.0, 4.0)));
        let noise = 10f64.powf(clampp(p[dim + 1], cfg.log_noise_bounds));
        let kernel = Kernel::new(cfg.kind, sig * yvar, ls);
        let mut gp = GaussianProcess::new(kernel, noise * yvar);
        for (i, &y) in ys.iter().enumerate() {
            if gp.observe(&xs[i * dim..(i + 1) * dim], y).is_err() {
                return f64::INFINITY;
            }
        }
        match gp.log_marginal_likelihood() {
            Ok(l) if l.is_finite() => -l,
            _ => f64::INFINITY,
        }
    };

    // Heuristic start: length-scale ~ 1/4 of the per-dimension input range,
    // unit (relative) signal variance, 1% (relative) noise.
    let n = ys.len();
    let mut start = Vec::with_capacity(dim + 2);
    for k in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let v = xs[i * dim + k];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = (hi - lo).max(1e-3);
        start.push((range / 4.0).log10());
    }
    start.push(0.0); // log10 relative signal variance
    start.push(-2.0); // log10 relative noise variance

    let mut best_p = start.clone();
    let mut best_f = f64::INFINITY;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for restart in 0..=cfg.restarts {
        let x0: Vec<f64> = if restart == 0 {
            start.clone()
        } else {
            let mut v = start.clone();
            for (k, item) in v.iter_mut().enumerate() {
                let jitter: f64 = rng.random_range(-1.0..1.0);
                *item += jitter;
                if k < dim {
                    *item = clampp(*item, cfg.log_ls_bounds);
                }
            }
            v
        };
        let (p, fv) = nelder_mead(&objective, &x0, &cfg.nm);
        if fv < best_f {
            best_f = fv;
            best_p = p;
        }
    }

    let ls: Vec<f64> =
        best_p[..dim].iter().map(|&v| 10f64.powf(clampp(v, cfg.log_ls_bounds))).collect();
    let sig = 10f64.powf(clampp(best_p[dim], (-4.0, 4.0))) * yvar;
    let noise = 10f64.powf(clampp(best_p[dim + 1], cfg.log_noise_bounds)) * yvar;
    Ok(FitResult {
        kernel: Kernel::new(cfg.kind, sig, ls),
        noise_var: noise,
        log_marginal: -best_f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2);
        let (x, fv) = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!(fv < 1e-6, "f = {fv}");
        assert!((x[0] - 3.0).abs() < 1e-3);
        assert!((x[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_rosenbrock_progress() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = NelderMeadOptions { max_evals: 2000, ..Default::default() };
        let (_, fv) = nelder_mead(f, &[-1.2, 1.0], &opts);
        assert!(fv < 1e-2, "rosenbrock residual {fv}");
    }

    #[test]
    fn fit_recovers_sensible_lengthscale() {
        // Data from a function varying on scale ~0.2; the fitted
        // length-scale should be clearly below 10 and above 0.01.
        let n = 30;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 10.0).sin()).collect();
        let cfg = HyperFitConfig { restarts: 2, ..Default::default() };
        let fit = fit_hyperparams(&xs, &ys, 1, &cfg).unwrap();
        let ls = fit.kernel.lengthscales()[0];
        assert!(ls > 0.01 && ls < 3.0, "lengthscale {ls}");
        assert!(fit.noise_var < 0.5, "noise {}", fit.noise_var);
        // The fit must beat an absurd kernel on the same data.
        let mut bad = GaussianProcess::new(Kernel::matern32(1.0, vec![1e-2]), 1e-6);
        for (i, &y) in ys.iter().enumerate() {
            bad.observe(&xs[i..=i], y).unwrap();
        }
        assert!(fit.log_marginal > bad.log_marginal_likelihood().unwrap());
    }

    #[test]
    fn fit_rejects_empty_and_mismatched() {
        let cfg = HyperFitConfig::default();
        assert!(matches!(fit_hyperparams(&[], &[], 1, &cfg), Err(GpError::Empty)));
        assert!(matches!(
            fit_hyperparams(&[1.0, 2.0, 3.0], &[0.0, 0.0], 2, &cfg),
            Err(GpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fitted_gp_predicts_held_out_points() {
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let f = |x: f64| 2.0 * (x * 6.0).cos() + 0.5;
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let cfg = HyperFitConfig { restarts: 2, ..Default::default() };
        let fit = fit_hyperparams(&xs, &ys, 1, &cfg).unwrap();
        let mut gp = GaussianProcess::new(fit.kernel, fit.noise_var);
        for (i, &y) in ys.iter().enumerate() {
            gp.observe(&xs[i..=i], y).unwrap();
        }
        let x_test = 0.512;
        let (m, _) = gp.predict(&[x_test]);
        assert!((m - f(x_test)).abs() < 0.15, "prediction {m} vs {}", f(x_test));
    }
}

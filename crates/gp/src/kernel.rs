//! Stationary anisotropic covariance functions.
//!
//! The paper selects the Matérn kernel "on its anisotropic version" with
//! `nu = 3/2` (eq. (6)), arguing from the measurements of §3 that the target
//! functions are stationary, anisotropic, and at least once differentiable.
//! The per-dimension length-scales implement the scaled distance of eq. (5):
//!
//! `d(z, z') = sqrt( sum_k ((z_k - z'_k) / l_k)^2 )`.

/// Which stationary kernel family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Matérn with `nu = 3/2` — the paper's choice (once differentiable).
    Matern32,
    /// Matérn with `nu = 5/2` (twice differentiable); used in ablations.
    Matern52,
    /// Squared exponential / RBF (infinitely smooth); used in ablations.
    Rbf,
}

/// A stationary anisotropic kernel `k(z, z') = sigma_f^2 * g(d(z, z'))`
/// with per-dimension length-scales (ARD).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    kind: KernelKind,
    /// Signal variance `sigma_f^2` (the prior variance at zero distance).
    signal_var: f64,
    /// Per-dimension length-scales `l_k > 0`.
    lengthscales: Vec<f64>,
}

impl Kernel {
    /// Creates a kernel of the given family.
    ///
    /// # Panics
    /// Panics if `signal_var <= 0`, `lengthscales` is empty, or any
    /// length-scale is not strictly positive and finite.
    pub fn new(kind: KernelKind, signal_var: f64, lengthscales: Vec<f64>) -> Self {
        assert!(signal_var > 0.0 && signal_var.is_finite(), "signal variance must be positive");
        assert!(!lengthscales.is_empty(), "at least one length-scale required");
        assert!(
            lengthscales.iter().all(|l| *l > 0.0 && l.is_finite()),
            "length-scales must be positive and finite"
        );
        Kernel { kind, signal_var, lengthscales }
    }

    /// Matérn-3/2 kernel (the paper's eq. (6)).
    pub fn matern32(signal_var: f64, lengthscales: Vec<f64>) -> Self {
        Self::new(KernelKind::Matern32, signal_var, lengthscales)
    }

    /// Matérn-5/2 kernel.
    pub fn matern52(signal_var: f64, lengthscales: Vec<f64>) -> Self {
        Self::new(KernelKind::Matern52, signal_var, lengthscales)
    }

    /// Squared-exponential kernel.
    pub fn rbf(signal_var: f64, lengthscales: Vec<f64>) -> Self {
        Self::new(KernelKind::Rbf, signal_var, lengthscales)
    }

    /// Isotropic convenience constructor: one shared length-scale across
    /// `dim` dimensions.
    pub fn isotropic(kind: KernelKind, signal_var: f64, lengthscale: f64, dim: usize) -> Self {
        Self::new(kind, signal_var, vec![lengthscale; dim])
    }

    /// Input dimensionality this kernel expects.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Kernel family.
    #[inline]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Signal variance `sigma_f^2`.
    #[inline]
    pub fn signal_var(&self) -> f64 {
        self.signal_var
    }

    /// Per-dimension length-scales.
    #[inline]
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Length-scale–weighted distance between two points (eq. (5)).
    ///
    /// # Panics
    /// Panics (debug) if input dimensions differ from the kernel's.
    #[inline]
    pub fn scaled_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim());
        debug_assert_eq!(b.len(), self.dim());
        let mut acc = 0.0;
        for k in 0..a.len() {
            let d = (a[k] - b[k]) / self.lengthscales[k];
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Evaluates `k(a, b)`.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d = self.scaled_distance(a, b);
        self.signal_var
            * match self.kind {
                KernelKind::Matern32 => {
                    let s = 3f64.sqrt() * d;
                    (1.0 + s) * (-s).exp()
                }
                KernelKind::Matern52 => {
                    let s = 5f64.sqrt() * d;
                    (1.0 + s + s * s / 3.0) * (-s).exp()
                }
                KernelKind::Rbf => (-0.5 * d * d).exp(),
            }
    }

    /// Prior variance at any point: `k(z, z) = sigma_f^2`.
    #[inline]
    pub fn prior_var(&self) -> f64 {
        self.signal_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k32() -> Kernel {
        Kernel::matern32(2.0, vec![1.0, 0.5])
    }

    #[test]
    fn zero_distance_gives_signal_variance() {
        for kind in [KernelKind::Matern32, KernelKind::Matern52, KernelKind::Rbf] {
            let k = Kernel::new(kind, 3.5, vec![1.0, 2.0, 3.0]);
            let z = [0.3, -0.2, 0.9];
            assert!((k.eval(&z, &z) - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        let k = k32();
        let a = [0.1, 0.9];
        let b = [-0.4, 0.2];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn monotone_decay_with_distance() {
        for kind in [KernelKind::Matern32, KernelKind::Matern52, KernelKind::Rbf] {
            let k = Kernel::isotropic(kind, 1.0, 1.0, 1);
            let mut prev = k.eval(&[0.0], &[0.0]);
            for i in 1..50 {
                let v = k.eval(&[0.0], &[i as f64 * 0.1]);
                assert!(v < prev, "{kind:?} not decaying at step {i}");
                assert!(v > 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn anisotropy_weights_dimensions() {
        // Length-scale 0.5 in dim 1 makes moves there "longer".
        let k = k32();
        let base = [0.0, 0.0];
        let move_dim0 = k.eval(&base, &[0.3, 0.0]);
        let move_dim1 = k.eval(&base, &[0.0, 0.3]);
        assert!(move_dim1 < move_dim0, "short length-scale dim must decorrelate faster");
    }

    #[test]
    fn scaled_distance_matches_eq5() {
        let k = Kernel::matern32(1.0, vec![2.0, 0.5]);
        // d = sqrt((1/2)^2 + (1/0.5)^2) = sqrt(0.25 + 4)
        let d = k.scaled_distance(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 4.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matern32_closed_form() {
        // k(d) = (1 + sqrt(3) d) exp(-sqrt(3) d) at d = 1.
        let k = Kernel::matern32(1.0, vec![1.0]);
        let s = 3f64.sqrt();
        let want = (1.0 + s) * (-s).exp();
        assert!((k.eval(&[0.0], &[1.0]) - want).abs() < 1e-12);
    }

    #[test]
    fn smoother_kernels_correlate_more_at_short_range() {
        let d = 0.4;
        let m32 = Kernel::matern32(1.0, vec![1.0]).eval(&[0.0], &[d]);
        let m52 = Kernel::matern52(1.0, vec![1.0]).eval(&[0.0], &[d]);
        let rbf = Kernel::rbf(1.0, vec![1.0]).eval(&[0.0], &[d]);
        assert!(m32 < m52 && m52 < rbf);
    }

    #[test]
    #[should_panic(expected = "length-scales must be positive")]
    fn rejects_nonpositive_lengthscale() {
        let _ = Kernel::matern32(1.0, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "signal variance must be positive")]
    fn rejects_nonpositive_signal_var() {
        let _ = Kernel::matern32(0.0, vec![1.0]);
    }
}

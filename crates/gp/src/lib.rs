//! Gaussian-process regression for EdgeBOL.
//!
//! EdgeBOL (§5 of the paper) models its cost and constraint functions as
//! samples of Gaussian processes over the joint context–control space
//! `Z = C x X`. This crate provides:
//!
//! * **Anisotropic stationary kernels** ([`Kernel`]): Matérn-3/2 (the
//!   paper's choice, eq. (6)), Matérn-5/2 and squared-exponential, all with
//!   per-dimension (ARD) length-scales implementing the scaled distance of
//!   eq. (5).
//! * **Online exact GP regression** ([`GaussianProcess`]): posterior mean
//!   and standard deviation (eqs. (3)–(4)) maintained with an *incremental*
//!   Cholesky factorization — `O(T^2)` per added observation instead of
//!   `O(T^3)` — plus batched prediction over candidate sets and an optional
//!   sliding observation window for very long runs.
//! * **Hyperparameter fitting** ([`fit_hyperparams`]): length-scales,
//!   signal variance and noise variance maximizing the log-marginal
//!   likelihood via multi-start Nelder–Mead, run once on seed data and then
//!   frozen, exactly as the paper prescribes ("during execution, the
//!   hyperparameters shall remain constant").
//!
//! # Example
//!
//! ```
//! use edgebol_gp::{GaussianProcess, Kernel};
//!
//! let kernel = Kernel::matern32(1.0, vec![0.5]);
//! let mut gp = GaussianProcess::new(kernel, 1e-4);
//! for i in 0..10 {
//!     let x = i as f64 / 9.0;
//!     gp.observe(&[x], (2.0 * x).sin()).unwrap();
//! }
//! let (mean, std) = gp.predict(&[0.5]);
//! assert!((mean - 1.0f64.sin()).abs() < 0.1);
//! assert!(std < 0.2);
//! ```

mod gp;
mod hyperopt;
mod kernel;

pub use gp::{EvictStrategy, GaussianProcess, GpSnapshot};
pub use hyperopt::{fit_hyperparams, nelder_mead, FitResult, HyperFitConfig, NelderMeadOptions};
pub use kernel::{Kernel, KernelKind};

/// Errors surfaced by the GP layer.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// An observation's input dimensionality differs from earlier ones.
    DimensionMismatch { expected: usize, got: usize },
    /// The kernel matrix could not be factorized even with jitter.
    Numerical(String),
    /// Operation requires at least one observation.
    Empty,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::DimensionMismatch { expected, got } => {
                write!(f, "input dimension mismatch: expected {expected}, got {got}")
            }
            GpError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            GpError::Empty => write!(f, "operation requires observations"),
        }
    }
}

impl std::error::Error for GpError {}

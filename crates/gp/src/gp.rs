//! Exact GP regression with incremental Cholesky updates.

use crate::{GpError, Kernel};
use edgebol_linalg::{vecops, Cholesky, Mat};

/// How [`GaussianProcess::observe`] makes room when the sliding window is
/// full.
///
/// The default comes from the `EDGEBOL_GP_EVICT` environment knob
/// (`downdate` when unset), read once per GP construction so a process can
/// host GPs with different strategies (the equivalence tests rely on
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictStrategy {
    /// `O(W^2)` delete-row Cholesky downdate ([`Cholesky::delete_row`]).
    /// Falls back to a jittered refactorization if the downdate reports
    /// loss of positive-definiteness (possible only for degenerate or
    /// non-finite factors).
    Downdate,
    /// `O(W^3)` from-scratch refactorization of the shrunken window — the
    /// pre-downdate behaviour, kept as an escape hatch
    /// (`EDGEBOL_GP_EVICT=rebuild`) and as the oracle the equivalence
    /// battery compares the fast path against.
    Rebuild,
}

impl EvictStrategy {
    /// Parses an `EDGEBOL_GP_EVICT` value.
    fn parse(v: &str) -> Result<Self, &'static str> {
        match v {
            "downdate" => Ok(EvictStrategy::Downdate),
            "rebuild" => Ok(EvictStrategy::Rebuild),
            _ => Err("\"downdate\" or \"rebuild\""),
        }
    }

    /// Reads `EDGEBOL_GP_EVICT`: [`EvictStrategy::Downdate`] when unset or
    /// blank.
    ///
    /// # Panics
    /// Panics on a malformed value, following the workspace-wide knob
    /// convention (`invalid EDGEBOL_<NAME> value "...": expected <what>`).
    pub fn from_env() -> Self {
        match std::env::var("EDGEBOL_GP_EVICT") {
            Ok(v) if !v.trim().is_empty() => match Self::parse(v.trim()) {
                Ok(s) => s,
                Err(expected) => {
                    panic!("invalid EDGEBOL_GP_EVICT value {v:?}: expected {expected}")
                }
            },
            _ => EvictStrategy::Downdate,
        }
    }
}

/// Test-only fault injection for the eviction path, pinning the
/// transactional guarantee of [`GaussianProcess::observe`]'s evict step.
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvictFailpoint {
    None,
    /// The downdate reports failure (exercises the refactor fallback).
    DowndateFails,
    /// Every factorization attempt fails (exercises the error path).
    AllFail,
}

/// Online exact Gaussian-process regressor.
///
/// Implements the posterior of eqs. (3)–(4) of the paper:
///
/// * `mu_T(z)  = k_T(z)^T (K_T + zeta^2 I)^{-1} y_T`
/// * `k_T(z,z') = k(z,z') - k_T(z)^T (K_T + zeta^2 I)^{-1} k_T(z')`
///
/// maintained online: each [`observe`](Self::observe) appends one bordered
/// row/column to the Cholesky factor of `K_T + zeta^2 I` in `O(T^2)`.
///
/// Targets are internally centred on their running mean so the zero-mean
/// prior assumption (`mu := 0`, §5) holds regardless of the physical units
/// of the observed KPI (watts, seconds, mAP). The centring offset is folded
/// back into predictions.
///
/// An optional **sliding window** (`max_observations`) bounds the cost of
/// very long runs (e.g., the 3 000-period experiment of Fig. 14): when the
/// window is full the oldest observation is evicted with an `O(W^2)`
/// delete-row Cholesky downdate (see [`EvictStrategy`]), so the at-capacity
/// steady state costs the same order as the bordered append rather than a
/// full `O(W^3)` refactorization every period.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    /// Observation-noise variance `zeta^2`.
    noise_var: f64,
    /// Flattened inputs, `len = n * dim`.
    xs: Vec<f64>,
    /// Raw (uncentred) targets.
    ys: Vec<f64>,
    /// Cholesky factor of `K + zeta^2 I`.
    chol: Cholesky,
    /// Cached `alpha = (K + zeta^2 I)^{-1} (y - mean(y))`; rebuilt lazily.
    alpha: Vec<f64>,
    alpha_dirty: bool,
    /// Cached mean of `ys`.
    y_mean: f64,
    /// Optional sliding-window capacity.
    max_observations: Option<usize>,
    /// How a full window evicts its oldest observation.
    evict: EvictStrategy,
    /// Injected eviction faults (tests only).
    #[cfg(test)]
    evict_failpoint: EvictFailpoint,
}

impl GaussianProcess {
    /// Creates an empty GP with the given kernel and noise variance.
    ///
    /// # Panics
    /// Panics if `noise_var` is not strictly positive and finite.
    pub fn new(kernel: Kernel, noise_var: f64) -> Self {
        assert!(noise_var > 0.0 && noise_var.is_finite(), "noise variance must be positive");
        GaussianProcess {
            kernel,
            noise_var,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: Cholesky::empty(),
            alpha: Vec::new(),
            alpha_dirty: false,
            y_mean: 0.0,
            max_observations: None,
            evict: EvictStrategy::from_env(),
            #[cfg(test)]
            evict_failpoint: EvictFailpoint::None,
        }
    }

    /// Builder-style: bound the number of retained observations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn with_max_observations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        self.max_observations = Some(cap);
        self
    }

    /// Builder-style: override the eviction strategy chosen by
    /// [`EvictStrategy::from_env`] at construction.
    pub fn with_evict_strategy(mut self, strategy: EvictStrategy) -> Self {
        self.evict = strategy;
        self
    }

    /// The eviction strategy in use.
    #[inline]
    pub fn evict_strategy(&self) -> EvictStrategy {
        self.evict
    }

    /// Number of retained observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` when no observation has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The kernel in use.
    #[inline]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation-noise variance `zeta^2`.
    #[inline]
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Input point `i` of the retained window.
    #[inline]
    fn x(&self, i: usize) -> &[f64] {
        let d = self.kernel.dim();
        &self.xs[i * d..(i + 1) * d]
    }

    /// Records one observation `(z, y)` and updates the factorization.
    ///
    /// # Errors
    /// * [`GpError::DimensionMismatch`] when `z.len() != kernel.dim()`.
    /// * [`GpError::Numerical`] if the bordered factor update fails (cannot
    ///   happen for `noise_var > 0` with a valid kernel, but is surfaced
    ///   rather than panicking).
    pub fn observe(&mut self, z: &[f64], y: f64) -> Result<(), GpError> {
        if z.len() != self.kernel.dim() {
            return Err(GpError::DimensionMismatch { expected: self.kernel.dim(), got: z.len() });
        }
        if let Some(cap) = self.max_observations {
            if self.len() == cap {
                self.evict_oldest()?;
            }
        }
        let n = self.len();
        let mut cross = Vec::with_capacity(n);
        for i in 0..n {
            cross.push(self.kernel.eval(self.x(i), z));
        }
        let kappa = self.kernel.prior_var() + self.noise_var;
        self.chol.append(&cross, kappa).map_err(|e| GpError::Numerical(e.to_string()))?;
        self.xs.extend_from_slice(z);
        self.ys.push(y);
        self.alpha_dirty = true;
        Ok(())
    }

    /// Drops the oldest observation, shrinking the factor per the
    /// configured [`EvictStrategy`].
    ///
    /// Transactional: the shrunken factor is computed *before* the window
    /// is mutated, so a numerical failure leaves the model exactly in its
    /// pre-evict state (window, factor, and cached posterior intact).
    fn evict_oldest(&mut self) -> Result<(), GpError> {
        let chol = self.shrunken_factor().map_err(|e| GpError::Numerical(e.to_string()))?;
        self.chol = chol;
        self.xs.drain(..self.kernel.dim());
        self.ys.remove(0);
        self.alpha_dirty = true;
        Ok(())
    }

    /// Computes the factor of the window without its oldest observation.
    fn shrunken_factor(&self) -> edgebol_linalg::Result<Cholesky> {
        #[cfg(test)]
        match self.evict_failpoint {
            EvictFailpoint::AllFail => {
                return Err(edgebol_linalg::LinalgError::NotPositiveDefinite {
                    pivot: 0,
                    jitter: 0.0,
                })
            }
            EvictFailpoint::DowndateFails => return self.refactor_tail(),
            EvictFailpoint::None => {}
        }
        match self.evict {
            EvictStrategy::Downdate => self.chol.delete_row(0).or_else(|_| self.refactor_tail()),
            EvictStrategy::Rebuild => self.refactor_tail(),
        }
    }

    /// From-scratch (jittered) factorization of rows `1..` of the window —
    /// the rebuild strategy, and the downdate's fallback.
    fn refactor_tail(&self) -> edgebol_linalg::Result<Cholesky> {
        let n = self.len() - 1;
        let mut k = Mat::from_fn(n, n, |i, j| self.kernel.eval(self.x(i + 1), self.x(j + 1)));
        k.add_diagonal(self.noise_var);
        Cholesky::factor(&k)
    }

    /// Rebuilds the cached `alpha` vector if observations changed.
    fn refresh_alpha(&mut self) {
        if !self.alpha_dirty {
            return;
        }
        self.y_mean = vecops::mean(&self.ys);
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.y_mean).collect();
        self.alpha = if centred.is_empty() { Vec::new() } else { self.chol.solve(&centred) };
        self.alpha_dirty = false;
    }

    /// Posterior mean and standard deviation at `z` (eqs. (3)–(4)).
    ///
    /// With no observations this returns the prior: mean 0, std
    /// `sqrt(signal_var)`.
    ///
    /// # Panics
    /// Panics if `z.len() != kernel.dim()`.
    pub fn predict(&mut self, z: &[f64]) -> (f64, f64) {
        assert_eq!(z.len(), self.kernel.dim(), "predict: input dimension");
        if self.is_empty() {
            return (0.0, self.kernel.prior_var().sqrt());
        }
        self.refresh_alpha();
        let n = self.len();
        let mut kvec = Vec::with_capacity(n);
        for i in 0..n {
            kvec.push(self.kernel.eval(self.x(i), z));
        }
        let mean = self.y_mean + vecops::dot(&kvec, &self.alpha);
        let v = self.chol.half_solve(&kvec);
        let var = (self.kernel.prior_var() - vecops::dot(&v, &v)).max(0.0);
        (mean, var.sqrt())
    }

    /// Batched posterior over many candidate points.
    ///
    /// `points` is a flat row-major `(m x dim)` slice. Returns `(means,
    /// stds)` of length `m`. This is the hot path of the acquisition step:
    /// the cross-kernel matrix is solved once with a matrix right-hand side
    /// instead of `m` separate triangular solves.
    ///
    /// # Panics
    /// Panics if `points.len()` is not a multiple of `kernel.dim()`.
    pub fn predict_batch(&mut self, points: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let d = self.kernel.dim();
        assert_eq!(points.len() % d, 0, "predict_batch: flat input length");
        let m = points.len() / d;
        if self.is_empty() {
            return (vec![0.0; m], vec![self.kernel.prior_var().sqrt(); m]);
        }
        self.refresh_alpha();
        let n = self.len();
        // Cross kernel matrix K* with shape (n x m).
        let kcross =
            Mat::from_fn(n, m, |i, j| self.kernel.eval(self.x(i), &points[j * d..(j + 1) * d]));
        let mut means = vec![0.0; m];
        for i in 0..n {
            vecops::axpy(self.alpha[i], kcross.row(i), &mut means);
        }
        for mu in &mut means {
            *mu += self.y_mean;
        }
        let v = self.chol.half_solve_mat(&kcross);
        let prior = self.kernel.prior_var();
        let mut stds = vec![0.0; m];
        for i in 0..n {
            let row = v.row(i);
            for (s, &vij) in stds.iter_mut().zip(row) {
                *s += vij * vij;
            }
        }
        for s in &mut stds {
            *s = (prior - *s).max(0.0).sqrt();
        }
        (means, stds)
    }

    /// Draws one sample of the posterior *marginals* at the given points:
    /// `f_j ~ N(mu(z_j), sigma^2(z_j))` independently per point.
    ///
    /// This is the cheap variant of posterior sampling used by
    /// Thompson-sampling acquisitions over large candidate sets, where the
    /// full joint draw (an `m x m` Cholesky) would dominate the period
    /// budget. Ignoring cross-candidate correlations makes the draw
    /// *more* explorative, which is benign for an acquisition rule.
    pub fn sample_marginals<R: rand::Rng + ?Sized>(
        &mut self,
        points: &[f64],
        rng: &mut R,
    ) -> Vec<f64> {
        let (means, stds) = self.predict_batch(points);
        means
            .into_iter()
            .zip(stds)
            .map(|(m, s)| m + s * edgebol_linalg::stats::normal01(rng))
            .collect()
    }

    /// Log marginal likelihood of the retained data under the current
    /// hyperparameters:
    /// `log p(y|Z) = -1/2 y^T alpha - 1/2 log det(K + zeta^2 I) - n/2 log(2 pi)`.
    ///
    /// # Errors
    /// Returns [`GpError::Empty`] with no observations.
    pub fn log_marginal_likelihood(&mut self) -> Result<f64, GpError> {
        if self.is_empty() {
            return Err(GpError::Empty);
        }
        self.refresh_alpha();
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.y_mean).collect();
        let fit = -0.5 * vecops::dot(&centred, &self.alpha);
        let complexity = -0.5 * self.chol.log_det();
        let norm = -0.5 * self.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(fit + complexity + norm)
    }

    /// The raw retained observations `(inputs, targets)`; inputs flat
    /// row-major. Mainly for hyperparameter refitting and tests.
    pub fn data(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Exports the retained posterior observations as a portable
    /// [`GpSnapshot`] — the transfer format of the fleet layer's
    /// warm-start: a freshly spawned learner absorbs a neighbour's
    /// snapshot instead of exploring from the prior.
    ///
    /// ```
    /// use edgebol_gp::{GaussianProcess, Kernel};
    ///
    /// let mut donor = GaussianProcess::new(Kernel::matern32(1.0, vec![0.4]), 1e-4);
    /// for i in 0..8 {
    ///     let x = i as f64 / 7.0;
    ///     donor.observe(&[x], (3.0 * x).cos()).unwrap();
    /// }
    /// let snap = donor.snapshot();
    /// assert_eq!(snap.len(), 8);
    ///
    /// let mut fresh = GaussianProcess::new(Kernel::matern32(1.0, vec![0.4]), 1e-4);
    /// fresh.absorb(&snap).unwrap();
    /// let (m_d, _) = donor.predict(&[0.5]);
    /// let (m_f, _) = fresh.predict(&[0.5]);
    /// assert!((m_d - m_f).abs() < 1e-12);
    /// ```
    pub fn snapshot(&self) -> GpSnapshot {
        GpSnapshot { dim: self.kernel.dim(), xs: self.xs.clone(), ys: self.ys.clone() }
    }

    /// Replays every observation of `snap` into this GP (oldest first,
    /// honouring the sliding window), returning how many were absorbed.
    ///
    /// # Errors
    /// [`GpError::DimensionMismatch`] when the snapshot's input dimension
    /// differs from the kernel's; observations absorbed before the error
    /// are kept (each replayed point is an ordinary [`Self::observe`]).
    pub fn absorb(&mut self, snap: &GpSnapshot) -> Result<usize, GpError> {
        if snap.dim != self.kernel.dim() {
            return Err(GpError::DimensionMismatch { expected: self.kernel.dim(), got: snap.dim });
        }
        for (z, y) in snap.iter() {
            self.observe(z, y)?;
        }
        Ok(snap.len())
    }
}

/// A portable export of a GP's retained observations — what
/// [`GaussianProcess::snapshot`] produces and
/// [`GaussianProcess::absorb`] replays. The snapshot carries raw data,
/// not the factorization: absorbing rebuilds the posterior under the
/// *receiver's* kernel and noise, so a transfer between GPs with
/// different hyperparameters is well defined (the receiving model simply
/// conditions on the donor's evidence).
#[derive(Debug, Clone, PartialEq)]
pub struct GpSnapshot {
    /// Input dimensionality of every point.
    dim: usize,
    /// Flattened inputs, `len = n * dim`, oldest observation first.
    xs: Vec<f64>,
    /// Targets, `len = n`, oldest observation first.
    ys: Vec<f64>,
}

impl GpSnapshot {
    /// Builds a snapshot from raw parts (`xs` flat row-major).
    ///
    /// # Panics
    /// Panics if `dim == 0` or the lengths are inconsistent.
    pub fn from_parts(dim: usize, xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert!(dim > 0, "snapshot dimension must be positive");
        assert_eq!(xs.len(), ys.len() * dim, "snapshot shape: xs must be ys.len() * dim");
        GpSnapshot { dim, xs, ys }
    }

    /// Number of observations in the snapshot.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` when the snapshot holds no observations.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterates the observations as `(input, target)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.ys.iter().enumerate().map(|(i, &y)| (&self.xs[i * self.dim..(i + 1) * self.dim], y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;

    fn toy_gp() -> GaussianProcess {
        GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-6)
    }

    #[test]
    fn prior_prediction_when_empty() {
        let mut gp = GaussianProcess::new(Kernel::rbf(4.0, vec![1.0]), 1e-4);
        let (m, s) = gp.predict(&[0.0]);
        assert_eq!(m, 0.0);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_noise_free_data() {
        let mut gp = toy_gp();
        let f = |x: f64| (3.0 * x).cos();
        for i in 0..15 {
            let x = i as f64 / 14.0;
            gp.observe(&[x], f(x)).unwrap();
        }
        for i in 0..15 {
            let x = i as f64 / 14.0;
            let (m, s) = gp.predict(&[x]);
            assert!((m - f(x)).abs() < 1e-3, "mean off at {x}: {m}");
            assert!(s < 0.02, "std too large at observed point: {s}");
        }
        // In-between points are close too (function is smooth).
        let (m, _) = gp.predict(&[0.5 + 1.0 / 28.0]);
        assert!((m - f(0.5 + 1.0 / 28.0)).abs() < 0.05);
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let mut gp = toy_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        let (_, s_near) = gp.predict(&[0.05]);
        let (_, s_far) = gp.predict(&[2.0]);
        assert!(s_far > s_near);
        assert!(s_far <= 1.0 + 1e-9, "posterior std cannot exceed prior");
    }

    #[test]
    fn rejects_wrong_dimension() {
        let mut gp = toy_gp();
        assert!(matches!(
            gp.observe(&[1.0, 2.0], 0.0),
            Err(GpError::DimensionMismatch { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn batch_matches_single_predictions() {
        let mut gp = GaussianProcess::new(Kernel::matern52(2.0, vec![0.4, 0.7]), 1e-3);
        let pts = [[0.1, 0.2], [0.5, 0.9], [0.8, 0.1], [0.3, 0.4]];
        for (i, p) in pts.iter().enumerate() {
            gp.observe(p, i as f64 * 0.5 - 1.0).unwrap();
        }
        let q: Vec<f64> =
            (0..20).flat_map(|i| vec![i as f64 * 0.05, 1.0 - i as f64 * 0.05]).collect();
        let (bm, bs) = gp.predict_batch(&q);
        for j in 0..20 {
            let (m, s) = gp.predict(&q[j * 2..j * 2 + 2]);
            assert!((bm[j] - m).abs() < 1e-10, "mean mismatch at {j}");
            assert!((bs[j] - s).abs() < 1e-10, "std mismatch at {j}");
        }
    }

    #[test]
    fn mean_offset_handles_uncentred_targets() {
        // Targets near 150 (like server power in watts) must not break the
        // zero-mean prior assumption.
        let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-4);
        for i in 0..10 {
            let x = i as f64 / 9.0;
            gp.observe(&[x], 150.0 + x).unwrap();
        }
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 150.5).abs() < 0.1, "{m}");
        // Far away, prediction decays to the data mean — not to zero.
        let (m_far, _) = gp.predict(&[100.0]);
        assert!((m_far - 150.5).abs() < 1.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut gp = toy_gp().with_max_observations(5);
        for i in 0..12 {
            gp.observe(&[i as f64], i as f64).unwrap();
        }
        assert_eq!(gp.len(), 5);
        let (xs, ys) = gp.data();
        assert_eq!(ys, &[7.0, 8.0, 9.0, 10.0, 11.0]);
        assert_eq!(xs[0], 7.0);
        // Predictions still sane at a retained point.
        let (m, _) = gp.predict(&[9.0]);
        assert!((m - 9.0).abs() < 1e-2);
    }

    #[test]
    fn noisy_observations_are_smoothed() {
        let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![0.5]), 0.25);
        // Two conflicting observations at the same point average out.
        gp.observe(&[0.5], 1.0).unwrap();
        gp.observe(&[0.5], -1.0).unwrap();
        let (m, s) = gp.predict(&[0.5]);
        assert!(m.abs() < 1e-9, "posterior mean should be the average: {m}");
        assert!(s > 0.1, "noise must keep residual uncertainty");
    }

    #[test]
    fn lml_prefers_correct_lengthscale() {
        // Data from a slowly varying function: a too-short length-scale
        // should yield lower marginal likelihood than a well-matched one.
        let f = |x: f64| x; // linear, very smooth
        let build = |ls: f64| {
            let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![ls]), 1e-4);
            for i in 0..12 {
                let x = i as f64 / 11.0;
                gp.observe(&[x], f(x)).unwrap();
            }
            gp
        };
        let lml_good = build(1.0).log_marginal_likelihood().unwrap();
        let lml_bad = build(0.01).log_marginal_likelihood().unwrap();
        assert!(lml_good > lml_bad, "good {lml_good} vs bad {lml_bad}");
    }

    #[test]
    fn lml_requires_data() {
        let mut gp = toy_gp();
        assert!(matches!(gp.log_marginal_likelihood(), Err(GpError::Empty)));
    }

    #[test]
    fn sample_marginals_statistics_match_posterior() {
        use rand::SeedableRng;
        let mut gp = toy_gp();
        gp.observe(&[0.2], 1.0).unwrap();
        gp.observe(&[0.8], -1.0).unwrap();
        let q = [0.5];
        let (m, s) = gp.predict(&q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..5000).map(|_| gp.sample_marginals(&q, &mut rng)[0]).collect();
        let mean = edgebol_linalg::vecops::mean(&draws);
        let std = edgebol_linalg::vecops::variance(&draws).sqrt();
        assert!((mean - m).abs() < 0.05, "sample mean {mean} vs {m}");
        assert!((std - s).abs() < 0.05, "sample std {std} vs {s}");
    }

    #[test]
    fn incremental_equals_batch_posterior() {
        // Posterior from incremental appends must match a from-scratch GP
        // given identical data (validates the bordered Cholesky path).
        let mut inc = GaussianProcess::new(Kernel::new(KernelKind::Rbf, 1.5, vec![0.4, 0.6]), 1e-3);
        let data: Vec<([f64; 2], f64)> = (0..20)
            .map(|i| {
                let x = [i as f64 * 0.05, (i as f64 * 0.07).fract()];
                (x, (x[0] * 4.0).sin() + x[1])
            })
            .collect();
        for (x, y) in &data {
            inc.observe(x, *y).unwrap();
        }
        // From-scratch: reuse evict path by forcing a rebuild via window.
        let mut scratch =
            GaussianProcess::new(Kernel::new(KernelKind::Rbf, 1.5, vec![0.4, 0.6]), 1e-3)
                .with_max_observations(20)
                .with_evict_strategy(EvictStrategy::Rebuild);
        // Observe one dummy first so the window eviction rebuilds the factor.
        scratch.observe(&[9.9, 9.9], 0.0).unwrap();
        for (x, y) in &data {
            scratch.observe(x, *y).unwrap();
        }
        let q = [0.33, 0.77];
        let (mi, si) = inc.predict(&q);
        let (ms, ss) = scratch.predict(&q);
        assert!((mi - ms).abs() < 1e-6, "{mi} vs {ms}");
        assert!((si - ss).abs() < 1e-6, "{si} vs {ss}");
    }

    #[test]
    fn evict_strategy_parse_and_default() {
        assert_eq!(EvictStrategy::parse("downdate"), Ok(EvictStrategy::Downdate));
        assert_eq!(EvictStrategy::parse("rebuild"), Ok(EvictStrategy::Rebuild));
        assert!(EvictStrategy::parse("fast").is_err());
        assert!(EvictStrategy::parse("").is_err());
        // Knob unset in the test environment: construction defaults to the
        // downdate fast path.
        if std::env::var("EDGEBOL_GP_EVICT").is_err() {
            assert_eq!(toy_gp().evict_strategy(), EvictStrategy::Downdate);
        }
    }

    /// The downdate and rebuild strategies must agree on the posterior
    /// through many eviction cycles — the unit-level core of the
    /// workspace-level equivalence battery.
    #[test]
    fn downdate_and_rebuild_windows_agree() {
        let build = |s: EvictStrategy| {
            GaussianProcess::new(Kernel::matern52(1.3, vec![0.4]), 1e-4)
                .with_max_observations(8)
                .with_evict_strategy(s)
        };
        let mut fast = build(EvictStrategy::Downdate);
        let mut oracle = build(EvictStrategy::Rebuild);
        for i in 0..40 {
            let x = (i as f64 * 0.37).fract();
            let y = (x * 5.0).sin() + 0.1 * (i as f64 * 0.11).cos();
            fast.observe(&[x], y).unwrap();
            oracle.observe(&[x], y).unwrap();
        }
        assert_eq!(fast.len(), 8);
        for j in 0..25 {
            let q = [j as f64 / 24.0];
            let (mf, sf) = fast.predict(&q);
            let (mo, so) = oracle.predict(&q);
            assert!((mf - mo).abs() < 1e-9, "mean drift at {q:?}: {mf} vs {mo}");
            assert!((sf - so).abs() < 1e-9, "std drift at {q:?}: {sf} vs {so}");
        }
    }

    /// A failed eviction must leave the model in its pre-evict state: the
    /// window, factor, and predictions are untouched, and the GP recovers
    /// as soon as the fault clears.
    #[test]
    fn evict_failure_preserves_state() {
        let mut gp = toy_gp().with_max_observations(5);
        for i in 0..5 {
            gp.observe(&[i as f64 * 0.2], i as f64).unwrap();
        }
        let (xs_before, ys_before) = {
            let (xs, ys) = gp.data();
            (xs.to_vec(), ys.to_vec())
        };
        let pred_before = gp.predict(&[0.5]);
        gp.evict_failpoint = EvictFailpoint::AllFail;
        assert!(matches!(gp.observe(&[1.5], 9.0), Err(GpError::Numerical(_))));
        let (xs, ys) = gp.data();
        assert_eq!(xs, &xs_before[..], "inputs must be untouched after a failed evict");
        assert_eq!(ys, &ys_before[..], "targets must be untouched after a failed evict");
        assert_eq!(gp.predict(&[0.5]), pred_before, "posterior must be untouched");
        // Fault cleared: the same observation now succeeds and slides the window.
        gp.evict_failpoint = EvictFailpoint::None;
        gp.observe(&[1.5], 9.0).unwrap();
        let (_, ys) = gp.data();
        assert_eq!(ys, &[1.0, 2.0, 3.0, 4.0, 9.0]);
    }

    #[test]
    fn snapshot_absorb_reproduces_the_posterior() {
        let mut donor = toy_gp();
        for i in 0..10 {
            let x = i as f64 / 9.0;
            donor.observe(&[x], (4.0 * x).sin()).unwrap();
        }
        let snap = donor.snapshot();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.dim(), 1);
        let mut fresh = toy_gp();
        assert_eq!(fresh.absorb(&snap).unwrap(), 10);
        for j in 0..7 {
            let q = [j as f64 / 6.0];
            let (md, sd) = donor.predict(&q);
            let (mf, sf) = fresh.predict(&q);
            assert!((md - mf).abs() < 1e-12, "mean at {q:?}");
            assert!((sd - sf).abs() < 1e-12, "std at {q:?}");
        }
    }

    #[test]
    fn absorb_respects_the_sliding_window() {
        let mut donor = toy_gp();
        for i in 0..9 {
            donor.observe(&[i as f64], i as f64).unwrap();
        }
        let mut small = toy_gp().with_max_observations(4);
        small.absorb(&donor.snapshot()).unwrap();
        assert_eq!(small.len(), 4);
        let (_, ys) = small.data();
        assert_eq!(ys, &[5.0, 6.0, 7.0, 8.0], "the newest donor points survive");
    }

    #[test]
    fn absorb_rejects_dimension_mismatch() {
        let snap = GpSnapshot::from_parts(2, vec![0.0, 0.0], vec![1.0]);
        let mut gp = toy_gp();
        assert!(matches!(
            gp.absorb(&snap),
            Err(GpError::DimensionMismatch { expected: 1, got: 2 })
        ));
        assert!(gp.is_empty(), "nothing absorbed on a shape mismatch");
    }

    #[test]
    #[should_panic(expected = "snapshot shape")]
    fn snapshot_from_parts_checks_shape() {
        let _ = GpSnapshot::from_parts(2, vec![0.0; 3], vec![1.0]);
    }

    /// When the downdate reports failure the refactor fallback must keep
    /// the posterior consistent with an oracle that always rebuilds.
    #[test]
    fn downdate_failure_falls_back_to_refactor() {
        let mut gp = toy_gp().with_max_observations(6);
        let mut oracle =
            toy_gp().with_max_observations(6).with_evict_strategy(EvictStrategy::Rebuild);
        gp.evict_failpoint = EvictFailpoint::DowndateFails;
        for i in 0..20 {
            let x = (i as f64 * 0.29).fract();
            gp.observe(&[x], x * x).unwrap();
            oracle.observe(&[x], x * x).unwrap();
        }
        let (m, s) = gp.predict(&[0.4]);
        let (mo, so) = oracle.predict(&[0.4]);
        assert!((m - mo).abs() < 1e-12);
        assert!((s - so).abs() < 1e-12);
    }
}

//! Exact GP regression with incremental Cholesky updates.

use crate::{GpError, Kernel};
use edgebol_linalg::{vecops, Cholesky, Mat};

/// Online exact Gaussian-process regressor.
///
/// Implements the posterior of eqs. (3)–(4) of the paper:
///
/// * `mu_T(z)  = k_T(z)^T (K_T + zeta^2 I)^{-1} y_T`
/// * `k_T(z,z') = k(z,z') - k_T(z)^T (K_T + zeta^2 I)^{-1} k_T(z')`
///
/// maintained online: each [`observe`](Self::observe) appends one bordered
/// row/column to the Cholesky factor of `K_T + zeta^2 I` in `O(T^2)`.
///
/// Targets are internally centred on their running mean so the zero-mean
/// prior assumption (`mu := 0`, §5) holds regardless of the physical units
/// of the observed KPI (watts, seconds, mAP). The centring offset is folded
/// back into predictions.
///
/// An optional **sliding window** (`max_observations`) bounds the cost of
/// very long runs (e.g., the 3 000-period experiment of Fig. 14): when the
/// window is full the oldest observation is dropped and the factor rebuilt,
/// an `O(W^3)` operation on a bounded `W` which in practice is cheaper than
/// letting `T` grow unboundedly.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    /// Observation-noise variance `zeta^2`.
    noise_var: f64,
    /// Flattened inputs, `len = n * dim`.
    xs: Vec<f64>,
    /// Raw (uncentred) targets.
    ys: Vec<f64>,
    /// Cholesky factor of `K + zeta^2 I`.
    chol: Cholesky,
    /// Cached `alpha = (K + zeta^2 I)^{-1} (y - mean(y))`; rebuilt lazily.
    alpha: Vec<f64>,
    alpha_dirty: bool,
    /// Cached mean of `ys`.
    y_mean: f64,
    /// Optional sliding-window capacity.
    max_observations: Option<usize>,
}

impl GaussianProcess {
    /// Creates an empty GP with the given kernel and noise variance.
    ///
    /// # Panics
    /// Panics if `noise_var` is not strictly positive and finite.
    pub fn new(kernel: Kernel, noise_var: f64) -> Self {
        assert!(noise_var > 0.0 && noise_var.is_finite(), "noise variance must be positive");
        GaussianProcess {
            kernel,
            noise_var,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: Cholesky::empty(),
            alpha: Vec::new(),
            alpha_dirty: false,
            y_mean: 0.0,
            max_observations: None,
        }
    }

    /// Builder-style: bound the number of retained observations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn with_max_observations(mut self, cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        self.max_observations = Some(cap);
        self
    }

    /// Number of retained observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` when no observation has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The kernel in use.
    #[inline]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation-noise variance `zeta^2`.
    #[inline]
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Input point `i` of the retained window.
    #[inline]
    fn x(&self, i: usize) -> &[f64] {
        let d = self.kernel.dim();
        &self.xs[i * d..(i + 1) * d]
    }

    /// Records one observation `(z, y)` and updates the factorization.
    ///
    /// # Errors
    /// * [`GpError::DimensionMismatch`] when `z.len() != kernel.dim()`.
    /// * [`GpError::Numerical`] if the bordered factor update fails (cannot
    ///   happen for `noise_var > 0` with a valid kernel, but is surfaced
    ///   rather than panicking).
    pub fn observe(&mut self, z: &[f64], y: f64) -> Result<(), GpError> {
        if z.len() != self.kernel.dim() {
            return Err(GpError::DimensionMismatch { expected: self.kernel.dim(), got: z.len() });
        }
        if let Some(cap) = self.max_observations {
            if self.len() == cap {
                self.evict_oldest()?;
            }
        }
        let n = self.len();
        let mut cross = Vec::with_capacity(n);
        for i in 0..n {
            cross.push(self.kernel.eval(self.x(i), z));
        }
        let kappa = self.kernel.prior_var() + self.noise_var;
        self.chol.append(&cross, kappa).map_err(|e| GpError::Numerical(e.to_string()))?;
        self.xs.extend_from_slice(z);
        self.ys.push(y);
        self.alpha_dirty = true;
        Ok(())
    }

    /// Drops the oldest observation and refactorizes.
    fn evict_oldest(&mut self) -> Result<(), GpError> {
        let d = self.kernel.dim();
        self.xs.drain(..d);
        self.ys.remove(0);
        let n = self.len();
        let mut k = Mat::from_fn(n, n, |i, j| self.kernel.eval(self.x(i), self.x(j)));
        k.add_diagonal(self.noise_var);
        self.chol = Cholesky::factor(&k).map_err(|e| GpError::Numerical(e.to_string()))?;
        self.alpha_dirty = true;
        Ok(())
    }

    /// Rebuilds the cached `alpha` vector if observations changed.
    fn refresh_alpha(&mut self) {
        if !self.alpha_dirty {
            return;
        }
        self.y_mean = vecops::mean(&self.ys);
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.y_mean).collect();
        self.alpha = if centred.is_empty() { Vec::new() } else { self.chol.solve(&centred) };
        self.alpha_dirty = false;
    }

    /// Posterior mean and standard deviation at `z` (eqs. (3)–(4)).
    ///
    /// With no observations this returns the prior: mean 0, std
    /// `sqrt(signal_var)`.
    ///
    /// # Panics
    /// Panics if `z.len() != kernel.dim()`.
    pub fn predict(&mut self, z: &[f64]) -> (f64, f64) {
        assert_eq!(z.len(), self.kernel.dim(), "predict: input dimension");
        if self.is_empty() {
            return (0.0, self.kernel.prior_var().sqrt());
        }
        self.refresh_alpha();
        let n = self.len();
        let mut kvec = Vec::with_capacity(n);
        for i in 0..n {
            kvec.push(self.kernel.eval(self.x(i), z));
        }
        let mean = self.y_mean + vecops::dot(&kvec, &self.alpha);
        let v = self.chol.half_solve(&kvec);
        let var = (self.kernel.prior_var() - vecops::dot(&v, &v)).max(0.0);
        (mean, var.sqrt())
    }

    /// Batched posterior over many candidate points.
    ///
    /// `points` is a flat row-major `(m x dim)` slice. Returns `(means,
    /// stds)` of length `m`. This is the hot path of the acquisition step:
    /// the cross-kernel matrix is solved once with a matrix right-hand side
    /// instead of `m` separate triangular solves.
    ///
    /// # Panics
    /// Panics if `points.len()` is not a multiple of `kernel.dim()`.
    pub fn predict_batch(&mut self, points: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let d = self.kernel.dim();
        assert_eq!(points.len() % d, 0, "predict_batch: flat input length");
        let m = points.len() / d;
        if self.is_empty() {
            return (vec![0.0; m], vec![self.kernel.prior_var().sqrt(); m]);
        }
        self.refresh_alpha();
        let n = self.len();
        // Cross kernel matrix K* with shape (n x m).
        let kcross =
            Mat::from_fn(n, m, |i, j| self.kernel.eval(self.x(i), &points[j * d..(j + 1) * d]));
        let mut means = vec![0.0; m];
        for i in 0..n {
            vecops::axpy(self.alpha[i], kcross.row(i), &mut means);
        }
        for mu in &mut means {
            *mu += self.y_mean;
        }
        let v = self.chol.half_solve_mat(&kcross);
        let prior = self.kernel.prior_var();
        let mut stds = vec![0.0; m];
        for i in 0..n {
            let row = v.row(i);
            for (s, &vij) in stds.iter_mut().zip(row) {
                *s += vij * vij;
            }
        }
        for s in &mut stds {
            *s = (prior - *s).max(0.0).sqrt();
        }
        (means, stds)
    }

    /// Draws one sample of the posterior *marginals* at the given points:
    /// `f_j ~ N(mu(z_j), sigma^2(z_j))` independently per point.
    ///
    /// This is the cheap variant of posterior sampling used by
    /// Thompson-sampling acquisitions over large candidate sets, where the
    /// full joint draw (an `m x m` Cholesky) would dominate the period
    /// budget. Ignoring cross-candidate correlations makes the draw
    /// *more* explorative, which is benign for an acquisition rule.
    pub fn sample_marginals<R: rand::Rng + ?Sized>(
        &mut self,
        points: &[f64],
        rng: &mut R,
    ) -> Vec<f64> {
        let (means, stds) = self.predict_batch(points);
        means
            .into_iter()
            .zip(stds)
            .map(|(m, s)| m + s * edgebol_linalg::stats::normal01(rng))
            .collect()
    }

    /// Log marginal likelihood of the retained data under the current
    /// hyperparameters:
    /// `log p(y|Z) = -1/2 y^T alpha - 1/2 log det(K + zeta^2 I) - n/2 log(2 pi)`.
    ///
    /// # Errors
    /// Returns [`GpError::Empty`] with no observations.
    pub fn log_marginal_likelihood(&mut self) -> Result<f64, GpError> {
        if self.is_empty() {
            return Err(GpError::Empty);
        }
        self.refresh_alpha();
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.y_mean).collect();
        let fit = -0.5 * vecops::dot(&centred, &self.alpha);
        let complexity = -0.5 * self.chol.log_det();
        let norm = -0.5 * self.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(fit + complexity + norm)
    }

    /// The raw retained observations `(inputs, targets)`; inputs flat
    /// row-major. Mainly for hyperparameter refitting and tests.
    pub fn data(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;

    fn toy_gp() -> GaussianProcess {
        GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-6)
    }

    #[test]
    fn prior_prediction_when_empty() {
        let mut gp = GaussianProcess::new(Kernel::rbf(4.0, vec![1.0]), 1e-4);
        let (m, s) = gp.predict(&[0.0]);
        assert_eq!(m, 0.0);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_noise_free_data() {
        let mut gp = toy_gp();
        let f = |x: f64| (3.0 * x).cos();
        for i in 0..15 {
            let x = i as f64 / 14.0;
            gp.observe(&[x], f(x)).unwrap();
        }
        for i in 0..15 {
            let x = i as f64 / 14.0;
            let (m, s) = gp.predict(&[x]);
            assert!((m - f(x)).abs() < 1e-3, "mean off at {x}: {m}");
            assert!(s < 0.02, "std too large at observed point: {s}");
        }
        // In-between points are close too (function is smooth).
        let (m, _) = gp.predict(&[0.5 + 1.0 / 28.0]);
        assert!((m - f(0.5 + 1.0 / 28.0)).abs() < 0.05);
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let mut gp = toy_gp();
        gp.observe(&[0.0], 1.0).unwrap();
        let (_, s_near) = gp.predict(&[0.05]);
        let (_, s_far) = gp.predict(&[2.0]);
        assert!(s_far > s_near);
        assert!(s_far <= 1.0 + 1e-9, "posterior std cannot exceed prior");
    }

    #[test]
    fn rejects_wrong_dimension() {
        let mut gp = toy_gp();
        assert!(matches!(
            gp.observe(&[1.0, 2.0], 0.0),
            Err(GpError::DimensionMismatch { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn batch_matches_single_predictions() {
        let mut gp = GaussianProcess::new(Kernel::matern52(2.0, vec![0.4, 0.7]), 1e-3);
        let pts = [[0.1, 0.2], [0.5, 0.9], [0.8, 0.1], [0.3, 0.4]];
        for (i, p) in pts.iter().enumerate() {
            gp.observe(p, i as f64 * 0.5 - 1.0).unwrap();
        }
        let q: Vec<f64> =
            (0..20).flat_map(|i| vec![i as f64 * 0.05, 1.0 - i as f64 * 0.05]).collect();
        let (bm, bs) = gp.predict_batch(&q);
        for j in 0..20 {
            let (m, s) = gp.predict(&q[j * 2..j * 2 + 2]);
            assert!((bm[j] - m).abs() < 1e-10, "mean mismatch at {j}");
            assert!((bs[j] - s).abs() < 1e-10, "std mismatch at {j}");
        }
    }

    #[test]
    fn mean_offset_handles_uncentred_targets() {
        // Targets near 150 (like server power in watts) must not break the
        // zero-mean prior assumption.
        let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![0.3]), 1e-4);
        for i in 0..10 {
            let x = i as f64 / 9.0;
            gp.observe(&[x], 150.0 + x).unwrap();
        }
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 150.5).abs() < 0.1, "{m}");
        // Far away, prediction decays to the data mean — not to zero.
        let (m_far, _) = gp.predict(&[100.0]);
        assert!((m_far - 150.5).abs() < 1.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut gp = toy_gp().with_max_observations(5);
        for i in 0..12 {
            gp.observe(&[i as f64], i as f64).unwrap();
        }
        assert_eq!(gp.len(), 5);
        let (xs, ys) = gp.data();
        assert_eq!(ys, &[7.0, 8.0, 9.0, 10.0, 11.0]);
        assert_eq!(xs[0], 7.0);
        // Predictions still sane at a retained point.
        let (m, _) = gp.predict(&[9.0]);
        assert!((m - 9.0).abs() < 1e-2);
    }

    #[test]
    fn noisy_observations_are_smoothed() {
        let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![0.5]), 0.25);
        // Two conflicting observations at the same point average out.
        gp.observe(&[0.5], 1.0).unwrap();
        gp.observe(&[0.5], -1.0).unwrap();
        let (m, s) = gp.predict(&[0.5]);
        assert!(m.abs() < 1e-9, "posterior mean should be the average: {m}");
        assert!(s > 0.1, "noise must keep residual uncertainty");
    }

    #[test]
    fn lml_prefers_correct_lengthscale() {
        // Data from a slowly varying function: a too-short length-scale
        // should yield lower marginal likelihood than a well-matched one.
        let f = |x: f64| x; // linear, very smooth
        let build = |ls: f64| {
            let mut gp = GaussianProcess::new(Kernel::matern32(1.0, vec![ls]), 1e-4);
            for i in 0..12 {
                let x = i as f64 / 11.0;
                gp.observe(&[x], f(x)).unwrap();
            }
            gp
        };
        let lml_good = build(1.0).log_marginal_likelihood().unwrap();
        let lml_bad = build(0.01).log_marginal_likelihood().unwrap();
        assert!(lml_good > lml_bad, "good {lml_good} vs bad {lml_bad}");
    }

    #[test]
    fn lml_requires_data() {
        let mut gp = toy_gp();
        assert!(matches!(gp.log_marginal_likelihood(), Err(GpError::Empty)));
    }

    #[test]
    fn sample_marginals_statistics_match_posterior() {
        use rand::SeedableRng;
        let mut gp = toy_gp();
        gp.observe(&[0.2], 1.0).unwrap();
        gp.observe(&[0.8], -1.0).unwrap();
        let q = [0.5];
        let (m, s) = gp.predict(&q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..5000).map(|_| gp.sample_marginals(&q, &mut rng)[0]).collect();
        let mean = edgebol_linalg::vecops::mean(&draws);
        let std = edgebol_linalg::vecops::variance(&draws).sqrt();
        assert!((mean - m).abs() < 0.05, "sample mean {mean} vs {m}");
        assert!((std - s).abs() < 0.05, "sample std {std} vs {s}");
    }

    #[test]
    fn incremental_equals_batch_posterior() {
        // Posterior from incremental appends must match a from-scratch GP
        // given identical data (validates the bordered Cholesky path).
        let mut inc = GaussianProcess::new(Kernel::new(KernelKind::Rbf, 1.5, vec![0.4, 0.6]), 1e-3);
        let data: Vec<([f64; 2], f64)> = (0..20)
            .map(|i| {
                let x = [i as f64 * 0.05, (i as f64 * 0.07).fract()];
                (x, (x[0] * 4.0).sin() + x[1])
            })
            .collect();
        for (x, y) in &data {
            inc.observe(x, *y).unwrap();
        }
        // From-scratch: reuse evict path by forcing a rebuild via window.
        let mut scratch =
            GaussianProcess::new(Kernel::new(KernelKind::Rbf, 1.5, vec![0.4, 0.6]), 1e-3)
                .with_max_observations(20);
        // Observe one dummy first so the window eviction rebuilds the factor.
        scratch.observe(&[9.9, 9.9], 0.0).unwrap();
        for (x, y) in &data {
            scratch.observe(x, *y).unwrap();
        }
        let q = [0.33, 0.77];
        let (mi, si) = inc.predict(&q);
        let (ms, ss) = scratch.predict(&q);
        assert!((mi - ms).abs() < 1e-6, "{mi} vs {ms}");
        assert!((si - ss).abs() < 1e-6, "{si} vs {ss}");
    }
}

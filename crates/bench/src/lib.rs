//! Shared harness for the figure regenerators and Criterion benches.
//!
//! Every evaluation figure of the paper has a regeneration binary in
//! `src/bin/` (see DESIGN.md §4 for the index). Each binary sweeps the
//! same workloads/parameters as the paper, prints the series as an
//! aligned table, and writes a CSV under `results/` so the numbers can be
//! compared against the paper (EXPERIMENTS.md records that comparison).

pub mod env;
pub mod sweep;

use edgebol_core::agent::Agent;
use edgebol_core::orchestrator::{Orchestrator, OrchestratorError};
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_metrics::Registry;
use edgebol_oran::{ChaosConfig, HealthHandle, OpsServer, OpsState, RecoveryPolicy, TransportKind};
use edgebol_testbed::Environment;
use edgebol_trace::{Journal, Layer};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// What the `EDGEBOL_METRICS` knob asked for — see [`metrics_mode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsMode {
    /// Metrics disabled (the default): the shared registry is a no-op.
    Off,
    /// Record, and print the end-of-run summary table to **stderr**
    /// (stdout and the CSV artifacts stay byte-identical to an
    /// uninstrumented run).
    Summary,
    /// [`MetricsMode::Summary`], plus write `metrics.prom` /
    /// `metrics.json` / `metrics.csv` into the given directory.
    Dump(PathBuf),
}

/// The observability mode requested via the `EDGEBOL_METRICS`
/// environment variable: empty/`off`/`0` → [`MetricsMode::Off`],
/// `summary`/`on`/`1` → [`MetricsMode::Summary`], `dump=<dir>` →
/// [`MetricsMode::Dump`]. Parsing lives in [`env::metrics_mode`]; this
/// memoizes the verdict per process.
///
/// # Panics
/// Panics (once) on a malformed value — a misspelled knob must not
/// silently run unobserved, mirroring [`chaos_from_env`].
pub fn metrics_mode() -> &'static MetricsMode {
    static MODE: OnceLock<MetricsMode> = OnceLock::new();
    MODE.get_or_init(env::metrics_mode)
}

/// The process-wide metrics registry every harness run records into —
/// enabled iff [`metrics_mode`] is not [`MetricsMode::Off`] **or** the
/// ops surface is up ([`env::ops_addr`] set): a live `/metrics`
/// endpoint scraping a disabled registry would always read empty. The
/// figure binaries pass it to the orchestrator (so core/oran metrics
/// land here too) and render it via [`metrics_report`] before exiting.
pub fn metrics() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| match metrics_mode() {
        MetricsMode::Off if env::ops_addr().is_none() => Registry::disabled(),
        _ => Registry::new(),
    })
}

/// Renders the end-of-run metrics according to [`metrics_mode`]: nothing
/// when off; the summary table to stderr for `summary`; the table plus
/// `metrics.prom`/`metrics.json`/`metrics.csv` files for `dump=<dir>`.
/// Every figure binary calls this as its last statement.
pub fn metrics_report() {
    let mode = metrics_mode();
    if *mode == MetricsMode::Off {
        return;
    }
    let snap = metrics().snapshot();
    eprint!("{}", snap.render_table("edgebol metrics"));
    if let MetricsMode::Dump(dir) = mode {
        let write_all = || -> std::io::Result<()> {
            fs::create_dir_all(dir)?;
            fs::write(dir.join("metrics.prom"), snap.render_prometheus())?;
            fs::write(dir.join("metrics.json"), snap.to_json())?;
            fs::write(dir.join("metrics.csv"), snap.to_csv())?;
            Ok(())
        };
        match write_all() {
            Ok(()) => eprintln!("[edgebol-bench] metrics dumped to {}", dir.display()),
            Err(e) => eprintln!("[edgebol-bench] metrics dump failed: {e}"),
        }
    }
}

/// The fault schedule requested via the `EDGEBOL_CHAOS` environment
/// variable, if any — every figure regenerator routes its orchestrator
/// runs through [`try_run_once`]/[`try_run_reps`], so setting the knob
/// re-runs any figure under deterministic control-plane faults (see
/// [`ChaosConfig::from_spec`] for the `key=value,...` format, e.g.
/// `EDGEBOL_CHAOS="seed=7,rate=0.05,delay=0.02"`).
///
/// # Panics
/// Panics (once, with the parse message) when the spec is malformed —
/// a misspelled chaos knob must not silently run fault-free.
pub fn chaos_from_env() -> Option<&'static ChaosConfig> {
    static CONFIG: OnceLock<Option<ChaosConfig>> = OnceLock::new();
    CONFIG
        .get_or_init(|| {
            let cfg = env::chaos()?;
            eprintln!(
                "[edgebol-bench] chaos enabled: {}",
                std::env::var("EDGEBOL_CHAOS").unwrap_or_default()
            );
            Some(cfg)
        })
        .as_ref()
}

/// The reconnect-supervisor policy requested via the `EDGEBOL_FALLBACK`
/// environment variable: empty or `sticky` → the default policy (local
/// autonomy survives an exhausted retry budget, with half-open probes),
/// `off` → [`edgebol_oran::FallbackMode::Off`] (an exhausted budget surfaces
/// [`OrchestratorError::CircuitOpen`] and the run fails fast). Every
/// harness run routes through this, so any figure can be re-run under
/// either survival contract.
///
/// # Panics
/// Panics (once) on a malformed value — a misspelled knob must not
/// silently change the survival contract, mirroring [`chaos_from_env`].
pub fn recovery_from_env() -> &'static RecoveryPolicy {
    static POLICY: OnceLock<RecoveryPolicy> = OnceLock::new();
    POLICY.get_or_init(|| {
        let mode = env::fallback();
        if mode == edgebol_oran::FallbackMode::Off {
            eprintln!("[edgebol-bench] fallback disabled: an open circuit aborts the run");
        }
        RecoveryPolicy::default().with_fallback(mode)
    })
}

/// The transport requested via the `EDGEBOL_TRANSPORT` environment
/// variable: empty or `poll` → the in-process poll transport, `reactor`
/// → reactor-managed framed TCP over loopback. The orchestrator itself
/// honors the knob (its constructors resolve
/// [`TransportKind::from_env`]); this helper exists so the harness can
/// *report* the mode once per process, the way [`chaos_from_env`]
/// reports an armed fault schedule — a comparison run whose transport
/// differs silently would be a footgun.
///
/// # Panics
/// Panics (once) on a malformed value, mirroring the other knobs.
pub fn transport_from_env() -> TransportKind {
    static KIND: OnceLock<TransportKind> = OnceLock::new();
    *KIND.get_or_init(|| {
        let kind = TransportKind::from_env();
        if kind == TransportKind::Reactor {
            eprintln!("[edgebol-bench] transport: reactor (nonblocking framed TCP over loopback)");
        }
        kind
    })
}

/// The process-wide event journal: every orchestrator run the harness
/// starts records its period spans, recovery transitions and chaos
/// faults here (when [`journal_wanted`] — someone must be able to read
/// it), the ops surface serves its tail at `/trace`, and the crash
/// flight-recorder dumps it on a fatal error. The journal never writes
/// to stdout, so fixed-seed stdout/CSV artifacts stay byte-identical
/// with or without it.
pub fn journal() -> &'static Arc<Journal> {
    static J: OnceLock<Arc<Journal>> = OnceLock::new();
    J.get_or_init(|| Arc::new(Journal::new()))
}

/// Whether harness runs should carry the journal: only when a reader
/// exists — the ops surface (`EDGEBOL_OPS`) or the flight recorder
/// (`EDGEBOL_FLIGHT_DIR`). Unobserved journaling is pure overhead.
pub fn journal_wanted() -> bool {
    ops_server().is_some() || env::flight_dir().is_some()
}

/// The health handle `/healthz` reads; [`try_run_once_with_chaos`]
/// refreshes it from the orchestrator's circuit state after every
/// period, so an operator sees 503 while the circuit is latched open.
fn ops_health() -> &'static HealthHandle {
    static H: OnceLock<HealthHandle> = OnceLock::new();
    H.get_or_init(HealthHandle::new)
}

/// The HTTP ops surface, started once per process when `EDGEBOL_OPS`
/// is set: `GET /metrics` (Prometheus exposition of [`metrics`]),
/// `/healthz` (circuit state), `/vars` (JSON snapshot) and `/trace`
/// (recent [`journal`] events). The bound address is reported on
/// stderr (stdout stays clean), which is how CI finds an OS-assigned
/// port when the knob says `127.0.0.1:0`.
///
/// # Panics
/// When the requested address cannot be bound — an operator who asked
/// for an ops surface must not silently run without one.
pub fn ops_server() -> Option<&'static OpsServer> {
    static S: OnceLock<Option<OpsServer>> = OnceLock::new();
    S.get_or_init(|| {
        let addr = env::ops_addr()?;
        let state = OpsState::new(metrics().clone())
            .with_journal(journal().clone())
            .with_health(ops_health().clone());
        let server = OpsServer::spawn(&addr.to_string(), state)
            .unwrap_or_else(|e| panic!("EDGEBOL_OPS={addr}: bind failed: {e}"));
        eprintln!("[edgebol-bench] ops surface listening on http://{}", server.local_addr());
        Some(server)
    })
    .as_ref()
}

/// How many trailing periods of journal events a flight record keeps.
/// Public so other layers (the fleet driver's early-retire path) dump
/// records with the same retention as the single-run harness.
pub const FLIGHT_KEEP_PERIODS: u64 = 16;

/// The standard flight-record meta rows for an orchestrator that died
/// with `e`: error, stage, transport, circuit and outage accounting.
/// Shared by `dump_flight_on_error` below and the fleet layer's
/// early-retire path, so every incident file has the same shape no
/// matter which driver wrote it.
pub fn flight_meta(orch: &Orchestrator, e: &OrchestratorError) -> Vec<(&'static str, String)> {
    let mut meta = vec![
        ("error", e.to_string()),
        ("stage", e.stage().to_string()),
        ("transport", format!("{:?}", orch.transport())),
        ("circuit", format!("{:?}", orch.circuit_state())),
        ("local_autonomy_periods", orch.local_autonomy_periods().to_string()),
        ("degraded_events", orch.degraded_events().to_string()),
    ];
    if let Some(p) = orch.first_outage_period() {
        meta.push(("first_outage_period", p.to_string()));
    }
    meta
}

/// Dumps the crash flight record for a run that died with `e`, when
/// `EDGEBOL_FLIGHT_DIR` is set: the last [`FLIGHT_KEEP_PERIODS`]
/// periods of journal events plus outage accounting, as one JSON
/// incident file. Reported on stderr either way.
fn dump_flight_on_error(orch: &Orchestrator, e: &OrchestratorError) {
    let Some(dir) = env::flight_dir() else { return };
    journal().record(
        Layer::Bench,
        "run_failed",
        orch.first_outage_period().map(|p| p as u64),
        vec![("error", e.to_string())],
    );
    let meta = flight_meta(orch, e);
    match edgebol_trace::dump_flight_record(&dir, e.stage(), FLIGHT_KEEP_PERIODS, journal(), &meta)
    {
        Ok(path) => eprintln!("[edgebol-bench] flight record written to {}", path.display()),
        Err(io) => eprintln!("[edgebol-bench] flight record failed: {io}"),
    }
}

/// A printable/serializable results table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV into `results/<name>.csv` (relative to the
    /// workspace root when invoked via cargo, the cwd otherwise).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(&path, s)?;
        Ok(path)
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench -> ../../results
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Formats a float with three significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Number of worker threads for [`parallel_map`]: the `EDGEBOL_THREADS`
/// environment variable when set, otherwise
/// [`std::thread::available_parallelism`].
///
/// # Panics
/// On a malformed `EDGEBOL_THREADS` value ([`env::threads`]).
pub fn worker_threads() -> usize {
    env::threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `job(0..n)` on a scoped thread pool and returns the results in
/// index order.
///
/// Work is handed out through an atomic counter, so threads stay busy
/// even when per-index runtimes differ; results are reassembled by index,
/// so the output is **deterministic and identical to the sequential
/// order** regardless of thread count or scheduling. A panicking job
/// propagates its panic to the caller (after the scope joins the other
/// workers).
pub fn parallel_map<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_threads(worker_threads(), n, job)
}

/// Queue-depth bucket bounds: the harness fans out 8–100 repetitions,
/// so powers of two up to 128 resolve the whole drain curve.
const QUEUE_DEPTH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Per-repetition wall-time bucket bounds (seconds): a reduced-size CI
/// repetition takes ~0.1–3 s, a full figure repetition up to ~60 s.
const REP_WALL_BOUNDS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0];

/// [`parallel_map`] with an explicit thread count (tests that compare
/// thread counts use this to avoid racing on `EDGEBOL_THREADS`).
///
/// When metrics are enabled (see [`metrics`]) the runner records
/// `edgebol_bench_worker_threads`, the work-queue depth observed at each
/// grab (`edgebol_bench_queue_depth` — remaining items including the one
/// taken, a deterministic multiset for a given `n` regardless of thread
/// count), per-job wall time (`edgebol_bench_rep_wall_seconds`) and the
/// fraction of thread-seconds spent inside jobs
/// (`edgebol_bench_runner_utilization`).
pub fn parallel_map_threads<T, F>(threads: usize, n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let reg = metrics();
    reg.describe("edgebol_bench_queue_depth", "Repetitions still queued when a worker grabs one");
    reg.describe("edgebol_bench_rep_wall_seconds", "Wall-clock seconds per repetition");
    reg.describe("edgebol_bench_worker_threads", "Worker threads in the parallel runner");
    reg.describe(
        "edgebol_bench_runner_utilization",
        "Busy-time fraction of the parallel runner (1.0 = no idle workers)",
    );
    let depth_h = reg.histogram("edgebol_bench_queue_depth", QUEUE_DEPTH_BOUNDS);
    let wall_h = reg.histogram("edgebol_bench_rep_wall_seconds", REP_WALL_BOUNDS);
    let threads = threads.max(1).min(n);
    reg.gauge("edgebol_bench_worker_threads").set(threads as f64);
    let total = reg.stopwatch();
    // One timed execution of `job(i)`, with the queue depth at grab time.
    let timed = |i: usize, busy: &mut f64| -> T {
        depth_h.observe((n - i) as f64);
        let sw = reg.stopwatch();
        let out = job(i);
        if let Some(s) = sw.elapsed_seconds() {
            wall_h.observe(s);
            *busy += s;
        }
        out
    };
    let (out, busy_total) = if threads <= 1 {
        let mut busy = 0.0;
        let out: Vec<T> = (0..n).map(|i| timed(i, &mut busy)).collect();
        (out, busy)
    } else {
        let next = AtomicUsize::new(0);
        let timed = &timed;
        let next = &next;
        let mut tagged: Vec<(usize, T)> = Vec::new();
        let mut busy_total = 0.0;
        let per_thread: Vec<(Vec<(usize, T)>, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let mut busy = 0.0;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, timed(i, &mut busy)));
                        }
                        (local, busy)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        for (local, busy) in per_thread {
            tagged.extend(local);
            busy_total += busy;
        }
        tagged.sort_by_key(|(i, _)| *i);
        (tagged.into_iter().map(|(_, t)| t).collect(), busy_total)
    };
    if let Some(wall) = total.elapsed_seconds() {
        if wall > 0.0 {
            reg.gauge("edgebol_bench_runner_utilization")
                .set((busy_total / (threads as f64 * wall)).min(1.0));
        }
    }
    out
}

/// Runs one agent/environment pair for `periods` periods, surfacing
/// control-plane failures instead of panicking.
pub fn try_run_once(
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    periods: usize,
    record_safe_set: bool,
    schedule: Vec<(usize, f64, f64)>,
) -> Result<Trace, OrchestratorError> {
    let chaos = chaos_from_env().cloned().unwrap_or_else(ChaosConfig::disabled);
    try_run_once_with_chaos(env, agent, spec, periods, record_safe_set, schedule, chaos)
}

/// [`try_run_once`] under an explicit fault schedule (the env-knob path
/// and the chaos test suite both land here).
///
/// This is also the observability hub every figure binary inherits:
/// the `EDGEBOL_OPS` server is started (once per process) before the
/// run, the shared [`journal`] is attached when anyone can read it,
/// `/healthz` is refreshed from the circuit state after every period,
/// and a run that dies with an [`OrchestratorError`] leaves a flight
/// record under `EDGEBOL_FLIGHT_DIR`.
///
/// # Errors
/// The first unrecoverable [`OrchestratorError`] (e.g. a scheduled link
/// cut); recoverable faults are absorbed by degraded mode.
pub fn try_run_once_with_chaos(
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    periods: usize,
    record_safe_set: bool,
    schedule: Vec<(usize, f64, f64)>,
    chaos: ChaosConfig,
) -> Result<Trace, OrchestratorError> {
    // Resolve (and report, once) the transport before construction: the
    // orchestrator reads the same knob internally.
    let _ = transport_from_env();
    let ops_up = ops_server().is_some();
    let mut orch = Orchestrator::new_instrumented(env, agent, spec, chaos, metrics().clone())?
        .with_constraint_schedule(schedule)
        .with_recovery(*recovery_from_env());
    if journal_wanted() {
        orch = orch.with_journal(journal().clone());
    }
    orch.record_safe_set = record_safe_set;
    let mut trace = Trace::default();
    for _ in 0..periods {
        match orch.try_step() {
            Ok(r) => trace.records.push(r),
            Err(e) => {
                if ops_up {
                    ops_health().set(orch.circuit_state());
                }
                dump_flight_on_error(&orch, &e);
                return Err(e);
            }
        }
        if ops_up {
            ops_health().set(orch.circuit_state());
        }
    }
    let ledger = orch.fault_ledger();
    if !ledger.is_empty() {
        eprintln!(
            "[edgebol-bench] chaos summary: {} faults injected, {} degrading, {} degraded events",
            ledger.len(),
            ledger.degrading_count(),
            orch.degraded_events()
        );
    }
    if orch.local_autonomy_periods() > 0 {
        eprintln!(
            "[edgebol-bench] recovery summary: {} local-autonomy periods, \
             {} resyncs ok, {} failed, final circuit {:?}",
            orch.local_autonomy_periods(),
            orch.reconnects_ok(),
            orch.reconnects_failed(),
            orch.circuit_state()
        );
    }
    Ok(trace)
}

/// Runs one agent/environment pair for `periods` periods.
///
/// # Panics
/// Panics if the orchestrator's control plane fails — impossible for the
/// in-process transport the orchestrator builds; use [`try_run_once`]
/// when the failure should be handled.
pub fn run_once(
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    periods: usize,
    record_safe_set: bool,
    schedule: Vec<(usize, f64, f64)>,
) -> Trace {
    try_run_once(env, agent, spec, periods, record_safe_set, schedule)
        .expect("in-process control plane")
}

/// Runs `reps` independent repetitions **in parallel** (seed = rep
/// index), collecting per-seed results instead of aborting on the first
/// failure.
///
/// Each repetition builds its environment and agent through the factories
/// inside its worker thread, so repetitions share nothing; the output is
/// seed-ordered and bit-identical to a sequential run (set
/// `EDGEBOL_THREADS=1` to force one).
pub fn try_run_reps(
    reps: usize,
    periods: usize,
    spec: ProblemSpec,
    env_factory: impl Fn(u64) -> Box<dyn Environment> + Sync,
    agent_factory: impl Fn(u64) -> Box<dyn Agent> + Sync,
) -> Vec<Result<Trace, OrchestratorError>> {
    parallel_map(reps, |rep| {
        let seed = rep as u64;
        // Under the EDGEBOL_CHAOS knob every repetition gets its own
        // deterministic fault stream, derived from the spec seed and the
        // repetition seed — reruns stay bit-identical.
        let chaos = match chaos_from_env() {
            Some(cfg) => cfg.reseeded(seed),
            None => ChaosConfig::disabled(),
        };
        try_run_once_with_chaos(
            env_factory(seed),
            agent_factory(seed),
            spec,
            periods,
            false,
            Vec::new(),
            chaos,
        )
    })
}

/// Runs `reps` independent repetitions via the factories, returning all
/// traces (the paper plots medians and 10/90 percentile bands over 10
/// repetitions). Repetitions run in parallel — see [`try_run_reps`].
///
/// # Panics
/// Panics if any repetition's control plane fails (impossible for the
/// in-process transport); the panic message names the seed.
pub fn run_reps(
    reps: usize,
    periods: usize,
    spec: ProblemSpec,
    env_factory: impl Fn(u64) -> Box<dyn Environment> + Sync,
    agent_factory: impl Fn(u64) -> Box<dyn Agent> + Sync,
) -> Vec<Trace> {
    try_run_reps(reps, periods, spec, env_factory, agent_factory)
        .into_iter()
        .enumerate()
        .map(|(seed, r)| match r {
            Ok(t) => t,
            Err(e) => panic!("repetition with seed {seed} failed: {e}"),
        })
        .collect()
}

/// Median of a slice (convenience re-export).
pub fn median(xs: &[f64]) -> f64 {
    edgebol_linalg::stats::percentile(xs, 0.5)
}

/// Percentile helper re-export.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    edgebol_linalg::stats::percentile(xs, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_arity() {
        let mut t = Table::new("Fig. X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("2.5"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        // Uneven per-index work so threads finish out of order; the
        // output must still be index-ordered.
        let out = parallel_map(97, |i| {
            let mut acc = i as u64;
            for _ in 0..(97 - i) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 97);
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}

//! Shared harness for the figure regenerators and Criterion benches.
//!
//! Every evaluation figure of the paper has a regeneration binary in
//! `src/bin/` (see DESIGN.md §4 for the index). Each binary sweeps the
//! same workloads/parameters as the paper, prints the series as an
//! aligned table, and writes a CSV under `results/` so the numbers can be
//! compared against the paper (EXPERIMENTS.md records that comparison).

pub mod sweep;

use edgebol_core::agent::Agent;
use edgebol_core::orchestrator::Orchestrator;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_testbed::Environment;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A printable/serializable results table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV into `results/<name>.csv` (relative to the
    /// workspace root when invoked via cargo, the cwd otherwise).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(&path, s)?;
        Ok(path)
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench -> ../../results
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => PathBuf::from(m).join("../../results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Formats a float with three significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Runs one agent/environment pair for `periods` periods.
pub fn run_once(
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    periods: usize,
    record_safe_set: bool,
    schedule: Vec<(usize, f64, f64)>,
) -> Trace {
    let mut orch =
        Orchestrator::new(env, agent, spec).with_constraint_schedule(schedule);
    orch.record_safe_set = record_safe_set;
    orch.run(periods)
}

/// Runs `reps` independent repetitions via the factories, returning all
/// traces (the paper plots medians and 10/90 percentile bands over 10
/// repetitions).
pub fn run_reps(
    reps: usize,
    periods: usize,
    spec: ProblemSpec,
    mut env_factory: impl FnMut(u64) -> Box<dyn Environment>,
    mut agent_factory: impl FnMut(u64) -> Box<dyn Agent>,
) -> Vec<Trace> {
    (0..reps as u64)
        .map(|seed| {
            run_once(env_factory(seed), agent_factory(seed), spec, periods, false, Vec::new())
        })
        .collect()
}

/// Median of a slice (convenience re-export).
pub fn median(xs: &[f64]) -> f64 {
    edgebol_linalg::stats::percentile(xs, 0.5)
}

/// Percentile helper re-export.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    edgebol_linalg::stats::percentile(xs, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_arity() {
        let mut t = Table::new("Fig. X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("2.5"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}

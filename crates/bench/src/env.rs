//! Typed access to every `EDGEBOL_*` environment knob.
//!
//! All knob parsing lives here so every binary fails the same way on a
//! malformed value: `invalid EDGEBOL_<NAME> value "<v>": expected
//! <what>`. A misspelled knob must never silently run with the default
//! — a comparison run whose chaos schedule, transport or thread count
//! differs silently is a footgun, so every accessor panics on garbage.
//!
//! Each knob has a pure `parse_*` function (unit-testable without
//! touching the process environment) and a thin accessor that reads the
//! variable and panics with the uniform message. Process-wide caching
//! and once-per-process reporting stay in the crate root
//! ([`crate::metrics_mode`], [`crate::chaos_from_env`], ...), which
//! delegate here.
//!
//! The knob map (see README "Environment knobs" for semantics):
//!
//! | variable              | accessor        | values                         |
//! |-----------------------|-----------------|--------------------------------|
//! | `EDGEBOL_THREADS`     | [`threads`]     | positive integer               |
//! | `EDGEBOL_METRICS`     | [`metrics_mode`]| `off`/`summary`/`dump=<dir>`   |
//! | `EDGEBOL_CHAOS`       | [`chaos`]       | `key=value,...` fault spec     |
//! | `EDGEBOL_FALLBACK`    | [`fallback`]    | `sticky` (default) / `off`     |
//! | `EDGEBOL_TRANSPORT`   | [`transport`]   | `poll` (default) / `reactor`   |
//! | `EDGEBOL_OPS`         | [`ops_addr`]    | `<ip>:<port>` to serve ops on  |
//! | `EDGEBOL_FLIGHT_DIR`  | [`flight_dir`]  | directory for crash dumps      |
//! | `EDGEBOL_GP_EVICT`    | `EvictStrategy::from_env` (edgebol-gp) | `downdate` (default) / `rebuild` |
//! | `EDGEBOL_REPS` etc.   | [`usize_knob`]  | non-negative integer           |
//! | `EDGEBOL_FLEET_SLICES` | [`fleet_slices`] | comma list of fleet sizes     |
//! | `EDGEBOL_FLEET_PERIODS` | [`fleet_periods`] | periods each slice runs     |
//! | `EDGEBOL_FLEET_CELLS` | [`fleet_cells`] | number of cells (GPU servers)  |
//! | `EDGEBOL_FLEET_GPU_CAPACITY` | [`fleet_gpu_capacity`] | per-cell capacity (demand units) |
//! | `EDGEBOL_FLEET_MODE`  | [`fleet_mode`]  | `both` (default)/`warm`/`cold` |
//! | `EDGEBOL_CKPT_DIR`    | [`ckpt_dir`]    | directory for slice checkpoints |
//! | `EDGEBOL_CKPT_EVERY`  | [`ckpt_every`]  | checkpoint cadence in periods  |
//! | `EDGEBOL_FLEET_KILL`  | [`fleet_kill`]  | `slice:<id>@<period>,...` kill schedule |
//! | `EDGEBOL_SOAK_CYCLES` | [`soak_cycles`] | kill/restore cycles per soak pass |
//! | `EDGEBOL_SOAK_SECONDS` | [`soak_seconds`] | soak wall-clock budget (0 = one bounded pass) |
//! | `EDGEBOL_SOAK_SLICES` | [`soak_slices`] | fleet size per soak pass       |
//!
//! (`EDGEBOL_GP_EVICT` is parsed by `edgebol_gp::EvictStrategy` rather
//! than here — the GP layer cannot depend on the bench crate — but
//! follows the same fail-fast convention. The `perf_gate` bin's
//! `EDGEBOL_GATE_*` bounds go through [`usize_knob`].)

use crate::MetricsMode;
use edgebol_oran::{ChaosConfig, FallbackMode, TransportKind};
use std::net::SocketAddr;
use std::path::PathBuf;

/// The trimmed value of `key`; `None` when unset or blank (every knob
/// treats an empty value as "use the default").
fn raw(key: &str) -> Option<String> {
    let v = std::env::var(key).ok()?;
    let t = v.trim();
    if t.is_empty() {
        None
    } else {
        Some(t.to_string())
    }
}

/// The uniform failure: every malformed knob dies with this shape.
fn invalid(key: &str, value: &str, expected: &str) -> ! {
    panic!("invalid {key} value {value:?}: expected {expected}")
}

/// Parses an `EDGEBOL_THREADS`-style worker count.
///
/// # Errors
/// A message naming the expectation when `v` is not a positive integer.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err("a positive integer".into()),
    }
}

/// `EDGEBOL_THREADS`: worker-thread count for the parallel runner, or
/// `None` to use [`std::thread::available_parallelism`].
///
/// # Panics
/// On a malformed value.
pub fn threads() -> Option<usize> {
    let v = raw("EDGEBOL_THREADS")?;
    match parse_threads(&v) {
        Ok(n) => Some(n),
        Err(e) => invalid("EDGEBOL_THREADS", &v, &e),
    }
}

/// Parses an `EDGEBOL_METRICS`-style observability mode.
///
/// # Errors
/// A message naming the expectation when `v` is none of `off`,
/// `summary` or `dump=<dir>` (with their aliases).
pub fn parse_metrics_mode(v: &str) -> Result<MetricsMode, String> {
    match v.trim() {
        "" | "off" | "0" => Ok(MetricsMode::Off),
        "summary" | "on" | "1" => Ok(MetricsMode::Summary),
        other => match other.strip_prefix("dump=") {
            Some(dir) if !dir.is_empty() => Ok(MetricsMode::Dump(PathBuf::from(dir))),
            _ => Err("off, summary or dump=<dir>".into()),
        },
    }
}

/// `EDGEBOL_METRICS`: the observability mode (uncached — the crate
/// root's [`crate::metrics_mode`] memoizes this per process).
///
/// # Panics
/// On a malformed value.
pub fn metrics_mode() -> MetricsMode {
    let v = raw("EDGEBOL_METRICS").unwrap_or_default();
    match parse_metrics_mode(&v) {
        Ok(m) => m,
        Err(e) => invalid("EDGEBOL_METRICS", &v, &e),
    }
}

/// Parses an `EDGEBOL_CHAOS`-style fault spec (see
/// [`ChaosConfig::from_spec`] for the `key=value,...` grammar).
///
/// # Errors
/// The spec parser's message.
pub fn parse_chaos(v: &str) -> Result<ChaosConfig, String> {
    ChaosConfig::from_spec(v)
}

/// `EDGEBOL_CHAOS`: the deterministic fault schedule, if any.
///
/// # Panics
/// On a malformed spec.
pub fn chaos() -> Option<ChaosConfig> {
    let v = raw("EDGEBOL_CHAOS")?;
    match parse_chaos(&v) {
        Ok(c) => Some(c),
        Err(e) => invalid("EDGEBOL_CHAOS", &v, &format!("a fault spec ({e})")),
    }
}

/// Parses an `EDGEBOL_FALLBACK`-style survival mode.
///
/// # Errors
/// A message naming the expectation when `v` is neither `sticky` nor
/// `off`.
pub fn parse_fallback(v: &str) -> Result<FallbackMode, String> {
    v.parse::<FallbackMode>().map_err(|_| "off or sticky".into())
}

/// `EDGEBOL_FALLBACK`: the reconnect supervisor's fallback mode
/// (default [`FallbackMode::Sticky`]).
///
/// # Panics
/// On a malformed value.
pub fn fallback() -> FallbackMode {
    match raw("EDGEBOL_FALLBACK") {
        None => FallbackMode::Sticky,
        Some(v) => match parse_fallback(&v) {
            Ok(m) => m,
            Err(e) => invalid("EDGEBOL_FALLBACK", &v, &e),
        },
    }
}

/// Parses an `EDGEBOL_TRANSPORT`-style transport kind.
///
/// # Errors
/// A message naming the expectation when `v` is neither `poll` nor
/// `reactor`.
pub fn parse_transport(v: &str) -> Result<TransportKind, String> {
    match v.trim() {
        "" | "poll" => Ok(TransportKind::Poll),
        "reactor" => Ok(TransportKind::Reactor),
        _ => Err("poll or reactor".into()),
    }
}

/// `EDGEBOL_TRANSPORT`: which transport carries the A1/E2 links
/// (default [`TransportKind::Poll`]). The orchestrator reads the same
/// knob internally via [`TransportKind::from_env`]; this accessor
/// exists so the harness can report and validate it uniformly.
///
/// # Panics
/// On a malformed value.
pub fn transport() -> TransportKind {
    match raw("EDGEBOL_TRANSPORT") {
        None => TransportKind::Poll,
        Some(v) => match parse_transport(&v) {
            Ok(k) => k,
            Err(e) => invalid("EDGEBOL_TRANSPORT", &v, &e),
        },
    }
}

/// Parses an `EDGEBOL_OPS`-style socket address.
///
/// # Errors
/// A message naming the expectation when `v` is not `<ip>:<port>`.
pub fn parse_ops_addr(v: &str) -> Result<SocketAddr, String> {
    v.trim().parse::<SocketAddr>().map_err(|_| "<ip>:<port>, e.g. 127.0.0.1:9100".into())
}

/// `EDGEBOL_OPS`: the address to serve the HTTP ops surface on
/// (`/metrics`, `/healthz`, `/vars`, `/trace`), or `None` to not serve
/// it. Port 0 asks the OS for a free port (the bound address is
/// reported on stderr).
///
/// # Panics
/// On a malformed address.
pub fn ops_addr() -> Option<SocketAddr> {
    let v = raw("EDGEBOL_OPS")?;
    match parse_ops_addr(&v) {
        Ok(a) => Some(a),
        Err(e) => invalid("EDGEBOL_OPS", &v, &e),
    }
}

/// `EDGEBOL_FLIGHT_DIR`: the directory the crash flight-recorder dumps
/// incident JSON into when a run dies with an `OrchestratorError`, or
/// `None` to disable the recorder. Any non-empty path is accepted;
/// the directory is created at dump time.
pub fn flight_dir() -> Option<PathBuf> {
    raw("EDGEBOL_FLIGHT_DIR").map(PathBuf::from)
}

/// Parses a sizing knob (`EDGEBOL_REPS`, `EDGEBOL_PERIODS`, ...).
///
/// # Errors
/// A message naming the expectation when `v` is not a non-negative
/// integer.
pub fn parse_usize(v: &str) -> Result<usize, String> {
    v.trim().parse::<usize>().map_err(|_| "a non-negative integer".into())
}

/// Reads a sizing knob (`EDGEBOL_REPS`, `EDGEBOL_PERIODS`,
/// `EDGEBOL_TRAIN`, ...): `default` when unset or blank.
///
/// # Panics
/// On a malformed value — a misspelled sweep size must not silently
/// run the default-sized sweep.
pub fn usize_knob(key: &str, default: usize) -> usize {
    match raw(key) {
        None => default,
        Some(v) => match parse_usize(&v) {
            Ok(n) => n,
            Err(e) => invalid(key, &v, &e),
        },
    }
}

/// Which spawn modes the `fleet` bench sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetMode {
    /// Warm-start late slices from the nearest running donor.
    Warm,
    /// Always cold-start (the control arm).
    Cold,
    /// Run both arms and report the convergence saving (default).
    Both,
}

impl FleetMode {
    /// `true` if this mode includes the warm arm.
    pub fn runs_warm(self) -> bool {
        matches!(self, FleetMode::Warm | FleetMode::Both)
    }

    /// `true` if this mode includes the cold arm.
    pub fn runs_cold(self) -> bool {
        matches!(self, FleetMode::Cold | FleetMode::Both)
    }
}

/// Parses an `EDGEBOL_FLEET_SLICES`-style comma list of fleet sizes.
///
/// # Errors
/// A message naming the expectation when any element is not a positive
/// integer (an empty list is also rejected).
pub fn parse_usize_list(v: &str) -> Result<Vec<usize>, String> {
    let out: Result<Vec<usize>, String> = v
        .split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("a comma-separated list of positive integers".to_string()),
        })
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("a comma-separated list of positive integers".into());
    }
    Ok(out)
}

/// `EDGEBOL_FLEET_SLICES`: the fleet sizes the `fleet` bench sweeps
/// (default `10,32,100,316,1000` — half-decade steps).
///
/// # Panics
/// On a malformed list.
pub fn fleet_slices() -> Vec<usize> {
    match raw("EDGEBOL_FLEET_SLICES") {
        None => vec![10, 32, 100, 316, 1000],
        Some(v) => match parse_usize_list(&v) {
            Ok(l) => l,
            Err(e) => invalid("EDGEBOL_FLEET_SLICES", &v, &e),
        },
    }
}

/// `EDGEBOL_FLEET_PERIODS`: how many control periods each slice lives
/// before retiring (default 48 — enough for quick-config convergence
/// plus a measurable steady tail).
///
/// # Panics
/// On a malformed value.
pub fn fleet_periods() -> usize {
    usize_knob("EDGEBOL_FLEET_PERIODS", 48)
}

/// `EDGEBOL_FLEET_CELLS`: how many cells (each with its own GPU server)
/// the fleet shards slices across (default 4).
///
/// # Panics
/// On a malformed value.
pub fn fleet_cells() -> usize {
    usize_knob("EDGEBOL_FLEET_CELLS", 4)
}

/// Parses an `EDGEBOL_FLEET_GPU_CAPACITY`-style positive float.
///
/// # Errors
/// A message naming the expectation when `v` is not a positive finite
/// number.
pub fn parse_positive_f64(v: &str) -> Result<f64, String> {
    match v.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 => Ok(x),
        _ => Err("a positive number".into()),
    }
}

/// `EDGEBOL_FLEET_GPU_CAPACITY`: per-cell GPU admission capacity in
/// aggregate demand units (default 8.0; a slice demands
/// `0.1 + 0.05 x users`, so the default admits roughly 30–50 concurrent
/// slices per cell).
///
/// # Panics
/// On a malformed value.
pub fn fleet_gpu_capacity() -> f64 {
    match raw("EDGEBOL_FLEET_GPU_CAPACITY") {
        None => 8.0,
        Some(v) => match parse_positive_f64(&v) {
            Ok(x) => x,
            Err(e) => invalid("EDGEBOL_FLEET_GPU_CAPACITY", &v, &e),
        },
    }
}

/// Parses an `EDGEBOL_FLEET_MODE`-style arm selector.
///
/// # Errors
/// A message naming the expectation when `v` is none of `warm`, `cold`
/// or `both`.
pub fn parse_fleet_mode(v: &str) -> Result<FleetMode, String> {
    match v.trim() {
        "" | "both" => Ok(FleetMode::Both),
        "warm" => Ok(FleetMode::Warm),
        "cold" => Ok(FleetMode::Cold),
        _ => Err("warm, cold or both".into()),
    }
}

/// `EDGEBOL_FLEET_MODE`: which spawn arms the `fleet` bench runs
/// (default [`FleetMode::Both`], so warm-vs-cold savings are measured
/// in one invocation).
///
/// # Panics
/// On a malformed value.
pub fn fleet_mode() -> FleetMode {
    match raw("EDGEBOL_FLEET_MODE") {
        None => FleetMode::Both,
        Some(v) => match parse_fleet_mode(&v) {
            Ok(m) => m,
            Err(e) => invalid("EDGEBOL_FLEET_MODE", &v, &e),
        },
    }
}

/// `EDGEBOL_CKPT_DIR`: the directory the fleet driver writes per-slice
/// checkpoint files (`slice-<id>.ckpt`) into, or `None` to disable
/// checkpointing. Any non-empty path is accepted; the atomic writer
/// creates missing parents at write time.
pub fn ckpt_dir() -> Option<PathBuf> {
    raw("EDGEBOL_CKPT_DIR").map(PathBuf::from)
}

/// `EDGEBOL_CKPT_EVERY`: checkpoint cadence in lockstep periods
/// (default 8). `0` disables the cadence even when `EDGEBOL_CKPT_DIR`
/// is set.
///
/// # Panics
/// On a malformed value.
pub fn ckpt_every() -> usize {
    usize_knob("EDGEBOL_CKPT_EVERY", 8)
}

/// Parses an `EDGEBOL_FLEET_KILL`-style crash schedule:
/// `slice:<id>@<period>` entries, comma-separated — e.g.
/// `slice:3@120,slice:0@40` kills slice 3's runner at the start of
/// lockstep period 120 and slice 0's at period 40.
///
/// # Errors
/// A message naming the expectation when any entry deviates from the
/// grammar.
pub fn parse_kill_schedule(v: &str) -> Result<Vec<(u64, usize)>, String> {
    const EXPECTED: &str = "slice:<id>@<period> entries, comma-separated";
    let mut out = Vec::new();
    for entry in v.split(',') {
        let entry = entry.trim();
        let body = entry.strip_prefix("slice:").ok_or_else(|| EXPECTED.to_string())?;
        let (id, period) = body.split_once('@').ok_or_else(|| EXPECTED.to_string())?;
        let id = id.trim().parse::<u64>().map_err(|_| EXPECTED.to_string())?;
        let period = period.trim().parse::<usize>().map_err(|_| EXPECTED.to_string())?;
        out.push((id, period));
    }
    if out.is_empty() {
        return Err(EXPECTED.into());
    }
    Ok(out)
}

/// `EDGEBOL_FLEET_KILL`: the fleet crash-injection schedule, or an
/// empty schedule when unset. Each entry destroys one slice's control
/// plane at the start of the named lockstep period; the driver then
/// restarts it from its latest checkpoint (cold, counted, when none
/// survives decode).
///
/// # Panics
/// On a malformed schedule.
pub fn fleet_kill() -> Vec<(u64, usize)> {
    match raw("EDGEBOL_FLEET_KILL") {
        None => Vec::new(),
        Some(v) => match parse_kill_schedule(&v) {
            Ok(s) => s,
            Err(e) => invalid("EDGEBOL_FLEET_KILL", &v, &e),
        },
    }
}

/// `EDGEBOL_SOAK_CYCLES`: how many kill/restore cycles (each paired
/// with a link cut + heal) one soak pass injects (default 3, the
/// acceptance floor).
///
/// # Panics
/// On a malformed value.
pub fn soak_cycles() -> usize {
    usize_knob("EDGEBOL_SOAK_CYCLES", 3)
}

/// `EDGEBOL_SOAK_SECONDS`: wall-clock budget for the `soak` binary.
/// `0` (the default) runs exactly one bounded deterministic pass — the
/// CI mode, whose stdout summary is byte-stable across thread counts;
/// any positive value repeats passes until the budget is spent.
///
/// # Panics
/// On a malformed value.
pub fn soak_seconds() -> usize {
    usize_knob("EDGEBOL_SOAK_SECONDS", 0)
}

/// `EDGEBOL_SOAK_SLICES`: fleet size per soak pass (default 8).
///
/// # Panics
/// On a malformed value.
pub fn soak_slices() -> usize {
    usize_knob("EDGEBOL_SOAK_SLICES", 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_accepts_positive_rejects_rest() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 1 "), Ok(1));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("four").is_err());
    }

    #[test]
    fn metrics_mode_parses_all_aliases() {
        assert_eq!(parse_metrics_mode(""), Ok(MetricsMode::Off));
        assert_eq!(parse_metrics_mode("off"), Ok(MetricsMode::Off));
        assert_eq!(parse_metrics_mode("0"), Ok(MetricsMode::Off));
        assert_eq!(parse_metrics_mode("summary"), Ok(MetricsMode::Summary));
        assert_eq!(parse_metrics_mode("on"), Ok(MetricsMode::Summary));
        assert_eq!(parse_metrics_mode("1"), Ok(MetricsMode::Summary));
        assert_eq!(parse_metrics_mode("dump=/tmp/m"), Ok(MetricsMode::Dump("/tmp/m".into())));
        assert!(parse_metrics_mode("dump=").is_err());
        assert!(parse_metrics_mode("verbose").is_err());
    }

    #[test]
    fn fallback_and_transport_parse() {
        assert_eq!(parse_fallback("off"), Ok(FallbackMode::Off));
        assert_eq!(parse_fallback("sticky"), Ok(FallbackMode::Sticky));
        assert!(parse_fallback("both").is_err());
        assert_eq!(parse_transport("poll"), Ok(TransportKind::Poll));
        assert_eq!(parse_transport("reactor"), Ok(TransportKind::Reactor));
        assert_eq!(parse_transport(""), Ok(TransportKind::Poll));
        assert!(parse_transport("udp").is_err());
    }

    #[test]
    fn ops_addr_requires_socket_syntax() {
        assert!(parse_ops_addr("127.0.0.1:0").is_ok());
        assert!(parse_ops_addr("0.0.0.0:9100").is_ok());
        assert!(parse_ops_addr("localhost:9100").is_err(), "no name resolution");
        assert!(parse_ops_addr("9100").is_err());
    }

    #[test]
    fn chaos_spec_delegates_to_the_chaos_parser() {
        assert!(parse_chaos("seed=7,rate=0.05").is_ok());
        assert!(parse_chaos("rate=not-a-number").is_err());
    }

    #[test]
    fn usize_knob_falls_back_only_when_unset() {
        assert_eq!(parse_usize("12"), Ok(12));
        assert!(parse_usize("12.5").is_err());
        assert!(parse_usize("many").is_err());
        // Unset (or blank) keys yield the default without parsing.
        assert_eq!(usize_knob("EDGEBOL_THIS_KNOB_IS_NEVER_SET", 42), 42);
    }

    #[test]
    fn fleet_size_lists_parse_and_reject_garbage() {
        assert_eq!(parse_usize_list("10,32,100"), Ok(vec![10, 32, 100]));
        assert_eq!(parse_usize_list(" 5 "), Ok(vec![5]));
        assert!(parse_usize_list("").is_err());
        assert!(parse_usize_list("10,,32").is_err());
        assert!(parse_usize_list("10,0").is_err());
        assert!(parse_usize_list("ten").is_err());
    }

    #[test]
    fn fleet_capacity_must_be_positive_and_finite() {
        assert_eq!(parse_positive_f64("8.0"), Ok(8.0));
        assert_eq!(parse_positive_f64(" 0.5 "), Ok(0.5));
        assert!(parse_positive_f64("0").is_err());
        assert!(parse_positive_f64("-1").is_err());
        assert!(parse_positive_f64("inf").is_err());
        assert!(parse_positive_f64("lots").is_err());
    }

    #[test]
    fn kill_schedules_parse_and_reject_garbage() {
        assert_eq!(parse_kill_schedule("slice:3@120"), Ok(vec![(3, 120)]));
        assert_eq!(parse_kill_schedule(" slice:3@120 , slice:0@40 "), Ok(vec![(3, 120), (0, 40)]));
        assert!(parse_kill_schedule("").is_err());
        assert!(parse_kill_schedule("3@120").is_err(), "missing slice: prefix");
        assert!(parse_kill_schedule("slice:3").is_err(), "missing @period");
        assert!(parse_kill_schedule("slice:three@120").is_err());
        assert!(parse_kill_schedule("slice:3@").is_err());
        assert!(parse_kill_schedule("slice:3@-1").is_err());
    }

    #[test]
    fn fleet_mode_parses_all_arms() {
        assert_eq!(parse_fleet_mode("warm"), Ok(FleetMode::Warm));
        assert_eq!(parse_fleet_mode("cold"), Ok(FleetMode::Cold));
        assert_eq!(parse_fleet_mode("both"), Ok(FleetMode::Both));
        assert_eq!(parse_fleet_mode(""), Ok(FleetMode::Both));
        assert!(parse_fleet_mode("hot").is_err());
        assert!(FleetMode::Both.runs_warm() && FleetMode::Both.runs_cold());
        assert!(FleetMode::Warm.runs_warm() && !FleetMode::Warm.runs_cold());
        assert!(!FleetMode::Cold.runs_warm() && FleetMode::Cold.runs_cold());
    }
}

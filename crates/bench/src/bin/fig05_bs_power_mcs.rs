//! Fig. 5 — BS (BBU) power vs mean MCS, per resolution, with panels for
//! airtime ∈ {20%, 50%, 100%}, at nominal (1x) load.
//!
//! The paper's finding: at low load, *higher* MCS policies *lower* BS
//! power — subframes at higher MCS cost more to decode but clear the load
//! in fewer subframes, which wins over the long run. Airtime (and the
//! request rate it enables) raises BS power.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure};
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::single_user(35.0);
    let mut table = Table::new(
        "Fig. 5 — BS power vs MCS cap per resolution and airtime, 1x load (DES)",
        &["airtime", "resolution", "mcs_cap", "bs_power_w"],
    );
    for &airtime in &[0.2, 0.5, 1.0] {
        for &res in &[0.25, 1.0] {
            for &mcs in &[4u8, 8, 12, 16, 20, 24, 28] {
                let p = measure(&scenario, &control(res, airtime, 1.0, mcs), reps, periods);
                table.push_row(vec![f3(airtime), f3(res), format!("{mcs}"), f1(p.bs_power_w)]);
            }
        }
    }
    table.print();
    let path = table.write_csv("fig05_bs_power_mcs").expect("write csv");
    println!("wrote {}", path.display());

    let low_mcs = measure(&scenario, &control(1.0, 1.0, 1.0, 6), reps, periods);
    let high_mcs = measure(&scenario, &control(1.0, 1.0, 1.0, 28), reps, periods);
    println!(
        "BS power at MCS cap 6 vs 28 (full res/airtime): {:.2} W vs {:.2} W  \
         (paper: higher MCS -> lower power at 1x load)",
        low_mcs.bs_power_w, high_mcs.bs_power_w
    );
    edgebol_bench::metrics_report();
}

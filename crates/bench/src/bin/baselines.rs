//! Algorithm shoot-out: every agent in the workspace on the §6.2 setting.
//!
//! EdgeBOL (constrained LCB), the Thompson-sampling variant (extension),
//! the SafeOpt-style safe-exploration baseline, the tabular ε-greedy
//! strawman, and the DDPG neural benchmark — same environment, same
//! constraints, same repetitions. The table quantifies the paper's core
//! claim: correlation-aware *and* constraint-aware learning is what makes
//! the problem tractable at this scale (|X| = 14 641, ~150 periods).

use edgebol_bandit::{Acquisition, EdgeBolConfig};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, run_reps, Table};
use edgebol_core::agent::{Agent, DdpgAgent, EdgeBolAgent, EpsGreedyAgent};
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 5);
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let spec = ProblemSpec::convergence(8.0);

    // `Sync` so the parallel runner can call the factory from its workers.
    type AgentFactory = Box<dyn Fn(u64) -> Box<dyn Agent> + Sync>;
    let agents: Vec<(&str, AgentFactory)> = vec![
        ("EdgeBOL", Box::new(move |seed| Box::new(EdgeBolAgent::paper(&spec, 0x10 + seed)))),
        (
            "EdgeBOL-TS (extension)",
            Box::new(move |seed| {
                let mut cfg = EdgeBolConfig::paper(spec.constraints());
                cfg.acquisition = Acquisition::ThompsonSampling;
                cfg.seed = 0x20 + seed;
                Box::new(EdgeBolAgent::with_config(&spec, cfg))
            }),
        ),
        (
            "SafeOpt-like",
            Box::new(move |seed| {
                let mut cfg = EdgeBolConfig::paper(spec.constraints());
                cfg.acquisition = Acquisition::MaxUncertainty;
                cfg.seed = 0x30 + seed;
                Box::new(EdgeBolAgent::with_config(&spec, cfg))
            }),
        ),
        ("eps-greedy", Box::new(move |seed| Box::new(EpsGreedyAgent::new(&spec, 0x40 + seed)))),
        ("DDPG", Box::new(move |seed| Box::new(DdpgAgent::new(&spec, 0x50 + seed)))),
    ];

    let mut table = Table::new(
        "Baselines — medium setting (d_max = 0.4 s, rho_min = 0.5, delta2 = 8)",
        &["agent", "tail_cost", "violation_rate", "conv_period"],
    );
    for (name, factory) in &agents {
        let traces = run_reps(
            reps,
            periods,
            spec,
            |seed| {
                Box::new(FlowTestbed::new(
                    Calibration::fast(),
                    Scenario::single_user(35.0),
                    0xBA5E + seed,
                ))
            },
            |seed| factory(seed),
        );
        let tails: Vec<f64> = traces.iter().map(|t| t.tail_mean_cost(20)).collect();
        let viols: Vec<f64> = traces.iter().map(|t| 1.0 - t.satisfaction_rate(15)).collect();
        let convs: Vec<f64> =
            traces.iter().filter_map(|t| t.convergence_period(0.10).map(|c| c as f64)).collect();
        table.push_row(vec![
            name.to_string(),
            f1(edgebol_bench::median(&tails)),
            f3(edgebol_bench::median(&viols)),
            f1(edgebol_bench::median(&convs)),
        ]);
    }
    table.print();
    let path = table.write_csv("baselines").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

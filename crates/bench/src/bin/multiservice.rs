//! §4.4 extension — joint vs per-slice orchestration of two AI services.
//!
//! The paper sketches extending EdgeBOL to `S` concurrent services
//! (context/action dimensionality `4S + 3`, `2S + 2` constraints) and
//! predicts it "becomes intractable in real-life large-scale deployments",
//! recommending pre-partitioned per-service slices. This bin tests that
//! argument on the coupled two-service testbed
//! (`edgebol_testbed::multiservice`):
//!
//! * **joint** — one EdgeBOL over the 8-dim joint control space (a coarse
//!   4-level grid, 65 536 points, candidate-subsampled) with all four
//!   service constraints in one safe set (each service's delay and mAP
//!   folded into worst-case aggregates);
//! * **per-slice** — two independent EdgeBOLs on the paper's 11-level
//!   4-dim grid, each with a pre-partitioned half of the airtime budget
//!   and its own constraints, sharing the GPU implicitly through the
//!   environment.
//!
//! Measured outcome (see results/multiservice.txt): the *tractable* joint
//! agent — which must coarsen its grid to 4 levels/dim, since 11^8 ≈ 214M
//! points is unsearchable — converges fast but to a resolution-limited
//! optimum; the per-slice agents keep the full 11-level grids and find a
//! ~6% cheaper configuration, paying with slower co-adaptation. Either
//! way the full-resolution joint problem is intractable, which is §4.4's
//! point.

use edgebol_bandit::{Constraints, ControlGrid, EdgeBol, EdgeBolConfig, Feedback, GridAgent};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::{Calibration, ControlInput, MultiServiceTestbed, ServiceCfg};

/// Shared experiment constants.
const DELTA2: f64 = 8.0;
const D_MAX: f64 = 0.6;
const RHO_MIN: f64 = 0.45;

fn services() -> Vec<ServiceCfg> {
    vec![ServiceCfg { snr_db: 35.0 }, ServiceCfg { snr_db: 25.0 }]
}

fn cost_of(obs: &[edgebol_testbed::PeriodObservation]) -> f64 {
    // Powers are shared quantities (identical in every observation).
    obs[0].server_power_w + DELTA2 * obs[0].bs_power_w
}

fn violated(obs: &[edgebol_testbed::PeriodObservation]) -> bool {
    obs.iter().any(|o| o.delay_s > D_MAX || o.map < RHO_MIN)
}

/// Joint agent: 8 control dims on a 4-level grid.
fn run_joint(periods: usize, seed: u64) -> (Vec<f64>, usize) {
    let mut env = MultiServiceTestbed::new(Calibration::fast(), services(), seed);
    let grid = ControlGrid::new(4, 8);
    let mut cfg = EdgeBolConfig::paper(Constraints { d_max: D_MAX, rho_min: RHO_MIN });
    cfg.context_dims = 1; // static scenario: a constant placeholder context
    cfg.s0_threshold = 0.6; // 4-level grid: box = the top-2 levels corner
    cfg.warmup_rounds = 16;
    cfg.candidate_subsample = Some(2048);
    cfg.seed = seed;
    let mut agent = EdgeBol::with_grid(cfg, grid.clone());
    let ctx = [0.5];
    let mut costs = Vec::with_capacity(periods);
    let mut violations = 0usize;
    for _ in 0..periods {
        let idx = agent.select(&ctx);
        let u = grid.coords(idx);
        let controls = [
            ControlInput::from_unit(u[0], u[1], u[2], u[3]),
            ControlInput::from_unit(u[4], u[5], u[6], u[7]),
        ];
        let obs = env.step(&controls);
        let cost = cost_of(&obs);
        // Worst-case aggregation folds the 2S constraints into two.
        let worst_delay = obs.iter().map(|o| o.delay_s).fold(0.0, f64::max);
        let worst_map = obs.iter().map(|o| o.map).fold(1.0, f64::min);
        violations += usize::from(violated(&obs));
        costs.push(cost);
        agent.update(&ctx, idx, &Feedback { cost, delay_s: worst_delay, map: worst_map });
    }
    (costs, violations)
}

/// Per-slice agents: each owns half the airtime budget and its own KPIs.
fn run_per_slice(periods: usize, seed: u64) -> (Vec<f64>, usize) {
    let mut env = MultiServiceTestbed::new(Calibration::fast(), services(), seed);
    let grid = ControlGrid::paper();
    let mk = |s: u64| {
        let mut cfg = EdgeBolConfig::paper(Constraints { d_max: D_MAX, rho_min: RHO_MIN });
        cfg.context_dims = 1;
        cfg.seed = s;
        EdgeBol::with_grid(cfg, ControlGrid::paper())
    };
    let mut agents = [mk(seed ^ 1), mk(seed ^ 2)];
    let ctx = [0.5];
    let mut costs = Vec::with_capacity(periods);
    let mut violations = 0usize;
    for _ in 0..periods {
        let picks = [agents[0].select(&ctx), agents[1].select(&ctx)];
        let controls: Vec<ControlInput> = picks
            .iter()
            .map(|&idx| {
                let u = grid.coords(idx);
                let mut c = ControlInput::from_unit(u[0], u[1], u[2], u[3]);
                // Pre-partitioned slice: half of the carrier each.
                c.airtime *= 0.5;
                c
            })
            .collect();
        let obs = env.step(&controls);
        let cost = cost_of(&obs);
        violations += usize::from(violated(&obs));
        costs.push(cost);
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.update(
                &ctx,
                picks[i],
                &Feedback { cost, delay_s: obs[i].delay_s, map: obs[i].map },
            );
        }
    }
    (costs, violations)
}

fn main() {
    let periods = usize_knob("EDGEBOL_PERIODS", 250);
    let reps = usize_knob("EDGEBOL_REPS", 3);

    let mut table = Table::new(
        "Multi-service (S = 2): joint 8-dim EdgeBOL vs per-slice decomposition",
        &["approach", "tail_cost", "violation_rate", "conv_period"],
    );
    for (label, runner) in [
        ("joint (4^8 grid)", run_joint as fn(usize, u64) -> (Vec<f64>, usize)),
        ("per-slice (2 x 11^4)", run_per_slice),
    ] {
        let mut tails = Vec::new();
        let mut viols = Vec::new();
        let mut convs = Vec::new();
        // Repetitions are independent: run them on the shared pool.
        let reps_out =
            edgebol_bench::parallel_map(reps, |rep| runner(periods, 0x2511 + rep as u64));
        for (costs, violations) in reps_out {
            let tail = costs[periods - 20..].iter().sum::<f64>() / 20.0;
            tails.push(tail);
            viols.push(violations as f64 / periods as f64);
            let mut conv = 0;
            for (i, &c) in costs.iter().enumerate() {
                if (c - tail).abs() > tail * 0.10 {
                    conv = i + 1;
                }
            }
            convs.push(conv as f64);
        }
        table.push_row(vec![
            label.to_string(),
            f1(edgebol_bench::median(&tails)),
            f3(edgebol_bench::median(&viols)),
            f1(edgebol_bench::median(&convs)),
        ]);
    }
    table.print();
    let path = table.write_csv("multiservice").expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "the §4.4 trade, concretely: a *tractable* joint agent must coarsen its grid\n\
         (11^8 would be 214M points), so it converges quickly but to a\n\
         resolution-limited optimum; per-slice agents keep the full 11-level grids\n\
         and find a finer (cheaper) configuration, paying with slower co-adaptation\n\
         through the shared GPU and airtime budget."
    );
    edgebol_bench::metrics_report();
}

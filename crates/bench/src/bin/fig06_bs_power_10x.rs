//! Fig. 6 — BS power vs MCS cap at 10x offered load.
//!
//! With ten users saturating the slice's airtime budget, the relationship
//! of Fig. 5 inverts for high-resolution traffic: subframe occupancy is
//! pinned at the airtime cap, so the per-subframe decode cost — which
//! grows with MCS — dominates, and higher MCS *raises* BS power. For
//! low-resolution traffic (lighter load) the Fig. 5 behaviour survives.
//! This inversion is the paper's argument for *learning* rather than
//! hard-coding radio policies.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure};
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::tenx_load(35.0);
    let mut table = Table::new(
        "Fig. 6 — BS power vs MCS cap per resolution and airtime, 10x load (DES)",
        &["airtime", "resolution", "mcs_cap", "bs_power_w"],
    );
    for &airtime in &[0.2, 0.5, 1.0] {
        for &res in &[0.25, 1.0] {
            for &mcs in &[4u8, 8, 12, 16, 20, 24, 28] {
                let p = measure(&scenario, &control(res, airtime, 1.0, mcs), reps, periods);
                table.push_row(vec![f3(airtime), f3(res), format!("{mcs}"), f1(p.bs_power_w)]);
            }
        }
    }
    table.print();
    let path = table.write_csv("fig06_bs_power_10x").expect("write csv");
    println!("wrote {}", path.display());

    let low_mcs = measure(&scenario, &control(1.0, 1.0, 1.0, 8), reps, periods);
    let high_mcs = measure(&scenario, &control(1.0, 1.0, 1.0, 28), reps, periods);
    println!(
        "BS power at MCS cap 8 vs 28 (full res/airtime, 10x): {:.2} W vs {:.2} W  \
         (paper: higher MCS -> HIGHER power under saturation)",
        low_mcs.bs_power_w, high_mcs.bs_power_w
    );
    edgebol_bench::metrics_report();
}

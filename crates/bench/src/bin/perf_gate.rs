//! CI perf gate for the GP sliding-window eviction path.
//!
//! Measures the at-capacity `observe` cost (evict + bordered append) at
//! the paper-scale window `T = 200` under both eviction strategies and
//! fails (exit code 1) when either of two conditions breaks:
//!
//! * **Absolute**: the downdate-path median exceeds
//!   `EDGEBOL_GATE_EVICT_US` (default 161 µs — one tenth of the 1.61 ms
//!   rebuild baseline pinned in EXPERIMENTS.md §GP sliding-window, i.e.
//!   the ≥10× acceptance bar with the measured headroom behind it).
//! * **Relative**: the rebuild/downdate median ratio falls below
//!   `EDGEBOL_GATE_EVICT_RATIO` (default 5). The ratio is
//!   machine-independent, so this arm still bites on CI runners much
//!   slower or faster than the baseline box.
//!
//! A batched-posterior sanity bound rides along: the `T = 200`,
//! `M = 1000` batch predict must stay under `EDGEBOL_GATE_BATCH_US`
//! (default 50 000 µs, ~2× the measured figure — a coarse tripwire for
//! accidental de-batching, not a tight regression bound).
//!
//! Medians over `EDGEBOL_GATE_SAMPLES` (default 30) individually-timed
//! steady-state iterations after 3 warm-ups each; deterministic
//! workload, no RNG.

use edgebol_bench::env::usize_knob;
use edgebol_gp::{EvictStrategy, GaussianProcess, Kernel};
use std::time::Instant;

/// Deterministically filled GP at exactly its window capacity.
fn gp_at_cap(cap: usize, strategy: EvictStrategy) -> GaussianProcess {
    let mut gp = GaussianProcess::new(Kernel::matern32(4.0, vec![0.4; 7]), 0.02)
        .with_max_observations(cap)
        .with_evict_strategy(strategy);
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..cap {
        let z: Vec<f64> = (0..7).map(|_| next()).collect();
        let y = z.iter().sum::<f64>();
        gp.observe(&z, y).unwrap();
    }
    gp
}

/// Median of `samples` individually-timed runs of `f` against one
/// long-lived state, in microseconds. Steady-state methodology: at
/// capacity every `observe` is a full evict + append cycle, so timing
/// consecutive calls on one GP measures exactly the per-period cost with
/// no per-sample reconstruction noise.
fn median_us<T>(samples: usize, state: &mut T, mut f: impl FnMut(&mut T)) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..3 {
        f(state);
    }
    for _ in 0..samples {
        let t0 = Instant::now();
        f(state);
        times.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let samples = usize_knob("EDGEBOL_GATE_SAMPLES", 30);
    let evict_bound_us = usize_knob("EDGEBOL_GATE_EVICT_US", 161) as f64;
    let min_ratio = usize_knob("EDGEBOL_GATE_EVICT_RATIO", 5) as f64;
    let batch_bound_us = usize_knob("EDGEBOL_GATE_BATCH_US", 50_000) as f64;

    let mut gp_down = gp_at_cap(200, EvictStrategy::Downdate);
    let mut t = 0.0;
    let downdate = median_us(samples, &mut gp_down, |gp| {
        t += 0.001;
        gp.observe(&[0.5 + t; 7], 1.0).unwrap();
    });
    let mut gp_re = gp_at_cap(200, EvictStrategy::Rebuild);
    let rebuild = median_us(samples, &mut gp_re, |gp| {
        t += 0.001;
        gp.observe(&[0.5 + t; 7], 1.0).unwrap();
    });
    let queries: Vec<f64> = (0..1000 * 7).map(|i| (i % 97) as f64 / 97.0).collect();
    let batch = median_us(samples.min(10), &mut gp_down, |gp| {
        gp.predict_batch(&queries);
    });

    let ratio = rebuild / downdate;
    println!("perf gate (median over {samples} samples, window T=200):");
    println!("  gp_evict_downdate_T200          {downdate:10.1} us  (bound {evict_bound_us} us)");
    println!("  gp_observe_evict_refactor_T200  {rebuild:10.1} us");
    println!("  rebuild/downdate ratio          {ratio:10.1}x   (bound >= {min_ratio}x)");
    println!("  gp_predict_batch_T200_M1000     {batch:10.1} us  (bound {batch_bound_us} us)");

    let mut failed = false;
    if downdate > evict_bound_us {
        eprintln!("FAIL: downdate evict {downdate:.1} us exceeds the {evict_bound_us} us bound");
        failed = true;
    }
    if ratio < min_ratio {
        eprintln!("FAIL: rebuild/downdate ratio {ratio:.1}x below the {min_ratio}x bound");
        failed = true;
    }
    if batch > batch_bound_us {
        eprintln!("FAIL: batched posterior {batch:.1} us exceeds the {batch_bound_us} us bound");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf gate passed");
}

//! Fig. 4 — mAP vs server power for different resolutions, at maximum
//! radio and compute resources.
//!
//! The paper's counter-intuitive result: *higher* precision costs *less*
//! server power, because high-res frames arrive more slowly in the
//! closed loop and unload the GPU.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure, RESOLUTIONS};
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::single_user(35.0);
    let mut table = Table::new(
        "Fig. 4 — mAP vs server power per resolution (DES)",
        &["resolution", "server_power_w", "mAP"],
    );
    let mut prev: Option<(f64, f64)> = None;
    for &res in &RESOLUTIONS {
        let p = measure(&scenario, &control(res, 1.0, 1.0, 28), reps, periods);
        table.push_row(vec![f3(res), f1(p.server_power_w), f3(p.map)]);
        if let Some((prev_power, prev_map)) = prev {
            assert!(p.map > prev_map, "mAP must rise with resolution ({} vs {prev_map})", p.map);
            // The inversion: power falls as precision rises.
            if p.server_power_w >= prev_power {
                eprintln!(
                    "warning: power did not fall from res step ({prev_power} -> {})",
                    p.server_power_w
                );
            }
        }
        prev = Some((p.server_power_w, p.map));
    }
    table.print();
    let path = table.write_csv("fig04_precision_power").expect("write csv");
    println!("wrote {}", path.display());
    println!("note: higher mAP should associate with LOWER server power (paper Fig. 4)");
    edgebol_bench::metrics_report();
}

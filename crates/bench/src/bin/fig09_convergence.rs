//! Fig. 9 — convergence of EdgeBOL under a static context.
//!
//! Setup exactly as §6.2: single user at 35 dB (good wireless), δ1 = 1,
//! d_max = 0.4 s, ρ_min = 0.5, δ2 swept over {1, 2, 4, 8, 16, 32, 64};
//! median over repetitions. The paper's headline: the cost converges
//! within ≈25 periods for every δ2, and both KPIs fall within the
//! constraints upon convergence with high probability.

use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::percentile_band;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 10);
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let deltas = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

    let mut summary = Table::new(
        "Fig. 9 — EdgeBOL convergence per delta2 (median over reps)",
        &[
            "delta2",
            "conv_period",
            "tail_cost",
            "tail_delay_s",
            "tail_mAP",
            "tail_bs_w",
            "tail_srv_w",
            "satisfaction",
        ],
    );
    let mut series = Table::new(
        "Fig. 9 — cost series (median, p10, p90)",
        &["delta2", "t", "cost_med", "cost_p10", "cost_p90", "delay_med", "map_med"],
    );

    for &d2 in &deltas {
        let spec = ProblemSpec::convergence(d2);
        let traces = run_reps(
            reps,
            periods,
            spec,
            |seed| {
                Box::new(FlowTestbed::new(
                    Calibration::fast(),
                    Scenario::single_user(35.0),
                    0x900 + seed,
                ))
            },
            |seed| Box::new(EdgeBolAgent::paper(&spec, 0x19 + seed)),
        );

        let costs: Vec<Vec<f64>> = traces.iter().map(|t| t.costs()).collect();
        let delays: Vec<Vec<f64>> = traces.iter().map(|t| t.delays()).collect();
        let maps: Vec<Vec<f64>> = traces.iter().map(|t| t.maps()).collect();
        let (cost_med, cost_lo, cost_hi) = percentile_band(&costs, 0.1, 0.9);
        let (delay_med, _, _) = percentile_band(&delays, 0.1, 0.9);
        let (map_med, _, _) = percentile_band(&maps, 0.1, 0.9);

        for t in (0..periods).step_by(5) {
            series.push_row(vec![
                f1(d2),
                format!("{t}"),
                f1(cost_med[t]),
                f1(cost_lo[t]),
                f1(cost_hi[t]),
                f3(delay_med[t]),
                f3(map_med[t]),
            ]);
        }

        let conv: Vec<f64> =
            traces.iter().filter_map(|t| t.convergence_period(0.10).map(|c| c as f64)).collect();
        let tail = |f: fn(&edgebol_core::trace::Trace) -> Vec<f64>| -> f64 {
            let v: Vec<f64> = traces
                .iter()
                .map(|t| {
                    let s = f(t);
                    s[s.len() - 20..].iter().sum::<f64>() / 20.0
                })
                .collect();
            edgebol_bench::median(&v)
        };
        let sat: Vec<f64> = traces.iter().map(|t| t.satisfaction_rate(30)).collect();
        summary.push_row(vec![
            f1(d2),
            f1(edgebol_bench::median(&conv)),
            f1(tail(|t| t.costs())),
            f3(tail(|t| t.delays())),
            f3(tail(|t| t.maps())),
            f3(tail(|t| t.bs_powers())),
            f1(tail(|t| t.server_powers())),
            f3(edgebol_bench::median(&sat)),
        ]);
    }

    summary.print();
    summary.write_csv("fig09_convergence_summary").expect("write csv");
    let path = series.write_csv("fig09_convergence_series").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

//! Fig. 2 — service delay vs server power, per resolution, with panels
//! for airtime ∈ {20%, 50%, 100%}.
//!
//! The paper's findings reproduced here: (i) lower airtime inflates delay
//! at every resolution; (ii) lower-res images *raise* server power (the
//! closed loop sends frames faster, loading the GPU); (iii) an 80%
//! increase in airtime improves delay by 65–80%.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure, RESOLUTIONS};
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::single_user(35.0);
    let mut table = Table::new(
        "Fig. 2 — delay vs server power per resolution and airtime (DES)",
        &["airtime", "resolution", "server_power_w", "delay_s"],
    );
    for &airtime in &[0.2, 0.5, 1.0] {
        for &res in &RESOLUTIONS {
            let p = measure(&scenario, &control(res, airtime, 1.0, 28), reps, periods);
            table.push_row(vec![f3(airtime), f3(res), f1(p.server_power_w), f3(p.delay_s)]);
        }
    }
    table.print();
    let path = table.write_csv("fig02_delay_server_power").expect("write csv");
    println!("wrote {}", path.display());

    let starved = measure(&scenario, &control(1.0, 0.2, 1.0, 28), reps, periods);
    let free = measure(&scenario, &control(1.0, 1.0, 1.0, 28), reps, periods);
    println!(
        "delay improvement from 20% -> 100% airtime at full res: {:.0}%  (paper: 65–80%)",
        (starved.delay_s - free.delay_s) / starved.delay_s * 100.0
    );
    let lo = measure(&scenario, &control(0.25, 1.0, 1.0, 28), reps, periods);
    println!(
        "server power increase for 75% resolution cut: {:.0}%  (paper: ~56% for similar shifts)",
        (lo.server_power_w - free.server_power_w) / free.server_power_w * 100.0
    );
    edgebol_bench::metrics_report();
}

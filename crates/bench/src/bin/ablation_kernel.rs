//! Ablation — kernel choice.
//!
//! The paper selects the anisotropic Matérn-3/2 (eq. 6) after arguing the
//! KPI surfaces are stationary, anisotropic, and once differentiable.
//! This ablation runs the same problem with Matérn-3/2 / Matérn-5/2 / RBF
//! kernels, fitted (grouped anisotropic) vs fixed-isotropic length-scales,
//! and reports converged cost and violation rate.
//!
//! Because `EdgeBolConfig` fixes Matérn-3/2 for the online path, the
//! family comparison here drives the GP layer directly on a logged
//! dataset: fit each kernel to KPI observations collected from the
//! testbed, then score held-out prediction error — the quantity that
//! decides safe-set quality.

use edgebol_bench::env::usize_knob;
use edgebol_bench::{f3, Table};
use edgebol_gp::{GaussianProcess, Kernel, KernelKind};
use edgebol_testbed::{Calibration, ControlInput, Environment, FlowTestbed, Scenario};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let n_train = usize_knob("EDGEBOL_TRAIN", 150);
    let n_test = usize_knob("EDGEBOL_TEST", 150);

    // Collect a labelled dataset: random controls, noisy KPI observations.
    let mut env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 0xAB1);
    let mut rng = SmallRng::seed_from_u64(0xAB2);
    let mut xs: Vec<[f64; 7]> = Vec::new();
    let mut y_delay = Vec::new();
    for _ in 0..n_train + n_test {
        let u: [f64; 4] = [rng.random(), rng.random(), rng.random(), rng.random()];
        let control = ControlInput::from_unit(u[0], u[1], u[2], u[3]);
        let ctx = env.observe_context();
        let obs = env.step(&control);
        let cu = ctx.to_unit();
        xs.push([cu[0], cu[1], cu[2], u[0], u[1], u[2], u[3]]);
        y_delay.push(obs.delay_s);
    }
    let mean_y = edgebol_linalg::vecops::mean(&y_delay[..n_train]);
    let std_y = edgebol_linalg::vecops::variance(&y_delay[..n_train]).sqrt().max(1e-6);

    let variants: [(&str, KernelKind, bool); 6] = [
        ("Matern32 anisotropic", KernelKind::Matern32, true),
        ("Matern32 isotropic", KernelKind::Matern32, false),
        ("Matern52 anisotropic", KernelKind::Matern52, true),
        ("Matern52 isotropic", KernelKind::Matern52, false),
        ("RBF anisotropic", KernelKind::Rbf, true),
        ("RBF isotropic", KernelKind::Rbf, false),
    ];

    let mut table = Table::new(
        "Ablation — kernel family & anisotropy: held-out delay prediction",
        &["kernel", "rmse_s", "mean_std_s", "coverage_2sd"],
    );
    for (label, kind, anisotropic) in variants {
        // Anisotropic: context dims get a longer scale than control dims
        // (the calibrated grouped split); isotropic: one shared scale.
        let ls = if anisotropic {
            let mut v = vec![0.6; 3];
            v.extend(vec![0.35; 4]);
            v
        } else {
            vec![0.45; 7]
        };
        let mut gp = GaussianProcess::new(Kernel::new(kind, 4.0, ls), 0.02);
        for i in 0..n_train {
            gp.observe(&xs[i], (y_delay[i] - mean_y) / std_y).expect("observe");
        }
        let mut se = 0.0;
        let mut covered = 0usize;
        let mut std_acc = 0.0;
        for i in n_train..n_train + n_test {
            let (m, s) = gp.predict(&xs[i]);
            let pred = m * std_y + mean_y;
            let sd = s * std_y;
            let err = pred - y_delay[i];
            se += err * err;
            std_acc += sd;
            if err.abs() <= 2.0 * sd {
                covered += 1;
            }
        }
        table.push_row(vec![
            label.to_string(),
            f3((se / n_test as f64).sqrt()),
            f3(std_acc / n_test as f64),
            f3(covered as f64 / n_test as f64),
        ]);
    }
    table.print();
    let path = table.write_csv("ablation_kernel").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

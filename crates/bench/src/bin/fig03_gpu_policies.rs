//! Fig. 3 — service delay (top) and GPU delay (bottom) vs server power,
//! per resolution, with panels for GPU speed ∈ {10%, 45%, 100%}.
//!
//! Airtime is fixed at 100% and the GPU power-limit policy swept. The
//! paper's observations reproduced: higher GPU speed lowers both delays
//! and raises power; low-res frames are *harder per image* for the
//! detector (higher GPU delay) yet their shorter transmission dominates
//! the end-to-end service delay.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure, RESOLUTIONS};
use edgebol_bench::{f1, f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::single_user(35.0);
    let mut table = Table::new(
        "Fig. 3 — service & GPU delay vs server power per resolution and GPU speed (DES)",
        &["gpu_speed", "resolution", "server_power_w", "service_delay_s", "gpu_delay_s"],
    );
    for &gamma in &[0.1, 0.45, 1.0] {
        for &res in &RESOLUTIONS {
            let p = measure(&scenario, &control(res, 1.0, gamma, 28), reps, periods);
            table.push_row(vec![
                f3(gamma),
                f3(res),
                f1(p.server_power_w),
                f3(p.delay_s),
                f3(p.gpu_delay_s),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig03_gpu_policies").expect("write csv");
    println!("wrote {}", path.display());

    let slow = measure(&scenario, &control(1.0, 1.0, 0.1, 28), reps, periods);
    let fast = measure(&scenario, &control(1.0, 1.0, 1.0, 28), reps, periods);
    println!(
        "GPU delay ratio at 10% vs 100% speed: {:.2}x  (paper: ~2x)",
        slow.gpu_delay_s / fast.gpu_delay_s
    );
    let lowres = measure(&scenario, &control(0.25, 1.0, 1.0, 28), reps, periods);
    println!(
        "per-image GPU delay, 25% vs 100% res: {:.3}s vs {:.3}s  (paper: low-res higher)",
        lowres.gpu_delay_s, fast.gpu_delay_s
    );
    edgebol_bench::metrics_report();
}

//! Ablation — scalability knobs: sliding window and candidate subsampling.
//!
//! EdgeBOL's exact GP is O(T^2) per update and O(|candidates| T^2) per
//! selection. The long-run experiments bound both with a sliding
//! observation window and candidate subsampling (DESIGN.md §3). This
//! ablation quantifies what those approximations cost in converged
//! quality and what they buy in wall-clock time.

use edgebol_bandit::EdgeBolConfig;
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};
use std::time::Instant;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 200);
    let spec = ProblemSpec::convergence(8.0);

    let variants: [(&str, Option<usize>, Option<usize>); 4] = [
        ("full GP, 2048 candidates", None, Some(2048)),
        ("window 400, 2048 candidates", Some(400), Some(2048)),
        ("window 400, 512 candidates", Some(400), Some(512)),
        ("window 150, 512 candidates", Some(150), Some(512)),
    ];

    let mut table = Table::new(
        "Ablation — sliding window & candidate subsampling",
        &["variant", "tail_cost", "violation_rate", "wall_s"],
    );
    for (label, window, cands) in variants {
        let started = Instant::now();
        let traces = run_reps(
            reps,
            periods,
            spec,
            |seed| {
                Box::new(FlowTestbed::new(
                    Calibration::fast(),
                    Scenario::single_user(35.0),
                    0xAD0 + seed,
                ))
            },
            |seed| {
                let mut cfg = EdgeBolConfig::paper(spec.constraints());
                cfg.max_observations = window;
                cfg.candidate_subsample = cands;
                cfg.seed = 0xAA + seed;
                Box::new(EdgeBolAgent::with_config(&spec, cfg))
            },
        );
        let wall = started.elapsed().as_secs_f64();
        let tails: Vec<f64> = traces.iter().map(|t| t.tail_mean_cost(20)).collect();
        let viols: Vec<f64> = traces.iter().map(|t| 1.0 - t.satisfaction_rate(12)).collect();
        table.push_row(vec![
            label.to_string(),
            f1(edgebol_bench::median(&tails)),
            f3(edgebol_bench::median(&viols)),
            f1(wall),
        ]);
    }
    table.print();
    let path = table.write_csv("ablation_window").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

//! Fig. 12 — empirical optimality gap with multiple heterogeneous users.
//!
//! Setup as §6.4: scenarios with N users where user 1 has the best channel
//! (30 dB mean SNR) and every additional user 20% lower; δ1 = 1 and
//! δ2 ∈ {1, 2, 4, 8}. EdgeBOL's converged cost is compared to the
//! exhaustive-search oracle; the paper reports a gap within ~2% and
//! constraint satisfaction ≈ 0.98.
//!
//! The paper picks its constraints "trivially … so the system has a
//! feasible solution in the worst case (with 6 users)"; on this testbed's
//! calibration that is d_max = 3 s, ρ_min = 0.55 (six users sharing a
//! ~11 Mb/s slice need ~2.5 s per frame round-trip at the mAP-mandated
//! resolutions).

use edgebol_bandit::{Constraints, ControlGrid, Oracle};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 300);
    let user_counts = [2usize, 4, 6];
    let deltas = [1.0, 2.0, 4.0, 8.0];
    let (d_max, rho_min) = (3.0, 0.55);

    let grid = ControlGrid::paper();
    let mut table = Table::new(
        "Fig. 12 — cost vs number of users: EdgeBOL vs exhaustive oracle",
        &["users", "delta2", "edgebol_cost", "oracle_cost", "gap_pct", "satisfaction"],
    );

    for &n in &user_counts {
        let scenario = Scenario::heterogeneous(n);
        let snrs: Vec<f64> = (0..n).map(|i| scenario.snr_db(i, 0)).collect();
        // Noiseless per-control KPIs for the oracle (delta2-independent).
        let probe = FlowTestbed::new(Calibration::default(), scenario.clone(), 0);
        let mut map_cache = std::collections::HashMap::new();
        let kpis: Vec<(f64, f64, f64, f64)> = (0..grid.len())
            .map(|idx| {
                let c = grid.coords(idx);
                let control = ControlInput::from_unit(c[0], c[1], c[2], c[3]);
                let ss = probe.steady_state(&snrs, &control);
                let key = (control.resolution * 1000.0).round() as i64;
                let rho =
                    *map_cache.entry(key).or_insert_with(|| probe.expected_map(control.resolution));
                (ss.server_power_w, ss.bs_power_w, ss.worst_delay_s(), rho)
            })
            .collect();

        for &d2 in &deltas {
            let spec = ProblemSpec::new(1.0, d2, d_max, rho_min);
            let traces = run_reps(
                reps,
                periods,
                spec,
                |seed| {
                    Box::new(FlowTestbed::new(
                        Calibration::default(),
                        scenario.clone(),
                        0xC00 + seed,
                    ))
                },
                |seed| Box::new(EdgeBolAgent::paper(&spec, 0x55 + seed)),
            );
            let costs: Vec<f64> = traces.iter().map(|t| t.tail_mean_cost(20)).collect();
            let cost = edgebol_bench::median(&costs);
            let sats: Vec<f64> = traces.iter().map(|t| t.satisfaction_rate(30)).collect();
            let sat = edgebol_bench::median(&sats);

            let oracle = Oracle::search(&grid, &Constraints { d_max, rho_min }, |idx| {
                let (ps, pb, d, rho) = kpis[idx];
                (ps + d2 * pb, d, rho)
            });
            let gap = (cost - oracle.best_cost) / oracle.best_cost * 100.0;
            table.push_row(vec![
                format!("{n}"),
                format!("{d2}"),
                f3(cost),
                f3(oracle.best_cost),
                f3(gap),
                f3(sat),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig12_heterogeneous_users").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

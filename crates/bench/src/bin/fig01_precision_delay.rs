//! Fig. 1 — mAP vs service delay for different image resolutions.
//!
//! Workload: single user at 35 dB, max radio and compute resources
//! (delay-minimizing), resolution swept over 25–100%. The paper shows the
//! precision–delay trade-off: higher-res images carry more data (longer
//! transmission → larger delay) but yield higher mAP.

use edgebol_bench::env::usize_knob;
use edgebol_bench::sweep::{control, measure, RESOLUTIONS};
use edgebol_bench::{f3, Table};
use edgebol_testbed::Scenario;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 5);
    let scenario = Scenario::single_user(35.0);
    let mut table = Table::new(
        "Fig. 1 — mAP vs service delay per image resolution (DES)",
        &["resolution", "delay_s", "mAP"],
    );
    for &res in &RESOLUTIONS {
        let p = measure(&scenario, &control(res, 1.0, 1.0, 28), reps, periods);
        table.push_row(vec![f3(res), f3(p.delay_s), f3(p.map)]);
    }
    table.print();
    let path = table.write_csv("fig01_precision_delay").expect("write csv");
    println!("wrote {}", path.display());

    // The paper's headline claims for this figure, checked live:
    let lo = measure(&scenario, &control(0.25, 1.0, 1.0, 28), reps, periods);
    let hi = measure(&scenario, &control(1.0, 1.0, 1.0, 28), reps, periods);
    println!(
        "delay improvement at 25% vs 100% res: {:.0}%  (paper: up to 72%)",
        (hi.delay_s - lo.delay_s) / hi.delay_s * 100.0
    );
    println!("precision reduction: {:.0}%  (paper: 10–50%)", (hi.map - lo.map) / hi.map * 100.0);
    edgebol_bench::metrics_report();
}

//! Fig. 10 — converged power consumption and normalized cost vs δ2, for
//! three constraint settings, with the exhaustive-search oracle as the
//! dashed reference.
//!
//! Constraint settings as in §6.3: lax (0.5 s, 0.4), medium (0.4 s, 0.5),
//! stringent (0.3 s, 0.6). The oracle scans the full 11^4 grid on the
//! noiseless flow model (the "time-consuming exhaustive search" of the
//! paper). The normalized cost divides by the cost of the max-resources
//! control for the same δ2, so values are comparable across δ2.

use edgebol_bandit::{Constraints, ControlGrid, Oracle};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let deltas = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let settings = [(0.5, 0.4, "lax"), (0.4, 0.5, "medium"), (0.3, 0.6, "stringent")];

    let grid = ControlGrid::paper();
    let probe = FlowTestbed::new(Calibration::default(), Scenario::single_user(35.0), 0);
    // Cache the noiseless per-control KPIs once; costs differ per delta2
    // but powers/delay/mAP do not.
    let mut kpis: Vec<(f64, f64, f64, f64)> = Vec::with_capacity(grid.len()); // (ps, pb, d, rho)
    let mut map_cache = std::collections::HashMap::new();
    for idx in 0..grid.len() {
        let c = grid.coords(idx);
        let control = ControlInput::from_unit(c[0], c[1], c[2], c[3]);
        let ss = probe.steady_state(&[35.0], &control);
        let key = (control.resolution * 1000.0).round() as i64;
        let rho = *map_cache.entry(key).or_insert_with(|| probe.expected_map(control.resolution));
        kpis.push((ss.server_power_w, ss.bs_power_w, ss.worst_delay_s(), rho));
    }

    let mut table = Table::new(
        "Fig. 10 — converged powers & normalized cost vs delta2 (EdgeBOL vs oracle)",
        &[
            "setting",
            "delta2",
            "bs_power_w",
            "server_power_w",
            "norm_cost",
            "oracle_norm_cost",
            "gap_pct",
        ],
    );

    for (d_max, rho_min, label) in settings {
        for &d2 in &deltas {
            let spec = ProblemSpec::new(1.0, d2, d_max, rho_min);
            let traces = run_reps(
                reps,
                periods,
                spec,
                |seed| {
                    Box::new(FlowTestbed::new(
                        Calibration::fast(),
                        Scenario::single_user(35.0),
                        0xA00 + seed,
                    ))
                },
                |seed| Box::new(EdgeBolAgent::paper(&spec, 0x33 + seed)),
            );
            let tail = |f: &dyn Fn(&edgebol_core::trace::Trace) -> Vec<f64>| -> f64 {
                let v: Vec<f64> = traces
                    .iter()
                    .map(|t| {
                        let s = f(t);
                        s[s.len() - 20..].iter().sum::<f64>() / 20.0
                    })
                    .collect();
                edgebol_bench::median(&v)
            };
            let bs = tail(&|t| t.bs_powers());
            let srv = tail(&|t| t.server_powers());
            let cost = tail(&|t| t.costs());

            // Oracle on the cached noiseless grid.
            let constraints = Constraints { d_max, rho_min };
            let oracle = Oracle::search(&grid, &constraints, |idx| {
                let (ps, pb, d, rho) = kpis[idx];
                (ps + d2 * pb, d, rho)
            });
            // Normalization: the max-resources cost for this delta2.
            let (ps0, pb0, _, _) = kpis[grid.max_corner()];
            let max_cost = ps0 + d2 * pb0;
            let oracle_norm = if oracle.feasible { oracle.best_cost / max_cost } else { 1.0 };
            let gap = if oracle.feasible {
                (cost / max_cost - oracle_norm) / oracle_norm * 100.0
            } else {
                f64::NAN
            };
            table.push_row(vec![
                label.to_string(),
                format!("{d2}"),
                f3(bs),
                f3(srv),
                f3(cost / max_cost),
                f3(oracle_norm),
                f3(gap),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig10_static_power").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

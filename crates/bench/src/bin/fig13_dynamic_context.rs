//! Fig. 13 — policy evolution under fast context dynamics.
//!
//! An *untrained* EdgeBOL is dropped into an environment whose mean SNR
//! steps between 5 and 38 dB (δ1 = 1, δ2 = 8, medium constraints). The
//! paper's observations: the safe-set estimate shrinks from the full-grid
//! prior within ~25 periods and then tracks the context changes; knowledge
//! transfers across similar contexts so the controller picks sensible
//! policies even for SNR levels it has not seen.

use edgebol_bench::env::usize_knob;
use edgebol_bench::{f3, run_once, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
    let scenario = Scenario::dynamic();

    let env = FlowTestbed::new(Calibration::fast(), scenario.clone(), 0xD00);
    let agent = EdgeBolAgent::paper(&spec, 0x66);
    let trace = run_once(Box::new(env), Box::new(agent), spec, periods, true, Vec::new());

    let mut table = Table::new(
        "Fig. 13 — dynamic context: SNR, safe-set size, policies over time (delta2 = 8)",
        &[
            "t",
            "snr_db",
            "safe_set_size",
            "image_res",
            "airtime",
            "gpu_speed",
            "mcs",
            "delay_s",
            "satisfied",
        ],
    );
    for r in trace.records.iter().step_by(2) {
        let u = r.control.to_unit();
        table.push_row(vec![
            format!("{}", r.t),
            f3(scenario.snr_db(0, r.t)),
            format!("{}", r.safe_set_size.unwrap_or(0)),
            f3(u[0]),
            f3(u[1]),
            f3(u[2]),
            f3(u[3]),
            f3(r.obs.delay_s),
            format!("{}", u8::from(r.satisfied)),
        ]);
    }
    table.print();
    let path = table.write_csv("fig13_dynamic_context").expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "post-warmup satisfaction: {:.3}  (constraints are infeasible during deep fades; \
         EdgeBOL falls back to S0 there, as §5 'Practical Issues' describes)",
        trace.satisfaction_rate(25)
    );
    edgebol_bench::metrics_report();
}

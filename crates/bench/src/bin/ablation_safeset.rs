//! Ablation — what does the safe set buy?
//!
//! Compares three acquisitions sharing the same GPs on the medium
//! constraint setting: EdgeBOL's constrained LCB (eq. 9 over eq. 8), an
//! *unconstrained* LCB (no safe set), and the SafeOpt-style
//! uncertainty-maximizing rule the paper rejected for slow convergence.
//! Reported: converged cost, violation counts, convergence period.

use edgebol_bandit::{Acquisition, EdgeBolConfig};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 5);
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let spec = ProblemSpec::convergence(8.0);

    let variants = [
        ("constrained LCB (EdgeBOL)", Acquisition::ConstrainedLcb),
        ("unconstrained LCB", Acquisition::UnconstrainedLcb),
        ("max-uncertainty (SafeOpt-like)", Acquisition::MaxUncertainty),
    ];

    let mut table = Table::new(
        "Ablation — acquisition rules on the medium setting (delta2 = 8)",
        &["acquisition", "tail_cost", "violation_rate", "conv_period"],
    );
    for (label, acq) in variants {
        let traces = run_reps(
            reps,
            periods,
            spec,
            |seed| {
                Box::new(FlowTestbed::new(
                    Calibration::fast(),
                    Scenario::single_user(35.0),
                    0xAB0 + seed,
                ))
            },
            |seed| {
                let mut cfg = EdgeBolConfig::paper(spec.constraints());
                cfg.acquisition = acq;
                cfg.seed = 0x88 + seed;
                Box::new(EdgeBolAgent::with_config(&spec, cfg))
            },
        );
        let tail: Vec<f64> = traces.iter().map(|t| t.tail_mean_cost(20)).collect();
        let viol: Vec<f64> = traces.iter().map(|t| 1.0 - t.satisfaction_rate(12)).collect();
        let conv: Vec<f64> =
            traces.iter().filter_map(|t| t.convergence_period(0.10).map(|c| c as f64)).collect();
        table.push_row(vec![
            label.to_string(),
            f1(edgebol_bench::median(&tail)),
            f3(edgebol_bench::median(&viol)),
            f1(edgebol_bench::median(&conv)),
        ]);
    }
    table.print();
    let path = table.write_csv("ablation_safeset").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

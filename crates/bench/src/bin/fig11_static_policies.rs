//! Fig. 11 — converged control policies vs δ2 for the three constraint
//! settings.
//!
//! The paper's reading: with lax constraints and small δ2, EdgeBOL throttles
//! the *server* (low GPU speed) and compensates with resources elsewhere;
//! as δ2 grows it throttles the *radio* instead. Under stringent
//! constraints the feasible space shrinks and the policies stay pinned
//! near max resources regardless of δ2.

use edgebol_bench::env::usize_knob;
use edgebol_bench::{f3, run_reps, Table};
use edgebol_core::agent::EdgeBolAgent;
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 3);
    let periods = usize_knob("EDGEBOL_PERIODS", 150);
    let deltas = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let settings = [(0.5, 0.4, "lax"), (0.4, 0.5, "medium"), (0.3, 0.6, "stringent")];

    let mut table = Table::new(
        "Fig. 11 — converged mean policies (unit coordinates) vs delta2",
        &["setting", "delta2", "mean_image_res", "mean_airtime", "mean_gpu_speed", "mean_mcs"],
    );

    for (d_max, rho_min, label) in settings {
        for &d2 in &deltas {
            let spec = ProblemSpec::new(1.0, d2, d_max, rho_min);
            let traces = run_reps(
                reps,
                periods,
                spec,
                |seed| {
                    Box::new(FlowTestbed::new(
                        Calibration::fast(),
                        Scenario::single_user(35.0),
                        0xB00 + seed,
                    ))
                },
                |seed| Box::new(EdgeBolAgent::paper(&spec, 0x44 + seed)),
            );
            // Median (over reps) of the per-run mean tail control.
            let mut dims = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            for t in &traces {
                let u = t.tail_mean_control(20);
                for (d, v) in dims.iter_mut().zip(u) {
                    d.push(v);
                }
            }
            table.push_row(vec![
                label.to_string(),
                format!("{d2}"),
                f3(edgebol_bench::median(&dims[0])),
                f3(edgebol_bench::median(&dims[1])),
                f3(edgebol_bench::median(&dims[2])),
                f3(edgebol_bench::median(&dims[3])),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig11_static_policies").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

//! Fig. 14 — EdgeBOL vs a DDPG benchmark under runtime constraint
//! changes.
//!
//! The §6.5 scenario: (i) d_max = 0.5, ρ_min = 0.4 until t = 1000;
//! (ii) d_max = 0.4, ρ_min = 0.6 until t = 2000; (iii) d_max = 0.5,
//! ρ_min = 0.5 afterwards; δ1 = 1, δ2 = 8. The paper's claim this bench
//! verifies: the non-parametric EdgeBOL re-derives a safe set for the new
//! constraints almost instantaneously, while the parametric DDPG must
//! re-learn its penalized cost surface and keeps violating long after
//! each change.
//!
//! EdgeBOL runs with its long-horizon knobs (sliding window, candidate
//! subsampling) — see `EdgeBolConfig` docs.

use edgebol_bandit::EdgeBolConfig;
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, parallel_map, run_once, Table};
use edgebol_core::agent::{Agent, DdpgAgent, EdgeBolAgent};
use edgebol_core::problem::ProblemSpec;
use edgebol_core::trace::Trace;
use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

fn main() {
    let periods = usize_knob("EDGEBOL_PERIODS", 3000);
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let schedule = vec![(periods / 3, 0.4, 0.6), (2 * periods / 3, 0.5, 0.5)];

    let run = |agent: Box<dyn Agent>, seed: u64| -> Trace {
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), seed);
        run_once(Box::new(env), agent, spec, periods, false, schedule.clone())
    };

    // The two agents are independent 3000-period runs: race them on the
    // shared pool instead of back to back.
    let mut traces = parallel_map(2, |which| {
        let agent: Box<dyn Agent> = if which == 0 {
            let mut eb_cfg = EdgeBolConfig::paper(spec.constraints());
            eb_cfg.max_observations = Some(400);
            eb_cfg.candidate_subsample = Some(512);
            eb_cfg.seed = 0x77;
            Box::new(EdgeBolAgent::with_config(&spec, eb_cfg))
        } else {
            Box::new(DdpgAgent::new(&spec, 0x78))
        };
        run(agent, 0xE01)
    })
    .into_iter();
    let (edgebol, ddpg) =
        (traces.next().expect("EdgeBOL trace"), traces.next().expect("DDPG trace"));

    // Per-segment summary: violation rates and mean cost, skipping the
    // first 50 periods of each segment boundary for the "steady" columns.
    let seg_bounds = [0, periods / 3, 2 * periods / 3, periods];
    let mut table = Table::new(
        "Fig. 14 — EdgeBOL vs DDPG across constraint changes (delta2 = 8)",
        &[
            "segment",
            "constraints",
            "agent",
            "mean_cost",
            "delay_viol_rate",
            "map_viol_rate",
            "viol_after_50",
        ],
    );
    let labels = ["d<=0.5,rho>=0.4", "d<=0.4,rho>=0.6", "d<=0.5,rho>=0.5"];
    let limits = [(0.5, 0.4), (0.4, 0.6), (0.5, 0.5)];
    for (name, trace) in [("EdgeBOL", &edgebol), ("DDPG", &ddpg)] {
        for seg in 0..3 {
            let (lo, hi) = (seg_bounds[seg], seg_bounds[seg + 1]);
            let recs = &trace.records[lo..hi];
            let (d_max, rho_min) = limits[seg];
            let n = recs.len() as f64;
            let mean_cost = recs.iter().map(|r| r.cost).sum::<f64>() / n;
            let dv = recs.iter().filter(|r| r.obs.delay_s > d_max).count() as f64 / n;
            let mv = recs.iter().filter(|r| r.obs.map < rho_min).count() as f64 / n;
            let settled = &recs[(50).min(recs.len())..];
            let sv = settled.iter().filter(|r| !r.satisfied).count() as f64
                / settled.len().max(1) as f64;
            table.push_row(vec![
                format!("{}", seg + 1),
                labels[seg].to_string(),
                name.to_string(),
                f1(mean_cost),
                f3(dv),
                f3(mv),
                f3(sv),
            ]);
        }
    }
    table.print();
    table.write_csv("fig14_vs_ddpg_summary").expect("write csv");

    // Downsampled series for plotting.
    let mut series = Table::new(
        "Fig. 14 — series (downsampled)",
        &["t", "eb_cost", "eb_delay", "eb_map", "ddpg_cost", "ddpg_delay", "ddpg_map"],
    );
    for t in (0..periods).step_by((periods / 150).max(1)) {
        let e = &edgebol.records[t];
        let d = &ddpg.records[t];
        series.push_row(vec![
            format!("{t}"),
            f1(e.cost),
            f3(e.obs.delay_s),
            f3(e.obs.map),
            f1(d.cost),
            f3(d.obs.delay_s),
            f3(d.obs.map),
        ]);
    }
    let path = series.write_csv("fig14_vs_ddpg_series").expect("write csv");
    println!("wrote {}", path.display());
    edgebol_bench::metrics_report();
}

//! Ablation — aggregated vs per-user context (the §4.4 design choice).
//!
//! EdgeBOL aggregates user channel state into `[n, mean CQI, var CQI]`
//! rather than feeding each user's CQI, trading a little optimality for a
//! fixed, small context dimension. This ablation runs the bandit layer
//! directly on a 3-user scenario twice — once with the aggregated 3-dim
//! context and once with a 7-dim per-user context `[n, cqi_1..cqi_3, …]`
//! padded per §4.4 — and compares convergence and converged cost.

use edgebol_bandit::{Constraints, ControlGrid, EdgeBol, EdgeBolConfig, Feedback, GridAgent};
use edgebol_bench::env::usize_knob;
use edgebol_bench::{f1, f3, Table};
use edgebol_linalg::stats::normal;
use edgebol_ran::cqi_from_snr;
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let reps = usize_knob("EDGEBOL_REPS", 5);
    let periods = usize_knob("EDGEBOL_PERIODS", 200);
    let n_users = 3usize;
    let constraints = Constraints { d_max: 3.0, rho_min: 0.55 };
    let delta2 = 4.0;

    let scenario = Scenario::heterogeneous(n_users);
    let snrs: Vec<f64> = (0..n_users).map(|i| scenario.snr_db(i, 0)).collect();

    let mut table = Table::new(
        "Ablation — aggregated vs per-user context (3 heterogeneous users)",
        &["context", "dims", "tail_cost", "violation_rate", "conv_period"],
    );

    for (label, per_user) in [("aggregated [n, mean, var]", false), ("per-user CQIs", true)] {
        let ctx_dims = if per_user { 1 + n_users } else { 3 };
        // Repetitions are independent: run them on the shared pool, each
        // with its own steady-state probe and noise stream.
        let reps_out = edgebol_bench::parallel_map(reps, |rep| {
            let rep = rep as u64;
            let probe = FlowTestbed::new(Calibration::default(), scenario.clone(), 0);
            let mut rng = SmallRng::seed_from_u64(0xCC0 + rep);
            let mut cfg = EdgeBolConfig::paper(constraints);
            cfg.context_dims = ctx_dims;
            cfg.seed = 0x99 + rep;
            let mut agent = EdgeBol::with_grid(cfg, ControlGrid::paper());
            let grid = ControlGrid::paper();
            let mut costs = Vec::new();
            let mut violations = 0usize;
            for _t in 0..periods {
                // Noisy per-user CQI reports, as the testbed would emit.
                let cqis: Vec<f64> = snrs
                    .iter()
                    .map(|&s| cqi_from_snr(s + normal(&mut rng, 0.0, 1.2)) as f64)
                    .collect();
                let ctx: Vec<f64> = if per_user {
                    let mut v = vec![n_users as f64 / 8.0];
                    v.extend(cqis.iter().map(|c| (c - 1.0) / 14.0));
                    v
                } else {
                    let mean = edgebol_linalg::vecops::mean(&cqis);
                    let var = edgebol_linalg::vecops::variance(&cqis);
                    vec![n_users as f64 / 8.0, (mean - 1.0) / 14.0, (var / 16.0).min(1.0)]
                };
                let idx = agent.select(&ctx);
                let c = grid.coords(idx);
                let control = ControlInput::from_unit(c[0], c[1], c[2], c[3]);
                let ss = probe.steady_state(&snrs, &control);
                let rho = probe.expected_map(control.resolution) + normal(&mut rng, 0.0, 0.02);
                let delay = ss.worst_delay_s() * (1.0 + normal(&mut rng, 0.0, 0.03));
                let cost = ss.server_power_w + delta2 * ss.bs_power_w;
                if !(delay <= constraints.d_max && rho >= constraints.rho_min) {
                    violations += 1;
                }
                costs.push(cost);
                agent.update(&ctx, idx, &Feedback { cost, delay_s: delay, map: rho });
            }
            let tail = costs[periods - 20..].iter().sum::<f64>() / 20.0;
            // Convergence: last time cost left a 10% band around the tail.
            let mut conv = 0;
            for (i, &c) in costs.iter().enumerate() {
                if (c - tail).abs() > tail * 0.10 {
                    conv = i + 1;
                }
            }
            (tail, violations as f64 / periods as f64, conv as f64)
        });
        let mut tails = Vec::new();
        let mut viols = Vec::new();
        let mut convs = Vec::new();
        for (tail, viol, conv) in reps_out {
            tails.push(tail);
            viols.push(viol);
            convs.push(conv);
        }
        table.push_row(vec![
            label.to_string(),
            format!("{ctx_dims}"),
            f1(edgebol_bench::median(&tails)),
            f3(edgebol_bench::median(&viols)),
            f1(edgebol_bench::median(&convs)),
        ]);
    }
    table.print();
    let path = table.write_csv("ablation_context").expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "expected: comparable converged cost (validating §4.4's aggregation), with the\n\
         per-user variant no better despite the larger context"
    );
    edgebol_bench::metrics_report();
}

//! Shared DES sweep machinery for the measurement figures (Figs. 1–6).

use edgebol_ran::Mcs;
use edgebol_testbed::{
    Calibration, ControlInput, DesTestbed, Environment, PeriodObservation, Scenario,
};

/// The resolutions the paper's §3 figures sweep (25–100%).
pub const RESOLUTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Measurement summary for one configuration point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    pub delay_s: f64,
    pub gpu_delay_s: f64,
    pub map: f64,
    pub server_power_w: f64,
    pub bs_power_w: f64,
}

/// Runs the DES for `reps` independent repetitions of `periods` periods
/// each (discarding the first warm-up period of each repetition, as the
/// pipeline starts empty) and returns the per-KPI medians.
pub fn measure(scenario: &Scenario, control: &ControlInput, reps: usize, periods: usize) -> Point {
    let mut delays = Vec::new();
    let mut gpu_delays = Vec::new();
    let mut maps = Vec::new();
    let mut server = Vec::new();
    let mut bs = Vec::new();
    for rep in 0..reps as u64 {
        let mut des = DesTestbed::new(Calibration::default(), scenario.clone(), 1000 + rep);
        for p in 0..periods {
            let obs: PeriodObservation = des.step(control);
            if p == 0 {
                continue; // pipeline fill
            }
            delays.push(obs.delay_s);
            gpu_delays.push(obs.gpu_delay_s);
            maps.push(obs.map);
            server.push(obs.server_power_w);
            bs.push(obs.bs_power_w);
        }
    }
    let med = |v: &[f64]| edgebol_linalg::stats::percentile(v, 0.5);
    Point {
        delay_s: med(&delays),
        gpu_delay_s: med(&gpu_delays),
        map: med(&maps),
        server_power_w: med(&server),
        bs_power_w: med(&bs),
    }
}

/// A control with everything maxed except the given overrides.
pub fn control(resolution: f64, airtime: f64, gpu_speed: f64, mcs_cap: u8) -> ControlInput {
    ControlInput { resolution, airtime, gpu_speed, mcs_cap: Mcs(mcs_cap) }
}

//! One bench per paper figure: reduced-size versions of the regenerators
//! in `src/bin/` (those produce the full series; these keep the same code
//! paths under `cargo bench` so regressions in any experiment's pipeline
//! are caught). DESIGN.md §4 maps figures to both targets.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebol_bandit::{Constraints, ControlGrid, EdgeBolConfig, Oracle};
use edgebol_bench::run_once;
use edgebol_bench::sweep::{control, measure};
use edgebol_core::agent::{DdpgAgent, EdgeBolAgent};
use edgebol_core::problem::ProblemSpec;
use edgebol_testbed::{Calibration, ControlInput, FlowTestbed, Scenario};
use std::hint::black_box;

/// Figs. 1–4: one DES measurement point each (res/airtime/GPU sweeps share
/// this path).
fn bench_measurement_figures(c: &mut Criterion) {
    let single = Scenario::single_user(35.0);
    c.bench_function("fig01_04_des_point", |b| {
        b.iter(|| measure(black_box(&single), &control(0.5, 1.0, 1.0, 28), 1, 2))
    });
    c.bench_function("fig02_des_point_low_airtime", |b| {
        b.iter(|| measure(black_box(&single), &control(1.0, 0.2, 1.0, 28), 1, 2))
    });
    c.bench_function("fig03_des_point_slow_gpu", |b| {
        b.iter(|| measure(black_box(&single), &control(0.5, 1.0, 0.1, 28), 1, 2))
    });
    let tenx = Scenario::tenx_load(35.0);
    c.bench_function("fig05_06_des_point_10x", |b| {
        b.iter(|| measure(black_box(&tenx), &control(1.0, 1.0, 1.0, 16), 1, 2))
    });
}

fn quick_agent(spec: &ProblemSpec, seed: u64) -> EdgeBolAgent {
    let mut cfg = EdgeBolConfig::paper(spec.constraints());
    cfg.fit_hyperparams = false;
    cfg.candidate_subsample = Some(512);
    cfg.seed = seed;
    EdgeBolAgent::with_config(spec, cfg)
}

/// Fig. 9: a 30-period convergence run.
fn bench_fig09(c: &mut Criterion) {
    let spec = ProblemSpec::convergence(8.0);
    c.bench_function("fig09_convergence_30_periods", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 1);
            run_once(Box::new(env), Box::new(quick_agent(&spec, 2)), spec, 30, false, Vec::new())
        })
    });
}

/// Figs. 10/12: the exhaustive-search oracle over the full 11^4 grid.
fn bench_oracle(c: &mut Criterion) {
    let grid = ControlGrid::paper();
    let probe = FlowTestbed::new(Calibration::default(), Scenario::single_user(35.0), 0);
    c.bench_function("fig10_12_oracle_full_grid", |b| {
        b.iter(|| {
            Oracle::search(&grid, &Constraints { d_max: 0.4, rho_min: 0.5 }, |idx| {
                let cu = grid.coords(idx);
                let ctl = ControlInput::from_unit(cu[0], cu[1], cu[2], cu[3]);
                let ss = probe.steady_state(black_box(&[35.0]), &ctl);
                // The oracle bench exercises the KPI sweep; the mAP term is
                // resolution-cached in the real regenerator.
                (ss.server_power_w + 8.0 * ss.bs_power_w, ss.worst_delay_s(), 0.6)
            })
        })
    });
}

/// Fig. 11: converged-policy extraction (runs the same loop as fig09 and
/// summarizes the tail control).
fn bench_fig11(c: &mut Criterion) {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    c.bench_function("fig11_policy_summary_30_periods", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 3);
            let t = run_once(
                Box::new(env),
                Box::new(quick_agent(&spec, 4)),
                spec,
                30,
                false,
                Vec::new(),
            );
            t.tail_mean_control(10)
        })
    });
}

/// Fig. 12: a 30-period multi-user learning run.
fn bench_fig12(c: &mut Criterion) {
    let spec = ProblemSpec::new(1.0, 4.0, 3.0, 0.55);
    c.bench_function("fig12_heterogeneous_30_periods", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::heterogeneous(4), 5);
            run_once(Box::new(env), Box::new(quick_agent(&spec, 6)), spec, 30, false, Vec::new())
        })
    });
}

/// Fig. 13: dynamic context with safe-set logging.
fn bench_fig13(c: &mut Criterion) {
    let spec = ProblemSpec::new(1.0, 8.0, 0.4, 0.5);
    c.bench_function("fig13_dynamic_30_periods_safeset", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::dynamic(), 7);
            run_once(Box::new(env), Box::new(quick_agent(&spec, 8)), spec, 30, true, Vec::new())
        })
    });
}

/// Fig. 14: EdgeBOL vs DDPG with one constraint change.
fn bench_fig14(c: &mut Criterion) {
    let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
    let schedule = vec![(30usize, 0.4, 0.6)];
    c.bench_function("fig14_edgebol_60_periods_1_change", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 9);
            run_once(
                Box::new(env),
                Box::new(quick_agent(&spec, 10)),
                spec,
                60,
                false,
                schedule.clone(),
            )
        })
    });
    c.bench_function("fig14_ddpg_60_periods_1_change", |b| {
        b.iter(|| {
            let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 9);
            run_once(
                Box::new(env),
                Box::new(DdpgAgent::new(&spec, 11)),
                spec,
                60,
                false,
                schedule.clone(),
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_measurement_figures, bench_fig09, bench_oracle, bench_fig11,
        bench_fig12, bench_fig13, bench_fig14
}
criterion_main!(benches);

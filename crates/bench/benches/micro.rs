//! Microbenchmarks of the substrates on EdgeBOL's hot paths.
//!
//! These are the inner loops the per-period budget depends on: Cholesky
//! factorization and incremental appends, batched GP posteriors, the mAP
//! evaluator, both testbed fidelities, the E2 codec and one DDPG training
//! step.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebol_bandit::{Constraints, Ddpg, DdpgConfig};
use edgebol_gp::{EvictStrategy, GaussianProcess, Kernel};
use edgebol_linalg::{Cholesky, Mat};
use edgebol_media::{Dataset, DetectorModel};
use edgebol_oran::{E2Codec, E2Message, KpiReport};
use edgebol_testbed::{Calibration, ControlInput, DesTestbed, FlowTestbed, Scenario};
use std::hint::black_box;

fn spd(n: usize) -> Mat {
    let mut a = Mat::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64).abs();
        (-d / 8.0).exp()
    });
    a.add_diagonal(0.1);
    a
}

fn bench_linalg(c: &mut Criterion) {
    let a = spd(150);
    c.bench_function("cholesky_factor_150", |b| {
        b.iter(|| Cholesky::factor(black_box(&a)).unwrap())
    });

    let base = Cholesky::factor(&spd(150)).unwrap();
    let cross: Vec<f64> = (0..150).map(|i| (-(i as f64) / 8.0).exp()).collect();
    c.bench_function("cholesky_append_row_150", |b| {
        b.iter_with_setup(|| base.clone(), |mut ch| ch.append(black_box(&cross), 1.2).unwrap())
    });

    let big = Cholesky::factor(&spd(200)).unwrap();
    c.bench_function("cholesky_delete_row_200", |b| {
        b.iter(|| black_box(&big).delete_row(0).unwrap())
    });

    let l = big.factor_l();
    let rhs = Mat::from_fn(200, 64, |i, j| ((i * 3 + j) % 17) as f64 * 0.1 - 0.8);
    c.bench_function("solve_lower_mat_200x64", |b| {
        b.iter(|| edgebol_linalg::solve_lower_mat(black_box(l), black_box(&rhs)))
    });
}

fn trained_gp(n: usize) -> GaussianProcess {
    fill_gp(GaussianProcess::new(Kernel::matern32(4.0, vec![0.4; 7]), 0.02), n)
}

/// A GP whose sliding window is exactly full: the next `observe` pays the
/// evict path for the given strategy, then the bordered append.
fn trained_gp_at_cap(cap: usize, strategy: EvictStrategy) -> GaussianProcess {
    fill_gp(
        GaussianProcess::new(Kernel::matern32(4.0, vec![0.4; 7]), 0.02)
            .with_max_observations(cap)
            .with_evict_strategy(strategy),
        cap,
    )
}

fn fill_gp(mut gp: GaussianProcess, n: usize) -> GaussianProcess {
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let z: Vec<f64> = (0..7).map(|_| next()).collect();
        let y = z.iter().sum::<f64>();
        gp.observe(&z, y).unwrap();
    }
    gp
}

fn bench_gp(c: &mut Criterion) {
    let mut gp = trained_gp(200);
    let queries: Vec<f64> = (0..1000 * 7).map(|i| (i % 97) as f64 / 97.0).collect();
    c.bench_function("gp_predict_batch_T200_M1000", |b| {
        b.iter(|| gp.predict_batch(black_box(&queries)))
    });
    c.bench_function("gp_observe_T200", |b| {
        b.iter_with_setup(
            || trained_gp(200),
            |mut gp| gp.observe(black_box(&[0.5; 7]), 1.0).unwrap(),
        )
    });
    // The steady-state cost once the sliding window is full, on the
    // default O(T²) delete-row downdate: evict + bordered append, the
    // per-period GP budget of a long-running deployment.
    c.bench_function("gp_evict_downdate_T200", |b| {
        b.iter_with_setup(
            || trained_gp_at_cap(200, EvictStrategy::Downdate),
            |mut gp| gp.observe(black_box(&[0.5; 7]), 1.0).unwrap(),
        )
    });
    // The pre-downdate behaviour, pinned to the rebuild strategy: every
    // observe first evicts the oldest point (O(T²) kernel rebuild +
    // O(T³/3) full re-factorization) and only then pays the O(T²)
    // bordered append. Kept as the baseline the perf gate (`perf_gate`
    // bin) measures the downdate's speedup against.
    c.bench_function("gp_observe_evict_refactor_T200", |b| {
        b.iter_with_setup(
            || trained_gp_at_cap(200, EvictStrategy::Rebuild),
            |mut gp| gp.observe(black_box(&[0.5; 7]), 1.0).unwrap(),
        )
    });
}

fn bench_media(c: &mut Criterion) {
    let ds = Dataset::generate(150, 7);
    let det = DetectorModel::default();
    c.bench_function("map_evaluate_150_scenes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ds.evaluate_map(black_box(&det), 0.6, seed)
        })
    });
}

fn bench_testbed(c: &mut Criterion) {
    let flow = FlowTestbed::new(Calibration::default(), Scenario::heterogeneous(4), 1);
    let control = ControlInput::max_resources();
    c.bench_function("flow_steady_state_4_users", |b| {
        b.iter(|| flow.steady_state(black_box(&[30.0, 24.0, 19.2, 15.36]), &control))
    });

    c.bench_function("des_period_single_user_4s", |b| {
        b.iter_with_setup(
            || DesTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 3),
            |mut des| des.run_period_raw(black_box(&control)),
        )
    });
}

fn bench_oran(c: &mut Criterion) {
    let msg = E2Message::Indication(KpiReport {
        t_ms: 123,
        bs_power_mw: 5_600,
        duty_milli: 451,
        mean_mcs_centi: 2_677,
    });
    c.bench_function("e2_codec_roundtrip", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::new();
            E2Codec::encode(black_box(&msg), &mut buf);
            E2Codec::decode(&mut buf).unwrap().unwrap()
        })
    });
}

fn bench_nn(c: &mut Criterion) {
    c.bench_function("ddpg_update_batch64", |b| {
        b.iter_with_setup(
            || {
                let mut agent = Ddpg::new(
                    DdpgConfig { updates_per_step: 1, ..Default::default() },
                    Constraints { d_max: 0.4, rho_min: 0.5 },
                );
                // Fill the replay buffer past one batch.
                for i in 0..80 {
                    let ctx = [i as f64 / 80.0, 0.5, 0.2];
                    let a = agent.select_action(&ctx);
                    agent.update(
                        &ctx,
                        &a,
                        &edgebol_bandit::Feedback { cost: 100.0, delay_s: 0.3, map: 0.6 },
                    );
                }
                agent
            },
            |mut agent| {
                let ctx = [0.3, 0.5, 0.2];
                let a = agent.select_action(&ctx);
                agent.update(
                    &ctx,
                    &a,
                    &edgebol_bandit::Feedback { cost: 100.0, delay_s: 0.3, map: 0.6 },
                );
            },
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_linalg, bench_gp, bench_media, bench_testbed, bench_oran, bench_nn
}
criterion_main!(benches);

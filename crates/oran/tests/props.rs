//! Property-based tests of the O-RAN wire formats.

use bytes::{BufMut, BytesMut};
use edgebol_oran::{A1Message, E2Codec, E2Message, KpiReport, PolicyId, PolicyStatus, RadioPolicy};
use proptest::prelude::*;

fn arb_e2() -> impl Strategy<Value = E2Message> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(f, p)| E2Message::SubscriptionRequest {
            ran_function: f,
            report_period_ms: p,
        }),
        any::<u16>().prop_map(|f| E2Message::SubscriptionResponse { ran_function: f }),
        (any::<u64>(), any::<u64>(), any::<u16>(), any::<u16>()).prop_map(|(t, p, d, m)| {
            E2Message::Indication(KpiReport {
                t_ms: t,
                bs_power_mw: p,
                duty_milli: d,
                mean_mcs_centi: m,
            })
        }),
        (any::<u16>(), any::<u8>())
            .prop_map(|(a, m)| E2Message::ControlRequest { airtime_milli: a, max_mcs: m }),
        Just(E2Message::ControlAck),
    ]
}

proptest! {
    /// Every E2 message round-trips through the codec and leaves no
    /// residue.
    #[test]
    fn e2_roundtrip(msg in arb_e2()) {
        let mut buf = BytesMut::new();
        E2Codec::encode(&msg, &mut buf);
        let got = E2Codec::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(got, msg);
        prop_assert!(buf.is_empty());
    }

    /// Concatenated frames decode in order regardless of count.
    #[test]
    fn e2_stream_of_frames(msgs in proptest::collection::vec(arb_e2(), 1..20)) {
        let mut buf = BytesMut::new();
        for m in &msgs {
            E2Codec::encode(m, &mut buf);
        }
        let mut got = Vec::new();
        while let Some(m) = E2Codec::decode(&mut buf).unwrap() {
            got.push(m);
        }
        prop_assert_eq!(got, msgs);
    }

    /// The incremental decoder never yields a message from a truncated
    /// prefix of a valid frame, and never errors on it either.
    #[test]
    fn e2_prefix_safety(msg in arb_e2(), cut_frac in 0.0f64..1.0) {
        let mut full = BytesMut::new();
        E2Codec::encode(&msg, &mut full);
        let cut = ((full.len() as f64 * cut_frac) as usize).min(full.len() - 1);
        let mut partial = BytesMut::new();
        partial.extend_from_slice(&full[..cut]);
        let r = E2Codec::decode(&mut partial).unwrap();
        prop_assert!(r.is_none(), "decoded from a truncated frame");
    }

    /// Garbage after a valid length header errors rather than misparses.
    #[test]
    fn e2_rejects_unknown_tags(tag in 6u8..=255, body in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut buf = BytesMut::new();
        buf.put_u32(1 + body.len() as u32);
        buf.put_u8(tag);
        buf.extend_from_slice(&body);
        prop_assert!(E2Codec::decode(&mut buf).is_err());
    }

    /// A1 messages survive the JSON round-trip, including odd policy ids.
    #[test]
    fn a1_roundtrip(
        id in "[a-zA-Z0-9_.:-]{1,32}",
        airtime in 0.001f64..=1.0,
        mcs in 0u8..=28,
        t_ms in any::<u64>(),
        mw in any::<u64>(),
    ) {
        let msgs = vec![
            A1Message::PutPolicy {
                policy_id: PolicyId(id.clone()),
                policy_type: edgebol_oran::A1_POLICY_TYPE_RADIO,
                policy: RadioPolicy { airtime, max_mcs: mcs },
            },
            A1Message::DeletePolicy { policy_id: PolicyId(id.clone()) },
            A1Message::Feedback {
                policy_id: PolicyId(id),
                status: PolicyStatus::Enforced,
            },
            A1Message::KpiSample { t_ms, bs_power_mw: mw },
        ];
        for m in msgs {
            let j = m.to_json();
            prop_assert_eq!(A1Message::from_json(&j).unwrap(), m);
        }
    }

    /// Policy validation accepts exactly the schema range.
    #[test]
    fn policy_validation_range(airtime in -1.0f64..2.0, mcs in 0u8..=60) {
        let p = RadioPolicy { airtime, max_mcs: mcs };
        let valid = airtime > 0.0 && airtime <= 1.0 && mcs <= 28;
        prop_assert_eq!(p.is_valid(), valid);
    }
}

//! E2AP-style binary codec: tagged, length-delimited frames.
//!
//! E2 carries the near-RT RIC ⇄ O-eNB traffic: subscriptions, KPI
//! indications and control requests. Real E2AP is ASN.1; we keep the
//! protocol shape (message classes, RAN-function ids, subscription →
//! indication flow) over a compact hand-rolled binary encoding built on
//! [`bytes`], with incremental length-delimited framing — the canonical
//! pattern for stream transports.
//!
//! Frame layout: `u32 big-endian payload length | u8 tag | payload`.

use crate::OranError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// RAN function id for the KPI-monitoring service model.
pub const RAN_FUNC_KPI: u16 = 2;
/// RAN function id for the radio-control service model.
pub const RAN_FUNC_CONTROL: u16 = 3;

/// A vBS KPI sample carried in an E2 indication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KpiReport {
    /// Milliseconds since experiment start.
    pub t_ms: u64,
    /// BS (BBU) power in milliwatts.
    pub bs_power_mw: u64,
    /// Realized slice duty cycle in 1/1000 units.
    pub duty_milli: u16,
    /// Mean MCS in use, times 100.
    pub mean_mcs_centi: u16,
}

/// E2 messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum E2Message {
    /// RIC → node: subscribe to periodic KPI indications.
    SubscriptionRequest { ran_function: u16, report_period_ms: u32 },
    /// Node → RIC: subscription accepted.
    SubscriptionResponse { ran_function: u16 },
    /// Node → RIC: periodic KPI indication.
    Indication(KpiReport),
    /// RIC → node: enforce radio policies (airtime in 1/1000, MCS cap).
    ControlRequest { airtime_milli: u16, max_mcs: u8 },
    /// Node → RIC: control acknowledged.
    ControlAck,
}

/// Message tags on the wire (crate-visible so the chaos layer can
/// classify frames it is about to fault without consuming them).
pub(crate) mod tag {
    pub const SUB_REQ: u8 = 1;
    pub const SUB_RESP: u8 = 2;
    pub const INDICATION: u8 = 3;
    pub const CONTROL_REQ: u8 = 4;
    pub const CONTROL_ACK: u8 = 5;
}

/// Stateless encoder/decoder with incremental framing.
#[derive(Debug, Default, Clone)]
pub struct E2Codec;

impl E2Codec {
    /// Encodes one message, appending a complete frame to `dst`.
    pub fn encode(msg: &E2Message, dst: &mut BytesMut) {
        let mut body = BytesMut::with_capacity(32);
        match msg {
            E2Message::SubscriptionRequest { ran_function, report_period_ms } => {
                body.put_u8(tag::SUB_REQ);
                body.put_u16(*ran_function);
                body.put_u32(*report_period_ms);
            }
            E2Message::SubscriptionResponse { ran_function } => {
                body.put_u8(tag::SUB_RESP);
                body.put_u16(*ran_function);
            }
            E2Message::Indication(k) => {
                body.put_u8(tag::INDICATION);
                body.put_u64(k.t_ms);
                body.put_u64(k.bs_power_mw);
                body.put_u16(k.duty_milli);
                body.put_u16(k.mean_mcs_centi);
            }
            E2Message::ControlRequest { airtime_milli, max_mcs } => {
                body.put_u8(tag::CONTROL_REQ);
                body.put_u16(*airtime_milli);
                body.put_u8(*max_mcs);
            }
            E2Message::ControlAck => {
                body.put_u8(tag::CONTROL_ACK);
            }
        }
        dst.put_u32(body.len() as u32);
        dst.extend_from_slice(&body);
    }

    /// Encodes to a standalone buffer.
    pub fn encode_to_bytes(msg: &E2Message) -> Bytes {
        let mut b = BytesMut::new();
        Self::encode(msg, &mut b);
        b.freeze()
    }

    /// Peeks the message tag of a standalone frame (as produced by
    /// [`E2Codec::encode_to_bytes`]) without consuming it. `None` when
    /// the buffer is too short to carry a tag. Used by the chaos layer to
    /// classify frames it is about to drop, delay or corrupt.
    pub fn peek_tag(frame: &[u8]) -> Option<u8> {
        frame.get(4).copied()
    }

    /// Attempts to decode one complete frame from `src`.
    ///
    /// Returns `Ok(None)` when more bytes are needed (the incremental
    /// contract: partial frames stay buffered).
    ///
    /// # Errors
    /// [`OranError::Framing`] when the declared length exceeds
    /// [`crate::transport::MAX_FRAME_LEN`] (such a frame could never
    /// complete — no real E2 message comes close); [`OranError::Codec`]
    /// on unknown tags or truncated payloads whose declared length is
    /// complete (a corrupt peer).
    pub fn decode(src: &mut BytesMut) -> Result<Option<E2Message>, OranError> {
        if src.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([src[0], src[1], src[2], src[3]]) as usize;
        if len > crate::transport::MAX_FRAME_LEN {
            return Err(OranError::Framing(format!(
                "declared E2 frame length {len} exceeds the {}-byte cap",
                crate::transport::MAX_FRAME_LEN
            )));
        }
        if src.len() < 4 + len {
            return Ok(None);
        }
        src.advance(4);
        let mut body = src.split_to(len);
        let need = |body: &BytesMut, n: usize| -> Result<(), OranError> {
            if body.len() < n {
                Err(OranError::Codec(format!("truncated body: need {n}, have {}", body.len())))
            } else {
                Ok(())
            }
        };
        need(&body, 1)?;
        let t = body.get_u8();
        let msg = match t {
            tag::SUB_REQ => {
                need(&body, 6)?;
                E2Message::SubscriptionRequest {
                    ran_function: body.get_u16(),
                    report_period_ms: body.get_u32(),
                }
            }
            tag::SUB_RESP => {
                need(&body, 2)?;
                E2Message::SubscriptionResponse { ran_function: body.get_u16() }
            }
            tag::INDICATION => {
                need(&body, 20)?;
                E2Message::Indication(KpiReport {
                    t_ms: body.get_u64(),
                    bs_power_mw: body.get_u64(),
                    duty_milli: body.get_u16(),
                    mean_mcs_centi: body.get_u16(),
                })
            }
            tag::CONTROL_REQ => {
                need(&body, 3)?;
                E2Message::ControlRequest { airtime_milli: body.get_u16(), max_mcs: body.get_u8() }
            }
            tag::CONTROL_ACK => E2Message::ControlAck,
            other => return Err(OranError::Codec(format!("unknown tag {other}"))),
        };
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<E2Message> {
        vec![
            E2Message::SubscriptionRequest { ran_function: RAN_FUNC_KPI, report_period_ms: 1000 },
            E2Message::SubscriptionResponse { ran_function: RAN_FUNC_KPI },
            E2Message::Indication(KpiReport {
                t_ms: 123_456,
                bs_power_mw: 5_250,
                duty_milli: 350,
                mean_mcs_centi: 2_150,
            }),
            E2Message::ControlRequest { airtime_milli: 500, max_mcs: 17 },
            E2Message::ControlAck,
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for m in all_messages() {
            let mut buf = BytesMut::new();
            E2Codec::encode(&m, &mut buf);
            let got = E2Codec::decode(&mut buf).unwrap().unwrap();
            assert_eq!(got, m);
            assert!(buf.is_empty(), "no residue after full decode");
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        for m in all_messages() {
            E2Codec::encode(&m, &mut buf);
        }
        let mut out = Vec::new();
        while let Some(m) = E2Codec::decode(&mut buf).unwrap() {
            out.push(m);
        }
        assert_eq!(out, all_messages());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        E2Codec::encode(&E2Message::ControlAck, &mut full);
        // Feed byte by byte; only the last byte yields the message.
        let mut buf = BytesMut::new();
        for (i, b) in full.iter().enumerate() {
            buf.put_u8(*b);
            let r = E2Codec::decode(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(r.is_none(), "premature decode at byte {i}");
            } else {
                assert_eq!(r, Some(E2Message::ControlAck));
            }
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(0xFF);
        assert!(matches!(E2Codec::decode(&mut buf), Err(OranError::Codec(_))));
    }

    #[test]
    fn truncated_body_is_an_error() {
        // Declared length 2 but an indication needs 21 bytes of body.
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_u8(super::tag::INDICATION);
        buf.put_u8(0);
        assert!(matches!(E2Codec::decode(&mut buf), Err(OranError::Codec(_))));
    }

    #[test]
    fn oversized_declared_length_is_a_framing_error() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_u8(super::tag::SUB_REQ);
        assert!(matches!(E2Codec::decode(&mut buf), Err(OranError::Framing(_))));
    }

    #[test]
    fn decoder_resyncs_after_complete_frames() {
        // A good frame followed by a partial one: first decode succeeds,
        // second waits.
        let mut buf = BytesMut::new();
        E2Codec::encode(&E2Message::ControlAck, &mut buf);
        buf.put_u32(10); // declared length of an incomplete next frame
        buf.put_u8(super::tag::SUB_REQ);
        assert_eq!(E2Codec::decode(&mut buf).unwrap(), Some(E2Message::ControlAck));
        assert_eq!(E2Codec::decode(&mut buf).unwrap(), None);
    }
}

//! Deterministic fault injection for the O-RAN control plane.
//!
//! The ROADMAP's fault-injection item: the typed error layer
//! ([`OranError`], the orchestrator's degraded mode) must be exercised by
//! *injected* faults, not only hand-built unit cases. This module is the
//! injector: a decorator over the message path that can **drop**,
//! **duplicate**, **corrupt** (bit-flip or truncate), **delay** and
//! **reorder** A1/E2 frames according to a seeded schedule, plus a
//! scheduled **link cut** that turns every later operation into
//! [`OranError::ChannelClosed`].
//!
//! * [`ChaosPlan`] — a seeded fault schedule built from a [`ChaosConfig`]
//!   (per-link, per-direction [`LaneConfig`] rates with optional burst
//!   windows). One plan wraps any number of transports and collects every
//!   injected fault into one shared [`FaultLedger`].
//! * [`ChaosEndpoint`] — the decorator over the in-process
//!   [`Endpoint`], implementing the same [`Link`] contract the RIC
//!   actors are generic over.
//! * [`ChaosFramedTcp`] — the same per-frame fault pipeline applied to a
//!   blocking [`FramedTcp`] stream (send side; the receive side of a TCP
//!   link is faulted by the peer's decorator).
//!
//! # Determinism
//!
//! Every lane (link × direction) owns an RNG seeded from the plan seed
//! and the lane identity, and draws **exactly one** uniform variate per
//! frame (plus extra draws only when a corruption is materialized), so a
//! given `(seed, traffic)` pair always produces the same fault schedule,
//! the same ledger and the same surviving byte stream. Lanes are
//! domain-separated: traffic volume on one link never shifts another
//! link's schedule. With all rates zero the decorator is transparent —
//! the delivered bytes are identical to an unwrapped run.
//!
//! # Fault semantics
//!
//! At most one fault is injected per frame, and injected artifacts
//! (duplicate copies, delayed or reordered frames being re-delivered)
//! are never faulted again — no recursive fault stacking. Corruptions
//! are *guaranteed invalid*: a bit-flip targets the E2 tag byte (unknown
//! tag) or plants an `0xFF` byte in A1 JSON (invalid UTF-8), and a
//! truncation shortens the frame so the decoder must report
//! [`OranError::Codec`]/[`OranError::Framing`] rather than misparse.
//! Reordering applies only on receive lanes (where a successor frame to
//! swap with is observable); a reorder decision with nothing queued
//! behind it injects nothing and records nothing.
//!
//! [`FaultRecord::is_degrading`] classifies each injected fault by
//! whether the orchestrator's round trip that hit it must fall back to
//! degraded mode (see `edgebol-core`); [`FaultLedger::degrading_count`]
//! is what the end-to-end suite compares against
//! `Orchestrator::degraded_events`.

use crate::a1::A1Message;
use crate::e2::{tag, E2Codec};
use crate::transport::{Endpoint, FramedTcp, Link};
use crate::OranError;
use bytes::Bytes;
use edgebol_metrics::{Counter, Registry};
use edgebol_trace::{Journal, Layer};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Which control-plane link a decorated transport carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// The A1 link (non-RT RIC ⇄ near-RT RIC, JSON frames).
    A1,
    /// The E2 link (near-RT RIC ⇄ O-eNB, binary frames).
    E2,
}

impl LinkId {
    /// Stable label used as the `link` metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            LinkId::A1 => "A1",
            LinkId::E2 => "E2",
        }
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Direction of an operation relative to the wrapped endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `send` — traffic leaving the wrapped side.
    Tx,
    /// `try_recv` — traffic arriving at the wrapped side.
    Rx,
}

/// The fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The frame is discarded.
    Drop,
    /// The frame is delivered twice.
    Duplicate,
    /// One byte is mangled so the frame cannot decode (E2: unknown tag;
    /// A1: invalid UTF-8).
    CorruptBitFlip,
    /// The frame is shortened so decoding must fail (length header kept
    /// consistent, so the damage stays confined to this frame).
    CorruptTruncate,
    /// The frame is held for [`LaneConfig::delay_ops`] lane operations
    /// and then delivered.
    Delay,
    /// The frame swaps places with its successor (receive lanes only).
    Reorder,
    /// The link dies: this and every later operation returns
    /// [`OranError::ChannelClosed`] — until the cut heals, if a healing
    /// window was scheduled (see [`ChaosConfig::heal`]).
    LinkCut,
}

impl FaultKind {
    /// Stable snake_case label used as the `kind` metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::CorruptBitFlip => "corrupt_bit_flip",
            FaultKind::CorruptTruncate => "corrupt_truncate",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::LinkCut => "link_cut",
        }
    }
}

/// Protocol-level class of a faulted frame, recorded so tests (and the
/// orchestrator's accounting) can reason about a fault's blast radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    A1PutPolicy,
    A1DeletePolicy,
    A1Feedback,
    A1KpiSample,
    E2SubscriptionRequest,
    E2SubscriptionResponse,
    E2Indication,
    E2ControlRequest,
    E2ControlAck,
    /// Unclassifiable payload (or a link-cut record).
    Unknown,
}

/// Classifies a wire frame without consuming it.
pub fn classify(link: LinkId, payload: &[u8]) -> MsgClass {
    match link {
        LinkId::A1 => match A1Message::peek_kind(payload) {
            Some("PutPolicy") => MsgClass::A1PutPolicy,
            Some("DeletePolicy") => MsgClass::A1DeletePolicy,
            Some("Feedback") => MsgClass::A1Feedback,
            Some("KpiSample") => MsgClass::A1KpiSample,
            _ => MsgClass::Unknown,
        },
        LinkId::E2 => match E2Codec::peek_tag(payload) {
            Some(tag::SUB_REQ) => MsgClass::E2SubscriptionRequest,
            Some(tag::SUB_RESP) => MsgClass::E2SubscriptionResponse,
            Some(tag::INDICATION) => MsgClass::E2Indication,
            Some(tag::CONTROL_REQ) => MsgClass::E2ControlRequest,
            Some(tag::CONTROL_ACK) => MsgClass::E2ControlAck,
            _ => MsgClass::Unknown,
        },
    }
}

/// Per-direction fault rates for one lane (link × direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneConfig {
    /// Probability a frame is dropped.
    pub drop: f64,
    /// Probability a frame is duplicated.
    pub duplicate: f64,
    /// Probability a frame is corrupted (bit-flip or truncation, chosen
    /// 50/50 when the fault fires).
    pub corrupt: f64,
    /// Probability a frame is delayed by [`LaneConfig::delay_ops`] lane
    /// operations.
    pub delay: f64,
    /// Probability a frame swaps places with its successor (receive
    /// lanes only; transmit lanes ignore this rate).
    pub reorder: f64,
    /// How many lane operations a delayed frame is held for.
    pub delay_ops: u64,
    /// Burst window period in lane operations (`0` disables bursts).
    pub burst_every: u64,
    /// Burst window length in lane operations.
    pub burst_len: u64,
    /// Rate multiplier inside a burst window.
    pub burst_mult: f64,
}

impl LaneConfig {
    /// No faults on this lane.
    pub const fn off() -> Self {
        LaneConfig {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            reorder: 0.0,
            delay_ops: 3,
            burst_every: 0,
            burst_len: 0,
            burst_mult: 1.0,
        }
    }

    /// Drop + corrupt at `rate` each — the unambiguous degrading kinds,
    /// used by the exact-accounting chaos suite (no fault masking: no
    /// mechanism ever re-creates a copy of a lost frame).
    pub fn drop_corrupt(rate: f64) -> Self {
        LaneConfig { drop: rate, corrupt: rate, ..LaneConfig::off() }
    }

    /// Every message-level fault kind at `rate` each.
    pub fn all_kinds(rate: f64) -> Self {
        LaneConfig {
            drop: rate,
            duplicate: rate,
            corrupt: rate,
            delay: rate,
            reorder: rate,
            ..LaneConfig::off()
        }
    }

    /// Whether this lane can ever inject anything.
    pub fn is_off(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.reorder == 0.0
    }

    /// The burst-window rate multiplier in force at lane operation `op`.
    fn mult_at(&self, op: u64) -> f64 {
        if self.burst_every == 0 {
            1.0
        } else if op % self.burst_every < self.burst_len {
            self.burst_mult
        } else {
            1.0
        }
    }
}

/// The full chaos configuration: a seed, four lanes (A1/E2 × Tx/Rx,
/// directions relative to the wrapped side) and an optional scheduled
/// link cut.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed; lane RNGs are domain-separated from it.
    pub seed: u64,
    pub a1_tx: LaneConfig,
    pub a1_rx: LaneConfig,
    pub e2_tx: LaneConfig,
    pub e2_rx: LaneConfig,
    /// Kill the given link after this many post-arm operations on it.
    pub cut: Option<(LinkId, u64)>,
    /// Heal the cut this many operations after it fired: operations in
    /// `[cut_at, cut_at + heal)` fail with `ChannelClosed`, later ones
    /// pass again. `None` leaves the cut permanent. Meaningless without
    /// [`ChaosConfig::cut`] (and rejected by [`ChaosConfig::from_spec`]).
    pub heal: Option<u64>,
}

impl ChaosConfig {
    /// No faults anywhere; wrapping with this config is transparent.
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            a1_tx: LaneConfig::off(),
            a1_rx: LaneConfig::off(),
            e2_tx: LaneConfig::off(),
            e2_rx: LaneConfig::off(),
            cut: None,
            heal: None,
        }
    }

    /// The same lane config on all four lanes.
    pub fn uniform(seed: u64, lane: LaneConfig) -> Self {
        ChaosConfig {
            seed,
            a1_tx: lane,
            a1_rx: lane,
            e2_tx: lane,
            e2_rx: lane,
            cut: None,
            heal: None,
        }
    }

    /// Drop + corrupt everywhere at `rate` (exact-accounting suite).
    pub fn drop_corrupt(seed: u64, rate: f64) -> Self {
        Self::uniform(seed, LaneConfig::drop_corrupt(rate))
    }

    /// Every fault kind everywhere at `rate` (robustness suite).
    pub fn all_kinds(seed: u64, rate: f64) -> Self {
        Self::uniform(seed, LaneConfig::all_kinds(rate))
    }

    /// Adds a scheduled link cut.
    pub fn with_cut(mut self, link: LinkId, after_ops: u64) -> Self {
        self.cut = Some((link, after_ops));
        self
    }

    /// Schedules the cut to heal `after_ops` operations after it fires
    /// (see [`ChaosConfig::heal`]); call on top of
    /// [`ChaosConfig::with_cut`].
    ///
    /// # Panics
    /// Panics when no cut is scheduled or `after_ops` is zero — the spec
    /// parser rejects both with proper errors; the builder asserts.
    pub fn with_heal(mut self, after_ops: u64) -> Self {
        assert!(self.cut.is_some(), "with_heal requires a scheduled cut");
        assert!(after_ops > 0, "heal window must be positive");
        self.heal = Some(after_ops);
        self
    }

    /// Whether any lane (or the cut schedule) can inject anything.
    pub fn enabled(&self) -> bool {
        !(self.a1_tx.is_off()
            && self.a1_rx.is_off()
            && self.e2_tx.is_off()
            && self.e2_rx.is_off()
            && self.cut.is_none())
    }

    /// The same config under a different seed stream (multi-seed
    /// experiment runners mix the repetition seed in with this).
    pub fn reseeded(&self, salt: u64) -> Self {
        let mut c = self.clone();
        c.seed = splitmix(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        c
    }

    /// Parses the `EDGEBOL_CHAOS` knob: comma-separated `key=value`
    /// pairs, applied uniformly to all four lanes.
    ///
    /// Keys: `seed`, `rate` (shorthand for `drop` + `corrupt`), `drop`,
    /// `dup`, `corrupt`, `delay`, `reorder`, `delay_ops`, `burst_every`,
    /// `burst_len`, `burst_mult`, `cut=a1@N` / `cut=e2@N`, and
    /// `heal=a1@M` / `heal=e2@M` (the cut clears `M` operations after it
    /// fires; requires a matching `cut` on the same link and `M > 0`).
    ///
    /// # Errors
    /// A human-readable message naming the offending pair.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut seed = 1u64;
        let mut lane = LaneConfig::off();
        let mut cut = None;
        let mut heal = None;
        let parse_link_at = |key: &'static str, value: &str| -> Result<(LinkId, u64), String> {
            let (link, at) = value
                .split_once('@')
                .ok_or_else(|| format!("{key}: expected a1@N or e2@N, got {value:?}"))?;
            let link = match link {
                "a1" | "A1" => LinkId::A1,
                "e2" | "E2" => LinkId::E2,
                other => return Err(format!("{key}: unknown link {other:?}")),
            };
            let at = at.parse::<u64>().map_err(|_| format!("{key}: not an op count: {at:?}"))?;
            Ok((link, at))
        };
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            let fval =
                || value.parse::<f64>().map_err(|_| format!("{key}: not a number: {value:?}"));
            let uval =
                || value.parse::<u64>().map_err(|_| format!("{key}: not an integer: {value:?}"));
            match key {
                "seed" => seed = uval()?,
                "rate" => {
                    let r = fval()?;
                    lane.drop = r;
                    lane.corrupt = r;
                }
                "drop" => lane.drop = fval()?,
                "dup" | "duplicate" => lane.duplicate = fval()?,
                "corrupt" => lane.corrupt = fval()?,
                "delay" => lane.delay = fval()?,
                "reorder" => lane.reorder = fval()?,
                "delay_ops" => lane.delay_ops = uval()?,
                "burst_every" => lane.burst_every = uval()?,
                "burst_len" => lane.burst_len = uval()?,
                "burst_mult" => lane.burst_mult = fval()?,
                "cut" => cut = Some(parse_link_at("cut", value)?),
                "heal" => heal = Some(parse_link_at("heal", value)?),
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        let heal = match (cut, heal) {
            (_, None) => None,
            (None, Some(_)) => {
                return Err("heal: requires a matching cut=<link>@N".into());
            }
            (Some((cut_link, _)), Some((heal_link, _))) if cut_link != heal_link => {
                return Err(format!(
                    "heal: link {heal_link} does not match the cut link {cut_link}"
                ));
            }
            (Some(_), Some((_, 0))) => {
                return Err("heal: window must be positive (got 0)".into());
            }
            (Some(_), Some((_, after))) => Some(after),
        };
        let mut cfg = ChaosConfig::uniform(seed, lane);
        cfg.cut = cut;
        cfg.heal = heal;
        Ok(cfg)
    }
}

/// One injected fault, exactly as it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Ledger sequence number (injection order across all lanes).
    pub seq: u64,
    /// Which link the fault hit.
    pub link: LinkId,
    /// Which direction of that link.
    pub direction: Direction,
    /// What was injected.
    pub kind: FaultKind,
    /// Protocol class of the victim frame.
    pub msg: MsgClass,
    /// The lane operation index at injection time.
    pub op: u64,
    /// Human-readable specifics ("held until op 12", "byte 7 -> 0xFF").
    pub detail: String,
    /// For [`FaultKind::LinkCut`]: whether a healing window is scheduled
    /// (the link comes back, so the outage is survivable). Always `false`
    /// for other kinds.
    pub heals: bool,
}

impl FaultRecord {
    /// Whether the orchestrator round trip that hit this fault must fall
    /// back to degraded mode (reuse the last enforced policy / the local
    /// power reading).
    ///
    /// * Corruptions always degrade: the poll that meets the mangled
    ///   frame reports a recoverable [`OranError`] and the round trip is
    ///   absorbed by degraded mode.
    /// * Drops and delays degrade exactly when the victim carries the
    ///   round trip's *forward* payload — a `PutPolicy`/`ControlRequest`
    ///   (the policy never reaches the node this period) or an
    ///   `Indication`/`KpiSample` (the power sample never surfaces).
    ///   Losing a `ControlAck` or `Feedback` does **not** degrade: the
    ///   node already applied the policy, and the orchestrator reads the
    ///   enforcement from the node itself.
    /// * Duplicates and reorders are absorbed by the protocol (stale
    ///   acks are ignored, stale KPI stamps are dropped) and never
    ///   degrade on their own.
    /// * A *healing* link cut (see [`ChaosConfig::heal`]) degrades: the
    ///   reconnect supervisor rides the outage in local-autonomy mode,
    ///   so periods ran on fallback state. The single ledgered record
    ///   marks the whole outage; the per-period cost is counted
    ///   separately by the orchestrator's `local_autonomy_periods`.
    ///   An unhealed cut stays non-degrading — it is fatal (or latches
    ///   the circuit open), surfacing as an `OrchestratorError` or a
    ///   permanent fallback instead of a bounded degraded episode.
    ///
    /// Caveat (why the exact-accounting suite uses drop+corrupt only):
    /// a delayed or duplicated frame re-delivered in a *later* period
    /// can mask that period's own loss (the node still hears *a*
    /// policy), so under mixed schedules `degrading_count` is an upper
    /// bound on degraded events, with equality when no masking kind is
    /// enabled on the same lane as a loss kind.
    pub fn is_degrading(&self) -> bool {
        match self.kind {
            FaultKind::CorruptBitFlip | FaultKind::CorruptTruncate => true,
            FaultKind::Drop | FaultKind::Delay => matches!(
                self.msg,
                MsgClass::A1PutPolicy
                    | MsgClass::E2ControlRequest
                    | MsgClass::E2Indication
                    | MsgClass::A1KpiSample
            ),
            FaultKind::LinkCut => self.heals,
            FaultKind::Duplicate | FaultKind::Reorder => false,
        }
    }
}

/// Append-only record of every injected fault, shared by all transports
/// wrapped by one [`ChaosPlan`]. Cloning shares the underlying ledger.
///
/// An *instrumented* ledger (see [`FaultLedger::instrumented`]) also
/// increments `edgebol_oran_faults_total{kind,link}` live on every push
/// — deliberately a second code path next to the record vector, so the
/// metrics test's counter ≡ ledger invariant is a genuine cross-check
/// rather than a tautology.
#[derive(Debug, Clone, Default)]
pub struct FaultLedger {
    inner: Arc<Mutex<Vec<FaultRecord>>>,
    metrics: Registry,
    /// Optional event journal; shared across clones and set at most
    /// once (see [`FaultLedger::set_journal`]).
    journal: Arc<OnceLock<Arc<Journal>>>,
}

impl FaultLedger {
    /// A ledger that mirrors every push into `metrics` as
    /// `edgebol_oran_faults_total{kind,link}` counters.
    pub fn instrumented(metrics: Registry) -> Self {
        metrics.describe("edgebol_oran_faults_total", "Chaos faults injected, by kind and link");
        FaultLedger { inner: Arc::default(), metrics, journal: Arc::default() }
    }

    /// Attaches an event journal: every injected fault is recorded
    /// under [`Layer::Chaos`] in addition to the ledger entry. Shared
    /// by every clone of this ledger; the first call wins.
    pub fn set_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Append `record`, overwriting its `seq` with the next ledger index.
    fn push(&self, mut record: FaultRecord) {
        self.metrics
            .counter_with(
                "edgebol_oran_faults_total",
                &[("kind", record.kind.label()), ("link", record.link.label())],
            )
            .inc();
        if let Some(j) = self.journal.get() {
            j.record(
                Layer::Chaos,
                "fault",
                None,
                vec![
                    ("kind", record.kind.label().to_string()),
                    ("link", record.link.label().to_string()),
                    ("msg", format!("{:?}", record.msg)),
                    ("op", record.op.to_string()),
                    ("detail", record.detail.clone()),
                    ("heals", record.heals.to_string()),
                ],
            );
        }
        let mut v = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        record.seq = v.len() as u64;
        v.push(record);
    }

    /// A snapshot of every record, in injection order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Number of injected faults so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records of one kind.
    pub fn count_kind(&self, kind: FaultKind) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|r| r.kind == kind)
            .count()
    }

    /// Number of recoverable injected faults that force a degraded-mode
    /// fallback — see [`FaultRecord::is_degrading`].
    pub fn degrading_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|r| r.is_degrading())
            .count()
    }
}

/// SplitMix64 finalizer for seed derivation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-lane seed, domain-separated by link, direction and
/// transport family so no lane's traffic shifts another lane's schedule.
fn lane_seed(seed: u64, link: LinkId, dir: Direction, family: u64) -> u64 {
    let link_tag = match link {
        LinkId::A1 => 0x0A1,
        LinkId::E2 => 0x0E2,
    };
    let dir_tag = match dir {
        Direction::Tx => 0x7,
        Direction::Rx => 0xB,
    };
    splitmix(seed ^ (link_tag << 32) ^ (dir_tag << 48) ^ family)
}

/// Mangles `payload` so it is guaranteed not to decode, preserving the
/// framing of the *stream* (an E2 truncation rewrites the length header
/// so the damage is confined to this frame). `flip` chooses bit-flip vs
/// truncation; `pos` seeds the mutation position. Returns the mangled
/// bytes, the materialized kind (tiny frames force a bit-flip) and a
/// description. Exposed so the codec property tests can assert the
/// always-invalid guarantee directly.
pub fn corrupt_payload(
    link: LinkId,
    payload: &[u8],
    flip: bool,
    pos: u64,
) -> (Vec<u8>, FaultKind, String) {
    let mut out = payload.to_vec();
    match link {
        LinkId::E2 => {
            // Frame: u32 BE body length | u8 tag | payload.
            if !flip && out.len() > 5 {
                // Truncate the body to a strict prefix and rewrite the
                // length header to match, so the decoder sees a complete
                // but impossible frame (Codec error, then resync).
                let body_len = out.len() - 4;
                let new_len = (pos % body_len as u64) as usize;
                out.truncate(4 + new_len);
                out[..4].copy_from_slice(&(new_len as u32).to_be_bytes());
                (out, FaultKind::CorruptTruncate, format!("body truncated to {new_len} bytes"))
            } else if out.len() >= 5 {
                // Unknown-tag guarantee: valid tags are small, so setting
                // the high bit always leaves decode with a Codec error.
                out[4] |= 0x80;
                let detail = format!("tag bit-flipped to {:#04x}", out[4]);
                (out, FaultKind::CorruptBitFlip, detail)
            } else {
                // Degenerate short frame: mangle the length header.
                if out.is_empty() {
                    out.push(0xFF);
                } else {
                    out[0] ^= 0xFF;
                }
                (out, FaultKind::CorruptBitFlip, "length header mangled".into())
            }
        }
        LinkId::A1 => {
            if !flip && out.len() >= 2 {
                // Any strict prefix of a JSON document fails to parse.
                let new_len = 1 + (pos % (out.len() as u64 - 1)) as usize;
                out.truncate(new_len);
                (out, FaultKind::CorruptTruncate, format!("JSON truncated to {new_len} bytes"))
            } else {
                // 0xFF never occurs in valid UTF-8.
                let at = if out.is_empty() { 0 } else { (pos % out.len() as u64) as usize };
                if out.is_empty() {
                    out.push(0xFF);
                } else {
                    out[at] = 0xFF;
                }
                (out, FaultKind::CorruptBitFlip, format!("byte {at} -> 0xFF"))
            }
        }
    }
}

/// Per-lane mutable state: the RNG, the operation counter and frames
/// being held for later delivery (delays, duplicates, reorders).
#[derive(Debug)]
struct Lane {
    cfg: LaneConfig,
    dir: Direction,
    rng: SmallRng,
    /// Operations on this lane so far (send calls for Tx, recv calls for
    /// Rx — not frames; one recv call may consider several frames).
    op: u64,
    /// Held frames as `(release_at_op, frame)`, release-ordered.
    held: VecDeque<(u64, Bytes)>,
}

impl Lane {
    fn new(mut cfg: LaneConfig, dir: Direction, seed: u64) -> Self {
        if dir == Direction::Tx {
            // A Tx reorder could strand a frame forever if no later send
            // arrives; reordering is only injected where the successor is
            // observable (Rx lanes).
            cfg.reorder = 0.0;
        }
        Lane { cfg, dir, rng: SmallRng::seed_from_u64(seed), op: 0, held: VecDeque::new() }
    }

    /// Draws the fault decision for one frame: exactly one uniform
    /// variate, mapped against the cumulative lane rates (so at most one
    /// fault fires per frame).
    fn decide(&mut self) -> Option<FaultKind> {
        let m = self.cfg.mult_at(self.op);
        let u: f64 = self.rng.random();
        let ladder = [
            (FaultKind::Drop, self.cfg.drop),
            (FaultKind::Duplicate, self.cfg.duplicate),
            (FaultKind::CorruptBitFlip, self.cfg.corrupt),
            (FaultKind::Delay, self.cfg.delay),
            (FaultKind::Reorder, self.cfg.reorder),
        ];
        let mut acc = 0.0;
        for (kind, rate) in ladder {
            acc += (rate * m).max(0.0);
            if u < acc {
                return Some(kind);
            }
        }
        None
    }

    /// Pops the next held frame whose release op has arrived.
    fn pop_due(&mut self) -> Option<Bytes> {
        match self.held.front() {
            Some(&(release, _)) if release <= self.op => self.held.pop_front().map(|(_, f)| f),
            _ => None,
        }
    }
}

/// A seeded fault schedule plus the shared ledger; wraps transports.
///
/// Plans start **disarmed** (transparent), so bootstrap handshakes can
/// complete cleanly; call [`ChaosPlan::arm`] when the experiment proper
/// starts. A plan built from a disabled config never injects even when
/// armed.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    cfg: ChaosConfig,
    ledger: FaultLedger,
    armed: Arc<AtomicBool>,
    metrics: Registry,
}

impl ChaosPlan {
    /// Builds a plan (disarmed) from a config, without metrics.
    pub fn new(cfg: ChaosConfig) -> Self {
        Self::new_instrumented(cfg, Registry::disabled())
    }

    /// Builds a plan (disarmed) whose wrapped transports record traffic
    /// (`edgebol_oran_frames_total` / `_bytes_total` /
    /// `_redelivered_frames_total`) and whose ledger mirrors faults
    /// (`edgebol_oran_faults_total{kind,link}`) into `metrics`. Passing
    /// [`Registry::disabled`] is equivalent to [`ChaosPlan::new`].
    pub fn new_instrumented(cfg: ChaosConfig, metrics: Registry) -> Self {
        metrics
            .describe("edgebol_oran_frames_total", "Control-plane frames, by direction and link");
        metrics.describe("edgebol_oran_bytes_total", "Control-plane bytes, by direction and link");
        metrics.describe(
            "edgebol_oran_redelivered_frames_total",
            "Frames delivered more than once by a duplication fault",
        );
        ChaosPlan {
            cfg,
            ledger: FaultLedger::instrumented(metrics.clone()),
            armed: Arc::new(AtomicBool::new(false)),
            metrics,
        }
    }

    /// The config this plan runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// A handle to the shared fault ledger.
    pub fn ledger(&self) -> FaultLedger {
        self.ledger.clone()
    }

    /// Starts injecting (no-op for a disabled config).
    pub fn arm(&self) {
        if self.cfg.enabled() {
            self.armed.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the plan is currently injecting.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Wraps a [`Link`] (the in-process [`Endpoint`] or a
    /// [`crate::reactor::ReactorLink`] — the pipeline is
    /// transport-agnostic); all faults land in this plan's ledger.
    pub fn wrap<L: Link>(&self, inner: L, link: LinkId) -> ChaosEndpoint<L> {
        let (tx_cfg, rx_cfg) = match link {
            LinkId::A1 => (self.cfg.a1_tx, self.cfg.a1_rx),
            LinkId::E2 => (self.cfg.e2_tx, self.cfg.e2_rx),
        };
        let cut_at = match self.cfg.cut {
            Some((l, at)) if l == link => Some(at),
            _ => None,
        };
        let l = link.label();
        ChaosEndpoint {
            inner,
            link,
            armed: self.armed.clone(),
            ledger: self.ledger.clone(),
            cut_at,
            heal_after: if cut_at.is_some() { self.cfg.heal } else { None },
            ops: AtomicU64::new(0),
            cut_latched: AtomicBool::new(false),
            tx: Mutex::new(Lane::new(
                tx_cfg,
                Direction::Tx,
                lane_seed(self.cfg.seed, link, Direction::Tx, 0),
            )),
            rx: Mutex::new(Lane::new(
                rx_cfg,
                Direction::Rx,
                lane_seed(self.cfg.seed, link, Direction::Rx, 0),
            )),
            // Handles resolved once here: per-frame recording must not
            // take the registry's registration lock.
            m_tx_frames: self
                .metrics
                .counter_with("edgebol_oran_frames_total", &[("dir", "tx"), ("link", l)]),
            m_rx_frames: self
                .metrics
                .counter_with("edgebol_oran_frames_total", &[("dir", "rx"), ("link", l)]),
            m_tx_bytes: self
                .metrics
                .counter_with("edgebol_oran_bytes_total", &[("dir", "tx"), ("link", l)]),
            m_rx_bytes: self
                .metrics
                .counter_with("edgebol_oran_bytes_total", &[("dir", "rx"), ("link", l)]),
            m_redelivered: self
                .metrics
                .counter_with("edgebol_oran_redelivered_frames_total", &[("link", l)]),
        }
    }

    /// Applies the plan to a framed TCP stream (send-side faults; the
    /// peer's decorator owns the other direction).
    pub fn wrap_tcp(&self, inner: FramedTcp, link: LinkId) -> ChaosFramedTcp {
        let lane_cfg = match link {
            LinkId::A1 => self.cfg.a1_tx,
            LinkId::E2 => self.cfg.e2_tx,
        };
        let l = link.label();
        ChaosFramedTcp {
            inner,
            link,
            armed: self.armed.clone(),
            ledger: self.ledger.clone(),
            lane: Lane::new(
                lane_cfg,
                Direction::Tx,
                lane_seed(self.cfg.seed, link, Direction::Tx, 1),
            ),
            m_tx_frames: self
                .metrics
                .counter_with("edgebol_oran_frames_total", &[("dir", "tx"), ("link", l)]),
            m_tx_bytes: self
                .metrics
                .counter_with("edgebol_oran_bytes_total", &[("dir", "tx"), ("link", l)]),
        }
    }
}

/// The fault-injecting decorator over any [`Link`] (the in-process
/// [`Endpoint`] by default). Same [`Link`] contract; interior mutability
/// keeps the `&self` signatures. The op-denominated fault schedule is
/// counted *above* the transport, which is why a fixed-seed chaos
/// episode injects the identical fault sequence whether the wrapped link
/// is an `Endpoint` or a reactor-managed TCP session.
#[derive(Debug)]
pub struct ChaosEndpoint<L: Link = Endpoint> {
    inner: L,
    link: LinkId,
    armed: Arc<AtomicBool>,
    ledger: FaultLedger,
    /// Kill the link after this many post-arm operations (tx + rx).
    cut_at: Option<u64>,
    /// Bring the link back this many operations after the cut fired
    /// (operations keep counting while it is down — probes advance the
    /// heal clock).
    heal_after: Option<u64>,
    ops: AtomicU64,
    cut_latched: AtomicBool,
    tx: Mutex<Lane>,
    rx: Mutex<Lane>,
    /// Traffic counters, pre-resolved at wrap time (no-ops when the plan
    /// was built without a registry). Tx counts frames *submitted* (so a
    /// dropped frame still counts as offered traffic), rx counts frames
    /// *delivered* to the caller.
    m_tx_frames: Counter,
    m_rx_frames: Counter,
    m_tx_bytes: Counter,
    m_rx_bytes: Counter,
    /// Held frames (delay/duplicate/reorder artifacts) handed back out.
    m_redelivered: Counter,
}

impl<L: Link> ChaosEndpoint<L> {
    fn record(&self, lane: &Lane, kind: FaultKind, payload: &[u8], detail: String) {
        self.ledger.push(FaultRecord {
            seq: 0,
            link: self.link,
            direction: lane.dir,
            kind,
            msg: classify(self.link, payload),
            op: lane.op,
            detail,
            heals: false,
        });
    }

    /// Counts one post-arm operation against the cut schedule. Without a
    /// healing window every operation from `cut_at` on fails; with one,
    /// operations in `[cut_at, cut_at + heal)` fail and later ones pass
    /// — operations keep counting while the link is down, so reconnect
    /// probes advance the heal clock deterministically.
    fn tick_cut(&self, dir: Direction) -> Result<(), OranError> {
        let Some(cut_at) = self.cut_at else { return Ok(()) };
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= cut_at {
            let healed = match self.heal_after {
                Some(heal) => n >= cut_at.saturating_add(heal),
                None => false,
            };
            if healed {
                return Ok(());
            }
            if !self.cut_latched.swap(true, Ordering::SeqCst) {
                let detail = match self.heal_after {
                    Some(heal) => {
                        format!("link cut after {cut_at} operations, heals after {heal} more")
                    }
                    None => format!("link cut after {cut_at} operations"),
                };
                self.ledger.push(FaultRecord {
                    seq: 0,
                    link: self.link,
                    direction: dir,
                    kind: FaultKind::LinkCut,
                    msg: MsgClass::Unknown,
                    op: n,
                    detail,
                    heals: self.heal_after.is_some(),
                });
            }
            // The message names the link so the reconnect supervisor can
            // attribute the loss without guessing from the stage.
            return Err(OranError::ChannelClosed(match self.link {
                LinkId::A1 => "chaos: A1 link cut",
                LinkId::E2 => "chaos: E2 link cut",
            }));
        }
        Ok(())
    }

    /// Sends one frame through the fault pipeline.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the peer is gone or the chaos
    /// schedule has cut the link.
    pub fn send(&self, msg: Bytes) -> Result<(), OranError> {
        self.m_tx_frames.inc();
        self.m_tx_bytes.add(msg.len() as u64);
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.send(msg);
        }
        self.tick_cut(Direction::Tx)?;
        let mut lane = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        lane.op += 1;
        // Delayed frames whose hold expired go out first (artifacts are
        // never re-faulted).
        while let Some(f) = lane.pop_due() {
            self.inner.send(f)?;
        }
        match lane.decide() {
            None | Some(FaultKind::Reorder) | Some(FaultKind::LinkCut) => self.inner.send(msg),
            Some(FaultKind::Drop) => {
                self.record(&lane, FaultKind::Drop, &msg, "frame dropped".into());
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                self.record(&lane, FaultKind::Duplicate, &msg, "frame sent twice".into());
                self.inner.send(msg.clone())?;
                self.inner.send(msg)
            }
            Some(FaultKind::CorruptBitFlip) | Some(FaultKind::CorruptTruncate) => {
                let flip = lane.rng.random_bool(0.5);
                let pos: u64 = lane.rng.random();
                let (mangled, kind, detail) = corrupt_payload(self.link, &msg, flip, pos);
                self.record(&lane, kind, &msg, detail);
                self.inner.send(Bytes::from(mangled))
            }
            Some(FaultKind::Delay) => {
                let release = lane.op + lane.cfg.delay_ops.max(1);
                self.record(&lane, FaultKind::Delay, &msg, format!("held until op {release}"));
                lane.held.push_back((release, msg));
                Ok(())
            }
        }
    }

    /// Receives the next frame through the fault pipeline.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the peer is gone (and the queue
    /// plus held frames are drained) or the chaos schedule has cut the
    /// link.
    pub fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        let got = self.try_recv_impl()?;
        if let Some(f) = &got {
            self.m_rx_frames.inc();
            self.m_rx_bytes.add(f.len() as u64);
        }
        Ok(got)
    }

    fn try_recv_impl(&self) -> Result<Option<Bytes>, OranError> {
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.try_recv();
        }
        self.tick_cut(Direction::Rx)?;
        let mut lane = self.rx.lock().unwrap_or_else(PoisonError::into_inner);
        lane.op += 1;
        // Held frames due for re-delivery come first, unfaulted.
        if let Some(f) = lane.pop_due() {
            self.m_redelivered.inc();
            return Ok(Some(f));
        }
        loop {
            let msg = match self.inner.try_recv() {
                Ok(Some(m)) => m,
                // Report the empty/closed link only once no held frame
                // is still pending re-delivery.
                Ok(None) => return Ok(None),
                Err(e) if lane.held.is_empty() => return Err(e),
                Err(_) => return Ok(None),
            };
            match lane.decide() {
                None | Some(FaultKind::LinkCut) => return Ok(Some(msg)),
                Some(FaultKind::Drop) => {
                    self.record(&lane, FaultKind::Drop, &msg, "frame dropped".into());
                    continue;
                }
                Some(FaultKind::Duplicate) => {
                    self.record(&lane, FaultKind::Duplicate, &msg, "frame delivered twice".into());
                    let release = lane.op; // due on the very next op
                    lane.held.push_back((release, msg.clone()));
                    return Ok(Some(msg));
                }
                Some(FaultKind::CorruptBitFlip) | Some(FaultKind::CorruptTruncate) => {
                    let flip = lane.rng.random_bool(0.5);
                    let pos: u64 = lane.rng.random();
                    let (mangled, kind, detail) = corrupt_payload(self.link, &msg, flip, pos);
                    self.record(&lane, kind, &msg, detail);
                    return Ok(Some(Bytes::from(mangled)));
                }
                Some(FaultKind::Delay) => {
                    let release = lane.op + lane.cfg.delay_ops.max(1);
                    self.record(&lane, FaultKind::Delay, &msg, format!("held until op {release}"));
                    lane.held.push_back((release, msg));
                    continue;
                }
                Some(FaultKind::Reorder) => {
                    match self.inner.try_recv()? {
                        Some(next) => {
                            self.record(
                                &lane,
                                FaultKind::Reorder,
                                &msg,
                                "swapped with successor".into(),
                            );
                            let due = lane.op;
                            lane.held.push_front((due, msg));
                            return Ok(Some(next));
                        }
                        // Nothing queued behind it: no swap happens and
                        // nothing is recorded.
                        None => return Ok(Some(msg)),
                    }
                }
            }
        }
    }

    /// Drains through the fault pipeline — [`Link::drain`] semantics.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the link is down and nothing was
    /// pending.
    pub fn drain(&self) -> Result<Vec<Bytes>, OranError> {
        Link::drain(self)
    }
}

impl<L: Link> Link for ChaosEndpoint<L> {
    fn send(&self, msg: Bytes) -> Result<(), OranError> {
        ChaosEndpoint::send(self, msg)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        ChaosEndpoint::try_recv(self)
    }
}

/// The fault pipeline applied to a blocking [`FramedTcp`] stream.
///
/// Faults apply on `send` (dropping on the blocking receive side would
/// stall the peer instead of modelling loss); each side of a TCP link
/// wraps its own transmitter, which together covers both directions.
#[derive(Debug)]
pub struct ChaosFramedTcp {
    inner: FramedTcp,
    link: LinkId,
    armed: Arc<AtomicBool>,
    ledger: FaultLedger,
    lane: Lane,
    m_tx_frames: Counter,
    m_tx_bytes: Counter,
}

impl ChaosFramedTcp {
    /// Sends one frame through the fault pipeline.
    ///
    /// # Errors
    /// As [`FramedTcp::send`].
    pub fn send(&mut self, payload: &[u8]) -> Result<(), OranError> {
        self.m_tx_frames.inc();
        self.m_tx_bytes.add(payload.len() as u64);
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.send(payload);
        }
        self.lane.op += 1;
        while let Some(f) = self.lane.pop_due() {
            self.inner.send(&f)?;
        }
        let decision = self.lane.decide();
        match decision {
            None | Some(FaultKind::Reorder) | Some(FaultKind::LinkCut) => self.inner.send(payload),
            Some(FaultKind::Drop) => {
                self.push_record(FaultKind::Drop, payload, "frame dropped".into());
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                self.push_record(FaultKind::Duplicate, payload, "frame sent twice".into());
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
            Some(FaultKind::CorruptBitFlip) | Some(FaultKind::CorruptTruncate) => {
                let flip = self.lane.rng.random_bool(0.5);
                let pos: u64 = self.lane.rng.random();
                let (mangled, kind, detail) = corrupt_payload(self.link, payload, flip, pos);
                self.push_record(kind, payload, detail);
                self.inner.send(&mangled)
            }
            Some(FaultKind::Delay) => {
                let release = self.lane.op + self.lane.cfg.delay_ops.max(1);
                self.push_record(FaultKind::Delay, payload, format!("held until op {release}"));
                self.lane.held.push_back((release, Bytes::copy_from_slice(payload)));
                Ok(())
            }
        }
    }

    /// Receives one frame (blocking, unfaulted — the peer's decorator
    /// owns this direction).
    ///
    /// # Errors
    /// As [`FramedTcp::recv`].
    pub fn recv(&mut self) -> Result<Bytes, OranError> {
        self.inner.recv()
    }

    fn push_record(&self, kind: FaultKind, payload: &[u8], detail: String) {
        self.ledger.push(FaultRecord {
            seq: 0,
            link: self.link,
            direction: self.lane.dir,
            kind,
            msg: classify(self.link, payload),
            op: self.lane.op,
            detail,
            heals: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a1::{PolicyId, PolicyStatus, RadioPolicy};
    use crate::e2::{E2Message, KpiReport, RAN_FUNC_KPI};
    use crate::transport::duplex_pair;
    use std::net::TcpListener;
    use std::thread;

    fn armed_pair(cfg: ChaosConfig) -> (Endpoint, ChaosEndpoint, ChaosPlan) {
        let plan = ChaosPlan::new(cfg);
        let (a, b) = duplex_pair();
        let wrapped = plan.wrap(b, LinkId::E2);
        plan.arm();
        (a, wrapped, plan)
    }

    fn frame(i: u64) -> Bytes {
        E2Codec::encode_to_bytes(&E2Message::Indication(KpiReport {
            t_ms: i,
            bs_power_mw: 5_000 + i,
            duty_milli: 1,
            mean_mcs_centi: 2,
        }))
    }

    #[test]
    fn classify_recognizes_both_wire_formats() {
        let put = A1Message::PutPolicy {
            policy_id: PolicyId("p".into()),
            policy_type: crate::a1::A1_POLICY_TYPE_RADIO,
            policy: RadioPolicy { airtime: 0.5, max_mcs: 10 },
        };
        assert_eq!(classify(LinkId::A1, put.to_json().as_bytes()), MsgClass::A1PutPolicy);
        let fb =
            A1Message::Feedback { policy_id: PolicyId("p".into()), status: PolicyStatus::Enforced };
        assert_eq!(classify(LinkId::A1, fb.to_json().as_bytes()), MsgClass::A1Feedback);
        let sub = E2Codec::encode_to_bytes(&E2Message::SubscriptionRequest {
            ran_function: RAN_FUNC_KPI,
            report_period_ms: 1000,
        });
        assert_eq!(classify(LinkId::E2, &sub), MsgClass::E2SubscriptionRequest);
        assert_eq!(classify(LinkId::E2, &frame(1)), MsgClass::E2Indication);
        assert_eq!(classify(LinkId::E2, b"garbage"), MsgClass::Unknown);
        assert_eq!(classify(LinkId::A1, &[0xFF, 0xFE]), MsgClass::Unknown);
    }

    #[test]
    fn zero_rate_plan_is_transparent_even_armed() {
        let (peer, wrapped, plan) = armed_pair(ChaosConfig::uniform(9, LaneConfig::off()));
        // Disabled config: arm() is a no-op, traffic passes bit-exact.
        for i in 0..50 {
            peer.send(frame(i)).unwrap();
        }
        let got = wrapped.drain().unwrap();
        assert_eq!(got.len(), 50);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &frame(i as u64));
        }
        wrapped.send(frame(99)).unwrap();
        assert_eq!(peer.try_recv().unwrap().unwrap(), frame(99));
        assert!(plan.ledger().is_empty());
    }

    #[test]
    fn identical_seeds_produce_identical_schedules_and_ledgers() {
        let run = |seed: u64| {
            let cfg = ChaosConfig::all_kinds(seed, 0.2);
            let (peer, wrapped, plan) = armed_pair(cfg);
            for i in 0..200 {
                peer.send(frame(i)).unwrap();
            }
            let survivors = wrapped.drain().unwrap();
            (survivors, plan.ledger().records())
        };
        let (s1, l1) = run(42);
        let (s2, l2) = run(42);
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
        assert!(!l1.is_empty(), "0.2 rates over 200 frames must inject something");
        let (s3, l3) = run(43);
        assert!(s3 != s1 || l3 != l1, "different seeds must differ somewhere");
    }

    #[test]
    fn duplicate_delivers_each_frame_twice_in_order() {
        let lane = LaneConfig { duplicate: 1.0, ..LaneConfig::off() };
        let (peer, wrapped, plan) = armed_pair(ChaosConfig::uniform(1, lane));
        for i in 0..3 {
            peer.send(frame(i)).unwrap();
        }
        let got = wrapped.drain().unwrap();
        let want: Vec<Bytes> = [0u64, 0, 1, 1, 2, 2].iter().map(|&i| frame(i)).collect();
        assert_eq!(got, want);
        assert_eq!(plan.ledger().count_kind(FaultKind::Duplicate), 3);
    }

    #[test]
    fn drop_rate_one_loses_everything_and_ledgers_everything() {
        let lane = LaneConfig { drop: 1.0, ..LaneConfig::off() };
        let (peer, wrapped, plan) = armed_pair(ChaosConfig::uniform(1, lane));
        for i in 0..10 {
            peer.send(frame(i)).unwrap();
        }
        assert!(wrapped.drain().unwrap().is_empty());
        assert_eq!(plan.ledger().count_kind(FaultKind::Drop), 10);
        // All were indications: every drop is degrading.
        assert_eq!(plan.ledger().degrading_count(), 10);
    }

    #[test]
    fn delay_holds_frames_and_releases_them_in_order() {
        let lane = LaneConfig { delay: 1.0, delay_ops: 2, ..LaneConfig::off() };
        let (peer, wrapped, plan) = armed_pair(ChaosConfig::uniform(1, lane));
        peer.send(frame(0)).unwrap();
        peer.send(frame(1)).unwrap();
        // Op 1: both frames get delayed (release at op 3), nothing out.
        assert!(wrapped.try_recv().unwrap().is_none());
        // Op 2: still held.
        assert!(wrapped.try_recv().unwrap().is_none());
        // Ops 3 and 4: released in their original order, unfaulted.
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(0));
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(1));
        assert!(wrapped.try_recv().unwrap().is_none());
        assert_eq!(plan.ledger().count_kind(FaultKind::Delay), 2);
    }

    #[test]
    fn reorder_swaps_adjacent_frames_only_when_a_successor_exists() {
        let lane = LaneConfig { reorder: 1.0, ..LaneConfig::off() };
        let (peer, wrapped, plan) = armed_pair(ChaosConfig::uniform(1, lane));
        peer.send(frame(0)).unwrap();
        peer.send(frame(1)).unwrap();
        // Swap: successor first, victim re-delivered next op.
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(1));
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(0));
        assert_eq!(plan.ledger().count_kind(FaultKind::Reorder), 1);
        // A lone frame has nothing to swap with: delivered, unrecorded.
        peer.send(frame(2)).unwrap();
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(2));
        assert_eq!(plan.ledger().count_kind(FaultKind::Reorder), 1);
        assert_eq!(plan.ledger().degrading_count(), 0);
    }

    #[test]
    fn corrupted_e2_frames_always_fail_to_decode_and_stream_resyncs() {
        use bytes::BytesMut;
        let msgs = [
            E2Codec::encode_to_bytes(&E2Message::ControlAck),
            E2Codec::encode_to_bytes(&E2Message::ControlRequest { airtime_milli: 500, max_mcs: 9 }),
            frame(7),
        ];
        for msg in &msgs {
            for flip in [true, false] {
                for pos in [0u64, 1, 5, 17, 9999] {
                    let (mangled, kind, _) = corrupt_payload(LinkId::E2, msg, flip, pos);
                    let mut buf = BytesMut::new();
                    buf.extend_from_slice(&mangled);
                    // Append a good frame: the corruption must stay
                    // confined so the stream resynchronizes.
                    E2Codec::encode(&E2Message::ControlAck, &mut buf);
                    let first = E2Codec::decode(&mut buf);
                    assert!(
                        matches!(first, Err(OranError::Codec(_)) | Err(OranError::Framing(_))),
                        "{kind:?} at {pos} must invalidate, got {first:?}"
                    );
                    assert_eq!(E2Codec::decode(&mut buf).unwrap(), Some(E2Message::ControlAck));
                }
            }
        }
    }

    #[test]
    fn corrupted_a1_frames_always_fail_to_parse() {
        let msg = A1Message::KpiSample { t_ms: 17, bs_power_mw: 5000 }.to_json();
        for flip in [true, false] {
            for pos in [0u64, 3, 11, 1000] {
                let (mangled, kind, _) = corrupt_payload(LinkId::A1, msg.as_bytes(), flip, pos);
                let parsed = std::str::from_utf8(&mangled)
                    .map_err(|e| OranError::Codec(e.to_string()))
                    .and_then(A1Message::from_json);
                assert!(parsed.is_err(), "{kind:?} at {pos} must invalidate");
            }
        }
    }

    #[test]
    fn link_cut_latches_once_and_fails_every_later_op() {
        let cfg = ChaosConfig::disabled().with_cut(LinkId::E2, 3);
        let plan = ChaosPlan::new(cfg);
        let (peer, b) = duplex_pair();
        let wrapped = plan.wrap(b, LinkId::E2);
        plan.arm();
        peer.send(frame(0)).unwrap();
        // Three operations pass, then the link dies for good.
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(0));
        wrapped.send(frame(1)).unwrap();
        assert!(wrapped.try_recv().unwrap().is_none());
        for _ in 0..4 {
            assert!(matches!(wrapped.try_recv(), Err(OranError::ChannelClosed(_))));
            assert!(matches!(wrapped.send(frame(9)), Err(OranError::ChannelClosed(_))));
        }
        let cuts: Vec<_> =
            plan.ledger().records().into_iter().filter(|r| r.kind == FaultKind::LinkCut).collect();
        assert_eq!(cuts.len(), 1, "the cut is ledgered exactly once");
        assert!(!cuts[0].heals, "a permanent cut does not heal");
        assert_eq!(plan.ledger().degrading_count(), 0, "an unhealed cut is fatal, not degrading");
    }

    #[test]
    fn healing_cut_fails_inside_the_window_and_passes_after() {
        // Cut at op 2, heal 3 ops later: ops 0–1 pass, 2–4 fail, 5+ pass.
        let cfg = ChaosConfig::disabled().with_cut(LinkId::E2, 2).with_heal(3);
        let plan = ChaosPlan::new(cfg);
        let (peer, b) = duplex_pair();
        let wrapped = plan.wrap(b, LinkId::E2);
        plan.arm();
        peer.send(frame(0)).unwrap();
        peer.send(frame(1)).unwrap();
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(0)); // op 0
        wrapped.send(frame(9)).unwrap(); // op 1
        for _ in 0..3 {
            // Ops 2, 3, 4: the outage window.
            assert!(matches!(wrapped.try_recv(), Err(OranError::ChannelClosed(_))));
        }
        // Op 5: healed — the pre-cut frame is still queued and comes out.
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(1));
        wrapped.send(frame(10)).unwrap();
        assert_eq!(peer.try_recv().unwrap().unwrap(), frame(9));
        assert_eq!(peer.try_recv().unwrap().unwrap(), frame(10));
        let cuts: Vec<_> =
            plan.ledger().records().into_iter().filter(|r| r.kind == FaultKind::LinkCut).collect();
        assert_eq!(cuts.len(), 1, "a healing cut is still ledgered exactly once");
        assert!(cuts[0].heals);
        assert_eq!(plan.ledger().degrading_count(), 1, "a healed outage counts as degrading");
    }

    #[test]
    fn unarmed_plan_injects_nothing() {
        let plan = ChaosPlan::new(ChaosConfig::all_kinds(5, 1.0));
        let (peer, b) = duplex_pair();
        let wrapped = plan.wrap(b, LinkId::E2);
        // Not armed: even rate-1.0 lanes are transparent.
        peer.send(frame(0)).unwrap();
        assert_eq!(wrapped.try_recv().unwrap().unwrap(), frame(0));
        assert!(plan.ledger().is_empty());
        assert!(!plan.is_armed());
    }

    #[test]
    fn chaos_framed_tcp_duplicates_deterministically() {
        let lane = LaneConfig { duplicate: 1.0, ..LaneConfig::off() };
        let plan = ChaosPlan::new(ChaosConfig::uniform(3, lane));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let mut got = Vec::new();
            for _ in 0..4 {
                got.push(t.recv().unwrap());
            }
            got
        });
        let client = FramedTcp::connect(&addr.to_string()).unwrap();
        let mut chaotic = plan.wrap_tcp(client, LinkId::E2);
        plan.arm();
        chaotic.send(&frame(0)).unwrap();
        chaotic.send(&frame(1)).unwrap();
        let got = server.join().unwrap();
        assert_eq!(got, vec![frame(0), frame(0), frame(1), frame(1)]);
        assert_eq!(plan.ledger().count_kind(FaultKind::Duplicate), 2);
    }

    #[test]
    fn from_spec_parses_the_env_knob() {
        let cfg = ChaosConfig::from_spec("seed=7, rate=0.1, dup=0.05, cut=e2@120").unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.a1_tx.drop, 0.1);
        assert_eq!(cfg.e2_rx.corrupt, 0.1);
        assert_eq!(cfg.a1_rx.duplicate, 0.05);
        assert_eq!(cfg.cut, Some((LinkId::E2, 120)));
        assert!(cfg.enabled());
        assert!(ChaosConfig::from_spec("").unwrap() == ChaosConfig::uniform(1, LaneConfig::off()));
        assert!(ChaosConfig::from_spec("bogus").is_err());
        assert!(ChaosConfig::from_spec("drop=x").is_err());
        assert!(ChaosConfig::from_spec("cut=lte@5").is_err());
    }

    #[test]
    fn from_spec_parses_healing_cuts_and_rejects_invalid_ones() {
        let cfg = ChaosConfig::from_spec("cut=e2@40,heal=e2@25").unwrap();
        assert_eq!(cfg.cut, Some((LinkId::E2, 40)));
        assert_eq!(cfg.heal, Some(25));
        assert!(cfg.enabled());
        // Spec order must not matter.
        let swapped = ChaosConfig::from_spec("heal=e2@25,cut=e2@40").unwrap();
        assert_eq!(swapped, cfg);
        // heal without a cut.
        let e = ChaosConfig::from_spec("heal=e2@10").unwrap_err();
        assert!(e.contains("requires a matching cut"), "got: {e}");
        // heal on the wrong link.
        let e = ChaosConfig::from_spec("cut=e2@40,heal=a1@10").unwrap_err();
        assert!(e.contains("does not match the cut link"), "got: {e}");
        // heal window must be positive; negatives are not op counts.
        let e = ChaosConfig::from_spec("cut=e2@40,heal=e2@0").unwrap_err();
        assert!(e.contains("must be positive"), "got: {e}");
        assert!(ChaosConfig::from_spec("cut=e2@40,heal=e2@-3").is_err());
        assert!(ChaosConfig::from_spec("heal=lte@5,cut=e2@1").is_err());
        assert!(ChaosConfig::from_spec("heal=e2").is_err());
    }

    #[test]
    fn reseeded_changes_the_stream_deterministically() {
        let base = ChaosConfig::all_kinds(11, 0.3);
        let a = base.reseeded(1);
        let b = base.reseeded(1);
        let c = base.reseeded(2);
        assert_eq!(a, b);
        assert_ne!(a.seed, c.seed);
        assert_ne!(a.seed, base.seed);
    }
}

//! The RIC actors of Fig. 7: non-RT RIC (rApps), near-RT RIC (xApps) and
//! the O-eNB's E2 agent.
//!
//! All actors are synchronous and poll-driven: each `poll()` drains the
//! actor's inbound endpoints, reacts, and pushes outbound messages. The
//! orchestrator (in `edgebol-core`) polls the chain once per decision; the
//! networked example wraps the same actors in threads over TCP.

use crate::a1::{A1Message, PolicyId, PolicyStatus, RadioPolicy};
use crate::e2::{E2Codec, E2Message, KpiReport, RAN_FUNC_KPI};
use crate::reactor::{Reactor, ReactorLink, ReactorListener};
use crate::transport::{Endpoint, Link};
use crate::OranError;
use bytes::{Bytes, BytesMut};
use edgebol_metrics::{Counter, Gauge, Registry};
use std::collections::HashMap;

/// Events the non-RT RIC surfaces to the learning agent.
#[derive(Debug, Clone, PartialEq)]
pub enum RicEvent {
    /// Policy feedback arrived.
    PolicyFeedback { policy_id: PolicyId, status: PolicyStatus },
    /// A vBS KPI sample arrived via the data-collector rApp.
    Kpi { t_ms: u64, bs_power_w: f64 },
}

/// The non-RT RIC hosting EdgeBOL's two rApps: the policy service and the
/// data collector.
///
/// Generic over the [`Link`] carrying A1 so a fault-injecting
/// [`crate::chaos::ChaosEndpoint`] can stand in for the plain
/// [`Endpoint`] (the default).
#[derive(Debug)]
pub struct NonRtRic<L: Link = Endpoint> {
    a1: L,
    next_policy_seq: u64,
    /// Deployed policies awaiting feedback.
    pending: HashMap<PolicyId, RadioPolicy>,
    /// Policies confirmed enforced.
    enforced: HashMap<PolicyId, RadioPolicy>,
}

impl<L: Link> NonRtRic<L> {
    /// Creates the RIC over its A1 endpoint toward the near-RT RIC.
    pub fn new(a1: L) -> Self {
        NonRtRic { a1, next_policy_seq: 0, pending: HashMap::new(), enforced: HashMap::new() }
    }

    /// Deploys a radio policy; returns its instance id.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the A1 link is down.
    pub fn put_policy(&mut self, policy: RadioPolicy) -> Result<PolicyId, OranError> {
        let id = PolicyId(format!("edgebol-{}", self.next_policy_seq));
        self.next_policy_seq += 1;
        let msg = A1Message::PutPolicy {
            policy_id: id.clone(),
            policy_type: crate::a1::A1_POLICY_TYPE_RADIO,
            policy,
        };
        self.a1.send(Bytes::from(msg.to_json()))?;
        self.pending.insert(id.clone(), policy);
        Ok(id)
    }

    /// Number of policies confirmed enforced so far.
    pub fn enforced_count(&self) -> usize {
        self.enforced.len()
    }

    /// Resync step after a session loss: drains and discards stale A1
    /// frames from the dead session and forgets deployed-but-unconfirmed
    /// policies (the supervisor re-pushes the last acknowledged policy
    /// under a fresh id). Returns the number of frames discarded.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the A1 link is still down and
    /// nothing was pending — the resync attempt fails and the supervisor
    /// backs off.
    pub fn reset_session(&mut self) -> Result<usize, OranError> {
        let discarded = self.a1.drain()?.len();
        self.pending.clear();
        Ok(discarded)
    }

    /// Drains A1 feedback and KPI samples.
    ///
    /// # Errors
    /// Propagates transport and JSON errors (a malformed peer).
    pub fn poll(&mut self) -> Result<Vec<RicEvent>, OranError> {
        let mut events = Vec::new();
        while let Some(raw) = self.a1.try_recv()? {
            let text = std::str::from_utf8(&raw)
                .map_err(|e| OranError::Codec(format!("non-UTF8 A1 frame: {e}")))?;
            match A1Message::from_json(text)? {
                A1Message::Feedback { policy_id, status } => {
                    if status == PolicyStatus::Enforced {
                        if let Some(p) = self.pending.remove(&policy_id) {
                            self.enforced.insert(policy_id.clone(), p);
                        }
                    } else {
                        self.pending.remove(&policy_id);
                    }
                    events.push(RicEvent::PolicyFeedback { policy_id, status });
                }
                A1Message::KpiSample { t_ms, bs_power_mw } => {
                    events.push(RicEvent::Kpi { t_ms, bs_power_w: bs_power_mw as f64 / 1000.0 });
                }
                other => {
                    return Err(OranError::Handshake(format!(
                        "unexpected A1 message at non-RT RIC: {other:?}"
                    )))
                }
            }
        }
        Ok(events)
    }
}

/// The near-RT RIC: terminates A1 from above and E2 toward the O-eNB.
///
/// Generic over both [`Link`]s; the chaos harness wraps exactly these two
/// endpoints, which covers all four fault lanes (every control-plane
/// message transits the near-RT RIC).
#[derive(Debug)]
pub struct NearRtRic<A: Link = Endpoint, E: Link = Endpoint> {
    a1: A,
    e2: E,
    e2_rx_buf: BytesMut,
    /// Policy awaiting a `ControlAck` from the node.
    awaiting_ack: Option<PolicyId>,
}

impl<A: Link, E: Link> NearRtRic<A, E> {
    /// Creates the xApp pair over its two endpoints.
    pub fn new(a1: A, e2: E) -> Self {
        NearRtRic { a1, e2, e2_rx_buf: BytesMut::new(), awaiting_ack: None }
    }

    /// Subscribes to the node's KPI stream (done once at start-up).
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the E2 link is down.
    pub fn subscribe_kpis(&mut self, period_ms: u32) -> Result<(), OranError> {
        let msg = E2Message::SubscriptionRequest {
            ran_function: RAN_FUNC_KPI,
            report_period_ms: period_ms,
        };
        self.e2.send(E2Codec::encode_to_bytes(&msg))
    }

    /// Resync step after a session loss: drains and discards stale
    /// frames on both links, clears the partial E2 reassembly buffer and
    /// forgets the in-flight ack (the dead session's `ControlAck` must
    /// not confirm a policy pushed under the new epoch). Returns the
    /// number of frames discarded.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when a link is still down and had
    /// nothing pending — the resync attempt fails and the supervisor
    /// backs off.
    pub fn reset_session(&mut self) -> Result<usize, OranError> {
        let discarded = self.a1.drain()?.len() + self.e2.drain()?.len();
        self.e2_rx_buf.clear();
        self.awaiting_ack = None;
        Ok(discarded)
    }

    /// Outage keepalive: one receive attempt per link, discarding
    /// whatever surfaces (anything arriving mid-outage belongs to the
    /// dead session). Errors are swallowed — a cut link is exactly the
    /// expected case. Returns the number of frames discarded.
    ///
    /// The orchestrator calls this once per local-autonomy period so the
    /// links' operation clocks keep ticking during an outage: a healing
    /// window expressed in operations (`heal=e2@M`) elapses even though
    /// no control-plane round trips run.
    pub fn probe_links(&mut self) -> usize {
        let mut discarded = 0;
        if let Ok(Some(_)) = self.a1.try_recv() {
            discarded += 1;
        }
        if let Ok(Some(_)) = self.e2.try_recv() {
            discarded += 1;
        }
        discarded
    }

    /// One poll round: translate inbound A1 policies to E2 control, and
    /// inbound E2 indications to A1 KPI samples / feedback.
    ///
    /// # Errors
    /// Propagates transport/codec/JSON failures.
    pub fn poll(&mut self) -> Result<(), OranError> {
        // A1 (from non-RT RIC) -> E2 control.
        while let Some(raw) = self.a1.try_recv()? {
            let text = std::str::from_utf8(&raw)
                .map_err(|e| OranError::Codec(format!("non-UTF8 A1 frame: {e}")))?;
            match A1Message::from_json(text)? {
                A1Message::PutPolicy { policy_id, policy, .. } => {
                    if !policy.is_valid() {
                        let fb = A1Message::Feedback { policy_id, status: PolicyStatus::Rejected };
                        self.a1.send(Bytes::from(fb.to_json()))?;
                        continue;
                    }
                    let ctrl = E2Message::ControlRequest {
                        airtime_milli: (policy.airtime * 1000.0).round() as u16,
                        max_mcs: policy.max_mcs,
                    };
                    self.e2.send(E2Codec::encode_to_bytes(&ctrl))?;
                    self.awaiting_ack = Some(policy_id);
                }
                A1Message::DeletePolicy { policy_id } => {
                    let fb = A1Message::Feedback { policy_id, status: PolicyStatus::Deleted };
                    self.a1.send(Bytes::from(fb.to_json()))?;
                }
                other => {
                    return Err(OranError::Handshake(format!(
                        "unexpected A1 message at near-RT RIC: {other:?}"
                    )))
                }
            }
        }
        // E2 (from node) -> A1 upstream.
        while let Some(raw) = self.e2.try_recv()? {
            self.e2_rx_buf.extend_from_slice(&raw);
        }
        while let Some(msg) = E2Codec::decode(&mut self.e2_rx_buf)? {
            match msg {
                E2Message::ControlAck => {
                    if let Some(policy_id) = self.awaiting_ack.take() {
                        let fb = A1Message::Feedback { policy_id, status: PolicyStatus::Enforced };
                        self.a1.send(Bytes::from(fb.to_json()))?;
                    }
                }
                E2Message::Indication(k) => {
                    let up = A1Message::KpiSample { t_ms: k.t_ms, bs_power_mw: k.bs_power_mw };
                    self.a1.send(Bytes::from(up.to_json()))?;
                }
                E2Message::SubscriptionResponse { .. } => {}
                other => {
                    return Err(OranError::Handshake(format!(
                        "unexpected E2 message at near-RT RIC: {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// The O-eNB's E2 agent: applies control requests through a hook into the
/// MAC (in this workspace, the testbed's scheduler) and emits KPI
/// indications when asked.
pub struct E2Node<L: Link = Endpoint> {
    e2: L,
    rx_buf: BytesMut,
    /// Applied radio policy hook.
    apply: Box<dyn FnMut(RadioPolicy) + Send>,
    /// Whether a KPI subscription is active.
    subscribed: bool,
}

impl<L: Link> std::fmt::Debug for E2Node<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("E2Node").field("subscribed", &self.subscribed).finish()
    }
}

impl<L: Link> E2Node<L> {
    /// Creates the agent with a policy-application hook.
    pub fn new(e2: L, apply: Box<dyn FnMut(RadioPolicy) + Send>) -> Self {
        E2Node { e2, rx_buf: BytesMut::new(), apply, subscribed: false }
    }

    /// Whether a KPI subscription is active.
    pub fn is_subscribed(&self) -> bool {
        self.subscribed
    }

    /// Resync step after a session loss: drains and discards stale E2
    /// frames, clears the partial reassembly buffer and drops the KPI
    /// subscription (a stale `ControlRequest` from the dead session must
    /// not be applied; the near-RT RIC re-subscribes under the new
    /// epoch). Returns the number of frames discarded.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the E2 link is still down and
    /// nothing was pending — the resync attempt fails and the supervisor
    /// backs off.
    pub fn reset_session(&mut self) -> Result<usize, OranError> {
        let discarded = self.e2.drain()?.len();
        self.rx_buf.clear();
        self.subscribed = false;
        Ok(discarded)
    }

    /// Drains inbound E2 traffic, applying control requests.
    ///
    /// # Errors
    /// Propagates transport/codec failures.
    pub fn poll(&mut self) -> Result<(), OranError> {
        while let Some(raw) = self.e2.try_recv()? {
            self.rx_buf.extend_from_slice(&raw);
        }
        while let Some(msg) = E2Codec::decode(&mut self.rx_buf)? {
            match msg {
                E2Message::SubscriptionRequest { ran_function, .. } => {
                    self.subscribed = true;
                    let resp = E2Message::SubscriptionResponse { ran_function };
                    self.e2.send(E2Codec::encode_to_bytes(&resp))?;
                }
                E2Message::ControlRequest { airtime_milli, max_mcs } => {
                    (self.apply)(RadioPolicy { airtime: airtime_milli as f64 / 1000.0, max_mcs });
                    self.e2.send(E2Codec::encode_to_bytes(&E2Message::ControlAck))?;
                }
                other => {
                    return Err(OranError::Handshake(format!(
                        "unexpected E2 message at node: {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Emits one KPI indication (called by the vBS once per report period
    /// when subscribed).
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the E2 link is down.
    pub fn indicate(&mut self, kpi: KpiReport) -> Result<(), OranError> {
        if !self.subscribed {
            return Ok(()); // No subscriber; the sample is dropped.
        }
        self.e2.send(E2Codec::encode_to_bytes(&E2Message::Indication(kpi)))
    }
}

/// One E2 session the [`RicServer`] supervises: the reactor-managed link
/// plus its protocol state (mirror of what [`NearRtRic`] tracks for its
/// single node, kept per-session here).
#[derive(Debug)]
struct E2Session {
    id: u64,
    link: ReactorLink,
    rx_buf: BytesMut,
    subscribed: bool,
}

/// Aggregate outcome of one [`RicServer::poll`] round.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RicServerRound {
    /// Connections accepted (and immediately subscribed) this round.
    pub accepted: usize,
    /// KPI indications decoded across all sessions this round.
    pub kpis: usize,
    /// Control acks decoded across all sessions this round.
    pub acks: usize,
    /// Sessions that died this round (peer hangup or fatal error).
    pub closed: usize,
}

/// The multi-node near-RT RIC front end: one [`Reactor`] thread
/// multiplexing every E2 session instead of one blocking pair per node.
///
/// E2 nodes connect to the bound address; each accepted session is
/// KPI-subscribed on arrival, and [`RicServer::poll`] drives one reactor
/// turn then drains every session's frames — decoding indications and
/// acks, reaping dead sessions. Policies fan out with
/// [`RicServer::broadcast_policy`]. All counters flow through
/// [`edgebol_metrics`]; the 64-node CI smoke test and the N-node example
/// read periods/sec off exactly these series.
#[derive(Debug)]
pub struct RicServer {
    reactor: Reactor,
    listener: ReactorListener,
    sessions: Vec<E2Session>,
    next_session_id: u64,
    kpi_period_ms: u32,
    m_periods: Counter,
    m_kpis: Counter,
    m_acks: Counter,
    m_closed: Counter,
    g_sessions: Gauge,
}

impl RicServer {
    /// Binds the E2 accept socket on `addr` (use port 0 to let the OS
    /// pick) over a dedicated reactor; `kpi_period_ms` is the report
    /// period each new session is subscribed with.
    ///
    /// # Errors
    /// [`OranError::Io`] when binding or reactor setup fails.
    pub fn bind(addr: &str, kpi_period_ms: u32, metrics: Registry) -> Result<Self, OranError> {
        let reactor = Reactor::new_instrumented(metrics.clone())?;
        let listener = reactor.bind(addr)?;
        metrics.describe("edgebol_oran_ricserver_periods_total", "RicServer poll calls");
        metrics.describe("edgebol_oran_ricserver_kpi_total", "KPI reports received from E2 nodes");
        metrics.describe("edgebol_oran_ricserver_acks_total", "Control acknowledgements received");
        metrics.describe(
            "edgebol_oran_ricserver_sessions_closed_total",
            "E2 sessions reaped on hangup",
        );
        metrics.describe("edgebol_oran_ricserver_sessions", "E2 sessions currently subscribed");
        Ok(RicServer {
            reactor,
            listener,
            sessions: Vec::new(),
            next_session_id: 0,
            kpi_period_ms,
            m_periods: metrics.counter("edgebol_oran_ricserver_periods_total"),
            m_kpis: metrics.counter("edgebol_oran_ricserver_kpi_total"),
            m_acks: metrics.counter("edgebol_oran_ricserver_acks_total"),
            m_closed: metrics.counter("edgebol_oran_ricserver_sessions_closed_total"),
            g_sessions: metrics.gauge("edgebol_oran_ricserver_sessions"),
        })
    }

    /// The bound accept address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr()
    }

    /// Live E2 sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The reactor multiplexing this server's sessions (shared handle —
    /// e.g. to co-register client-side links in single-process tests).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Hosts the HTTP ops surface on this server's reactor: the same
    /// thread that multiplexes every E2 session also answers operator
    /// `GET /metrics`, `/healthz`, `/vars` and `/trace` — no extra
    /// thread, no extra event loop. Keep the returned listener alive for
    /// as long as the endpoint should accept connections; requests are
    /// serviced inside [`RicServer::poll`]'s reactor turn.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn serve_ops(
        &self,
        addr: &str,
        state: crate::ops::OpsState,
    ) -> std::io::Result<ReactorListener> {
        crate::ops::serve_on(&self.reactor, addr, state)
    }

    /// One server round: drive a reactor turn (flush + readiness +
    /// reads), claim newly accepted sessions and subscribe them to KPIs,
    /// then drain and decode every session's inbound frames. Sessions
    /// whose link died are reaped (their queued traffic was drained
    /// first — the [`Link::drain`] contract). Never blocks longer than
    /// `timeout_ms` in the readiness wait.
    pub fn poll(&mut self, timeout_ms: u32) -> RicServerRound {
        self.m_periods.inc();
        self.reactor.turn(timeout_ms);
        let mut round = RicServerRound::default();
        while let Some(link) = self.listener.accept() {
            let sub = E2Message::SubscriptionRequest {
                ran_function: RAN_FUNC_KPI,
                report_period_ms: self.kpi_period_ms,
            };
            if link.send(E2Codec::encode_to_bytes(&sub)).is_ok() {
                let id = self.next_session_id;
                self.next_session_id += 1;
                self.sessions.push(E2Session {
                    id,
                    link,
                    rx_buf: BytesMut::new(),
                    subscribed: false,
                });
                round.accepted += 1;
            }
        }
        let mut dead = Vec::new();
        for s in &mut self.sessions {
            let mut session_dead = false;
            loop {
                match s.link.try_recv() {
                    Ok(Some(raw)) => s.rx_buf.extend_from_slice(&raw),
                    Ok(None) => break,
                    Err(_) => {
                        session_dead = true;
                        break;
                    }
                }
            }
            loop {
                match E2Codec::decode(&mut s.rx_buf) {
                    Ok(Some(E2Message::SubscriptionResponse { .. })) => s.subscribed = true,
                    Ok(Some(E2Message::Indication(_))) => round.kpis += 1,
                    Ok(Some(E2Message::ControlAck)) => round.acks += 1,
                    // Messages only a RIC sends (requests) arriving here
                    // mean a confused peer: drop the frame, keep the
                    // session — message damage is not session-fatal.
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        session_dead = true;
                        break;
                    }
                }
            }
            if session_dead {
                dead.push(s.id);
            }
        }
        round.closed = dead.len();
        self.sessions.retain(|s| !dead.contains(&s.id));
        self.m_kpis.add(round.kpis as u64);
        self.m_acks.add(round.acks as u64);
        self.m_closed.add(round.closed as u64);
        self.g_sessions.set(self.sessions.len() as f64);
        round
    }

    /// Fans one radio policy out to every live session as an E2
    /// `ControlRequest`. Returns how many sessions it reached; sessions
    /// whose send fails are left for the next [`RicServer::poll`] to
    /// reap (their inbound side will report the close).
    pub fn broadcast_policy(&mut self, policy: RadioPolicy) -> usize {
        let ctrl = E2Message::ControlRequest {
            airtime_milli: (policy.airtime * 1000.0).round() as u16,
            max_mcs: policy.max_mcs,
        };
        let frame = E2Codec::encode_to_bytes(&ctrl);
        self.sessions.iter().filter(|s| s.link.send(frame.clone()).is_ok()).count()
    }

    /// Sessions that completed the KPI subscription handshake.
    pub fn subscribed_count(&self) -> usize {
        self.sessions.iter().filter(|s| s.subscribed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_pair;
    use std::sync::{Arc, Mutex};

    /// Builds the full chain: NonRtRic =A1= NearRtRic =E2= E2Node.
    fn chain() -> (NonRtRic, NearRtRic, E2Node, Arc<Mutex<Vec<RadioPolicy>>>) {
        let (a1_up, a1_down) = duplex_pair();
        let (e2_up, e2_down) = duplex_pair();
        let applied = Arc::new(Mutex::new(Vec::new()));
        let applied2 = applied.clone();
        let node = E2Node::new(e2_down, Box::new(move |p| applied2.lock().unwrap().push(p)));
        (NonRtRic::new(a1_up), NearRtRic::new(a1_down, e2_up), node, applied)
    }

    #[test]
    fn policy_flows_a1_to_e2_to_mac() {
        let (mut nonrt, mut nearrt, mut node, applied) = chain();
        let p = RadioPolicy { airtime: 0.35, max_mcs: 17 };
        let id = nonrt.put_policy(p).unwrap();
        nearrt.poll().unwrap(); // A1 -> E2
        node.poll().unwrap(); // E2 -> apply + ack
        nearrt.poll().unwrap(); // ack -> A1 feedback
        let events = nonrt.poll().unwrap();
        assert_eq!(applied.lock().unwrap().as_slice(), &[p]);
        assert_eq!(
            events,
            vec![RicEvent::PolicyFeedback { policy_id: id, status: PolicyStatus::Enforced }]
        );
        assert_eq!(nonrt.enforced_count(), 1);
    }

    #[test]
    fn invalid_policy_is_rejected_without_reaching_the_node() {
        let (mut nonrt, mut nearrt, mut node, applied) = chain();
        let bad = RadioPolicy { airtime: 1.5, max_mcs: 99 };
        let id = nonrt.put_policy(bad).unwrap();
        nearrt.poll().unwrap();
        node.poll().unwrap();
        nearrt.poll().unwrap();
        let events = nonrt.poll().unwrap();
        assert!(applied.lock().unwrap().is_empty());
        assert_eq!(
            events,
            vec![RicEvent::PolicyFeedback { policy_id: id, status: PolicyStatus::Rejected }]
        );
        assert_eq!(nonrt.enforced_count(), 0);
    }

    #[test]
    fn kpi_indications_reach_the_learning_agent() {
        let (mut nonrt, mut nearrt, mut node, _) = chain();
        nearrt.subscribe_kpis(1000).unwrap();
        node.poll().unwrap(); // subscription handled
        assert!(node.is_subscribed());
        node.indicate(KpiReport {
            t_ms: 42,
            bs_power_mw: 5_500,
            duty_milli: 200,
            mean_mcs_centi: 2_800,
        })
        .unwrap();
        nearrt.poll().unwrap();
        let events = nonrt.poll().unwrap();
        assert_eq!(events, vec![RicEvent::Kpi { t_ms: 42, bs_power_w: 5.5 }]);
    }

    #[test]
    fn unsubscribed_indications_are_dropped() {
        let (mut nonrt, mut nearrt, mut node, _) = chain();
        node.indicate(KpiReport { t_ms: 1, bs_power_mw: 1, duty_milli: 0, mean_mcs_centi: 0 })
            .unwrap();
        nearrt.poll().unwrap();
        assert!(nonrt.poll().unwrap().is_empty());
    }

    #[test]
    fn delete_policy_round_trip() {
        let (mut nonrt, mut nearrt, _node, _) = chain();
        // Deploy then delete; the near-RT RIC acknowledges deletion.
        let p = RadioPolicy { airtime: 0.5, max_mcs: 10 };
        let id = nonrt.put_policy(p).unwrap();
        let msg = A1Message::DeletePolicy { policy_id: id.clone() };
        nonrt.a1.send(Bytes::from(msg.to_json())).unwrap();
        nearrt.poll().unwrap();
        // Two A1 messages pending at non-RT: none for the put (no ack yet,
        // node never polled) and one Deleted feedback.
        let events = nonrt.poll().unwrap();
        assert!(events.iter().any(|e| *e
            == RicEvent::PolicyFeedback { policy_id: id.clone(), status: PolicyStatus::Deleted }));
    }

    #[test]
    fn reset_session_discards_stale_state_across_the_chain() {
        let (mut nonrt, mut nearrt, mut node, applied) = chain();
        nearrt.subscribe_kpis(1000).unwrap();
        node.poll().unwrap();
        assert!(node.is_subscribed());
        // Deploy a policy and stop mid-flight: the ControlRequest is
        // queued toward the node when the session dies.
        nonrt.put_policy(RadioPolicy { airtime: 0.4, max_mcs: 9 }).unwrap();
        nearrt.poll().unwrap();
        assert_eq!(node.reset_session().unwrap(), 1, "stale ControlRequest discarded");
        assert!(!node.is_subscribed(), "subscription does not survive the session");
        assert_eq!(nearrt.reset_session().unwrap(), 0);
        assert_eq!(nonrt.reset_session().unwrap(), 0);
        // The discarded request is never applied, even after new polls.
        node.poll().unwrap();
        assert!(applied.lock().unwrap().is_empty());
        // The chain re-handshakes cleanly under the new session.
        nearrt.subscribe_kpis(1000).unwrap();
        node.poll().unwrap();
        assert!(node.is_subscribed());
    }

    #[test]
    fn probe_links_discards_and_survives_dead_links() {
        let (mut nonrt, mut nearrt, mut node, _) = chain();
        nearrt.subscribe_kpis(1000).unwrap();
        node.poll().unwrap();
        node.indicate(KpiReport { t_ms: 9, bs_power_mw: 10, duty_milli: 0, mean_mcs_centi: 0 })
            .unwrap();
        // Two E2 frames are queued (SubscriptionResponse, Indication):
        // each probe discards at most one per link.
        assert_eq!(nearrt.probe_links(), 1);
        assert!(nonrt.poll().unwrap().is_empty());
        // Dead peers: probing must not error; queued traffic still
        // surfaces (and is discarded), then the dead links yield nothing.
        drop(nonrt);
        drop(node);
        assert_eq!(nearrt.probe_links(), 1);
        assert_eq!(nearrt.probe_links(), 0);
    }

    #[test]
    fn sequential_policies_get_distinct_ids() {
        let (mut nonrt, _nearrt, _node, _) = chain();
        let a = nonrt.put_policy(RadioPolicy { airtime: 0.1, max_mcs: 1 }).unwrap();
        let b = nonrt.put_policy(RadioPolicy { airtime: 0.2, max_mcs: 2 }).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ric_server_multiplexes_many_nodes_on_one_thread() {
        use crate::transport::FramedTcp;
        use std::time::{Duration, Instant};

        const NODES: usize = 8;
        let reg = Registry::new();
        let mut server = RicServer::bind("127.0.0.1:0", 1_000, reg.clone()).expect("bind");
        let addr = server.local_addr().to_string();

        // Each "node" is a blocking client thread speaking framed E2:
        // answer the subscription, emit one KPI, ack one control request.
        let handles: Vec<_> = (0..NODES)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut tcp = FramedTcp::connect(&addr).expect("connect");
                    let mut buf = BytesMut::new();
                    buf.extend_from_slice(&tcp.recv().expect("sub req"));
                    match E2Codec::decode(&mut buf).expect("decode") {
                        Some(E2Message::SubscriptionRequest { ran_function, .. }) => {
                            let resp = E2Message::SubscriptionResponse { ran_function };
                            tcp.send(&E2Codec::encode_to_bytes(&resp)).expect("sub resp");
                        }
                        other => panic!("node {i}: expected subscription, got {other:?}"),
                    }
                    let kpi = E2Message::Indication(KpiReport {
                        t_ms: i as u64,
                        bs_power_mw: 5_000 + i as u64,
                        duty_milli: 500,
                        mean_mcs_centi: 2_000,
                    });
                    tcp.send(&E2Codec::encode_to_bytes(&kpi)).expect("kpi");
                    buf.extend_from_slice(&tcp.recv().expect("ctrl"));
                    match E2Codec::decode(&mut buf).expect("decode ctrl") {
                        Some(E2Message::ControlRequest { .. }) => {
                            tcp.send(&E2Codec::encode_to_bytes(&E2Message::ControlAck))
                                .expect("ack");
                        }
                        other => panic!("node {i}: expected control, got {other:?}"),
                    }
                })
            })
            .collect();

        // One thread (this one) drives every session through the server.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut kpis = 0;
        while server.subscribed_count() < NODES || kpis < NODES {
            let round = server.poll(1);
            kpis += round.kpis;
            assert!(Instant::now() < deadline, "handshake stalled: {kpis} kpis");
        }
        assert_eq!(server.session_count(), NODES);
        assert_eq!(
            server.broadcast_policy(RadioPolicy { airtime: 0.5, max_mcs: 20 }),
            NODES,
            "policy must fan out to every session"
        );
        let mut acks = 0;
        while acks < NODES {
            acks += server.poll(1).acks;
            assert!(Instant::now() < deadline, "acks stalled: {acks}/{NODES}");
        }
        for h in handles {
            h.join().expect("node thread");
        }
        // Metrics flowed through the shared registry.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("edgebol_oran_ricserver_kpi_total"), Some(NODES as u64));
        assert_eq!(snap.counter("edgebol_oran_ricserver_acks_total"), Some(NODES as u64));
        assert!(snap.counter("edgebol_oran_ricserver_periods_total").unwrap_or(0) > 0);
    }

    /// Minimal blocking HTTP client for the ops tests: one GET, read to
    /// EOF (`Connection: close`), return (status, body).
    fn ops_get(addr: &str, path: &str) -> (u16, String) {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).expect("ops connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("send");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read");
        let status = raw.split_whitespace().nth(1).expect("status").parse().expect("code");
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn ric_server_hosts_ops_surface_on_the_same_reactor() {
        use crate::ops::OpsState;
        use crate::transport::FramedTcp;
        use std::time::{Duration, Instant};

        let reg = Registry::new();
        let mut server = RicServer::bind("127.0.0.1:0", 1_000, reg.clone()).expect("bind");
        let ops = server.serve_ops("127.0.0.1:0", OpsState::new(reg.clone())).expect("ops bind");
        let ops_addr = ops.local_addr().to_string();
        let e2_addr = server.local_addr().to_string();

        // One E2 node and one operator, both served by the same poll
        // loop on this thread — no thread is spawned server-side. The
        // node holds its connection open until released so the session
        // is provably alive while the HTTP traffic flows.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let node = std::thread::spawn(move || {
            let mut tcp = FramedTcp::connect(&e2_addr).expect("connect");
            let mut buf = BytesMut::new();
            buf.extend_from_slice(&tcp.recv().expect("sub req"));
            match E2Codec::decode(&mut buf).expect("decode") {
                Some(E2Message::SubscriptionRequest { ran_function, .. }) => {
                    let resp = E2Message::SubscriptionResponse { ran_function };
                    tcp.send(&E2Codec::encode_to_bytes(&resp)).expect("sub resp");
                }
                other => panic!("expected subscription, got {other:?}"),
            }
            let kpi = E2Message::Indication(KpiReport {
                t_ms: 1,
                bs_power_mw: 5_000,
                duty_milli: 0,
                mean_mcs_centi: 0,
            });
            tcp.send(&E2Codec::encode_to_bytes(&kpi)).expect("kpi");
            release_rx.recv().ok();
        });
        let operator = std::thread::spawn(move || {
            let (code, metrics) = ops_get(&ops_addr, "/metrics");
            let (hcode, health) = ops_get(&ops_addr, "/healthz");
            (code, metrics, hcode, health)
        });

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut kpis = 0;
        while !(operator.is_finished() && kpis >= 1) {
            kpis += server.poll(1).kpis;
            assert!(Instant::now() < deadline, "stalled: kpis={kpis}");
        }
        assert_eq!(server.session_count(), 1, "the E2 session outlives the HTTP churn");
        release_tx.send(()).ok();
        node.join().expect("node thread");
        let (code, metrics, hcode, health) = operator.join().expect("operator thread");
        assert_eq!(code, 200);
        assert!(metrics.contains("edgebol_oran_ricserver_periods_total"), "{metrics}");
        assert_eq!(hcode, 200);
        assert!(health.contains("circuit=connected"), "{health}");
    }
}

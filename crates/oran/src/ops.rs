//! Live operator surface: `/metrics`, `/healthz`, `/vars`, `/trace`.
//!
//! The ops surface is a tiny HTTP/1.1 service hosted on a [`Reactor`]
//! (see [`Reactor::bind_http`]): the same epoll loop that multiplexes
//! framed E2/A1 sessions also answers operator GETs, so a `RicServer`
//! or a soak run exposes live state without a second event loop or
//! any new dependency. For poll-transport runs that have no reactor
//! of their own, [`OpsServer::spawn`] hosts the same handler on a
//! dedicated background reactor thread.
//!
//! Endpoints (all `GET`, keep-alive, bounded request heads):
//!
//! - `/metrics` — Prometheus exposition, byte-identical to
//!   [`Snapshot::render_prometheus`] of the same snapshot.
//! - `/healthz` — 200 while the recovery circuit is
//!   `Connected`/`Backoff` (the run still makes progress), 503 once
//!   it latches `Open`. Fed through a [`HealthHandle`].
//! - `/vars` — the full metrics snapshot as JSON.
//! - `/trace?n=K` — the most recent `K` journal events (default 128)
//!   from the attached [`Journal`], as JSON.
//!
//! [`Snapshot::render_prometheus`]: edgebol_metrics::Snapshot::render_prometheus

use crate::reactor::{HttpHandler, HttpResponse, Reactor, ReactorListener};
use crate::recovery::CircuitState;
use edgebol_metrics::Registry;
use edgebol_trace::{events_to_json, Journal};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Circuit codes mirrored into the health endpoint; the encoding is
/// the `edgebol_oran_circuit_state` gauge's (0 connected, 1 backoff,
/// 2 open, 3 half-open probe).
const CODE_CONNECTED: u8 = 0;
const CODE_BACKOFF: u8 = 1;
const CODE_OPEN: u8 = 2;
const CODE_HALF_OPEN: u8 = 3;

/// A cheap shared cell the run updates with its recovery
/// [`CircuitState`] so `/healthz` can answer without touching the
/// orchestrator: 200 while the code is anything but `Open`, 503 once
/// the circuit latches open.
#[derive(Clone, Debug)]
pub struct HealthHandle {
    state: Arc<AtomicU8>,
}

impl Default for HealthHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthHandle {
    /// A handle starting in the `Connected` state.
    pub fn new() -> Self {
        HealthHandle { state: Arc::new(AtomicU8::new(CODE_CONNECTED)) }
    }

    /// Records the current recovery circuit state.
    pub fn set(&self, state: CircuitState) {
        let code = match state {
            CircuitState::Connected => CODE_CONNECTED,
            CircuitState::Backoff { .. } => CODE_BACKOFF,
            CircuitState::Open { .. } => CODE_OPEN,
        };
        self.state.store(code, Ordering::Relaxed);
    }

    /// Records a raw circuit code (the gauge encoding).
    pub fn set_code(&self, code: u8) {
        self.state.store(code, Ordering::Relaxed);
    }

    /// The last recorded circuit code.
    pub fn code(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }

    /// Whether `/healthz` currently answers 200.
    pub fn is_healthy(&self) -> bool {
        self.code() != CODE_OPEN
    }
}

/// Everything the ops endpoints read: the shared metrics registry,
/// an optional event journal and the health cell. This is the
/// [`HttpHandler`] given to [`Reactor::bind_http`] /
/// [`OpsServer::spawn`].
pub struct OpsState {
    registry: Registry,
    journal: Option<Arc<Journal>>,
    health: HealthHandle,
}

impl OpsState {
    /// Ops state over `registry`, healthy, with no journal attached.
    pub fn new(registry: Registry) -> Self {
        OpsState { registry, journal: None, health: HealthHandle::new() }
    }

    /// Attaches the journal behind `/trace`.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Uses an externally owned health cell (so the run can keep a
    /// clone and update it each period).
    pub fn with_health(mut self, health: HealthHandle) -> Self {
        self.health = health;
        self
    }

    /// A clone of the health cell feeding `/healthz`.
    pub fn health(&self) -> HealthHandle {
        self.health.clone()
    }
}

/// Returns the raw value of `key` in a query string (`a=1&b=2`).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

impl HttpHandler for OpsState {
    fn handle(&self, path: &str, query: &str) -> HttpResponse {
        match path {
            "/metrics" => {
                let body = self.registry.snapshot().render_prometheus();
                HttpResponse {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    body: body.into_bytes(),
                }
            }
            "/healthz" => {
                let code = self.health.code();
                let circuit = match code {
                    CODE_CONNECTED => "connected",
                    CODE_BACKOFF => "backoff",
                    CODE_OPEN => "open",
                    CODE_HALF_OPEN => "half-open",
                    _ => "unknown",
                };
                if code == CODE_OPEN {
                    HttpResponse::text(503, format!("unavailable circuit={circuit}\n"))
                } else {
                    HttpResponse::text(200, format!("ok circuit={circuit}\n"))
                }
            }
            "/vars" => HttpResponse::json(self.registry.snapshot().to_json()),
            "/trace" => {
                let n =
                    query_param(query, "n").and_then(|v| v.parse::<usize>().ok()).unwrap_or(128);
                let (recorded, overwritten, events) = match &self.journal {
                    Some(j) => (j.recorded(), j.overwritten(), j.tail(n)),
                    None => (0, 0, Vec::new()),
                };
                let body = format!(
                    "{{\"recorded\":{recorded},\"overwritten\":{overwritten},\"events\":{}}}",
                    events_to_json(&events)
                );
                HttpResponse::json(body)
            }
            _ => HttpResponse::text(404, &b"not found\n"[..]),
        }
    }
}

/// Hosts an [`OpsState`] on an existing reactor: operator connections
/// are served by whatever thread drives that reactor's turns (e.g.
/// `RicServer::poll`). Keep the returned listener alive for as long
/// as the surface should accept connections.
///
/// # Errors
/// An [`io::Error`] from binding or registering the listener.
pub fn serve_on(reactor: &Reactor, addr: &str, state: OpsState) -> io::Result<ReactorListener> {
    reactor.bind_http(addr, Arc::new(state))
}

/// A self-contained ops surface: its own reactor driven by one
/// background thread. Used by bench runs on the poll transport (and
/// by reactor-transport runs too, so operator traffic can never
/// perturb the deterministic episode loop). Dropping the server stops
/// the thread and closes the socket.
#[derive(Debug)]
pub struct OpsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the serving
    /// thread.
    ///
    /// # Errors
    /// An [`io::Error`] from creating the reactor or binding.
    pub fn spawn(addr: &str, state: OpsState) -> io::Result<OpsServer> {
        let reactor = Reactor::new()?;
        let listener = serve_on(&reactor, addr, state)?;
        let local_addr = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new().name("edgebol-ops".into()).spawn(move || {
            // The listener must live on this thread: dropping it
            // deregisters the accept socket.
            let _listener = listener;
            while !stop_flag.load(Ordering::Relaxed) {
                if reactor.turn(25) == 0 {
                    // Idle: sleep a beat so the sweep backend does not
                    // spin a core (epoll already waited in turn()).
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            }
        })?;
        Ok(OpsServer { local_addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// Minimal test client: one request over a fresh connection with
    /// `Connection: close`, returning (status, body).
    fn http_get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).expect("read response");
        parse_response(&raw)
    }

    fn parse_response(raw: &[u8]) -> (u16, Vec<u8>) {
        let head_end =
            raw.windows(4).position(|w| w == b"\r\n\r\n").expect("complete response head");
        let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
        let status: u16 =
            head.split(' ').nth(1).expect("status code").parse().expect("numeric status");
        (status, raw[head_end + 4..].to_vec())
    }

    fn spawn_state(state: OpsState) -> OpsServer {
        OpsServer::spawn("127.0.0.1:0", state).expect("spawn ops server")
    }

    #[test]
    fn metrics_endpoint_matches_render_prometheus_byte_for_byte() {
        let reg = Registry::new();
        reg.counter("edgebol_test_requests_total").add(7);
        reg.gauge("edgebol_test_depth").set(2.5);
        let srv = spawn_state(OpsState::new(reg.clone()));
        let (status, body) = http_get(srv.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert_eq!(String::from_utf8(body).unwrap(), reg.snapshot().render_prometheus());
    }

    #[test]
    fn healthz_flips_to_503_when_the_circuit_opens() {
        let state = OpsState::new(Registry::disabled());
        let health = state.health();
        let srv = spawn_state(state);
        let (status, body) = http_get(srv.local_addr(), "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, b"ok circuit=connected\n");
        health.set(CircuitState::Backoff { attempt: 1, retry_at: 9 });
        let (status, _) = http_get(srv.local_addr(), "/healthz");
        assert_eq!(status, 200, "backoff still makes progress");
        health.set(CircuitState::Open { probe_at: 16 });
        let (status, body) = http_get(srv.local_addr(), "/healthz");
        assert_eq!(status, 503);
        assert_eq!(body, b"unavailable circuit=open\n");
        health.set(CircuitState::Connected);
        let (status, _) = http_get(srv.local_addr(), "/healthz");
        assert_eq!(status, 200);
    }

    #[test]
    fn trace_endpoint_serves_the_journal_tail_as_json() {
        use edgebol_trace::Layer;
        let journal = Arc::new(Journal::with_capacity(64));
        for p in 0..10 {
            journal.record(Layer::Orchestrator, "tick", Some(p), vec![]);
        }
        let srv = spawn_state(OpsState::new(Registry::disabled()).with_journal(journal));
        let (status, body) = http_get(srv.local_addr(), "/trace?n=3");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        edgebol_trace::json::validate(&text).expect("trace body must be valid JSON");
        assert!(text.contains("\"recorded\":10"), "{text}");
        assert_eq!(text.matches("\"kind\":\"tick\"").count(), 3, "{text}");
        assert!(text.contains("\"period\":9"), "{text}");
    }

    #[test]
    fn vars_endpoint_serves_the_snapshot_json() {
        let reg = Registry::new();
        reg.counter("edgebol_test_total").add(3);
        let srv = spawn_state(OpsState::new(reg.clone()));
        let (status, body) = http_get(srv.local_addr(), "/vars");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        edgebol_trace::json::validate(&text).expect("vars body must be valid JSON");
        assert!(text.contains("edgebol_test_total"), "{text}");
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let srv = spawn_state(OpsState::new(Registry::disabled()));
        let (status, _) = http_get(srv.local_addr(), "/nope");
        assert_eq!(status, 404);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 405);
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let reg = Registry::new();
        reg.counter("edgebol_test_total").inc();
        let srv = spawn_state(OpsState::new(reg));
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
        for _ in 0..5 {
            write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let (status, body) = read_keep_alive_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, b"ok circuit=connected\n");
        }
    }

    /// Reads exactly one response off a keep-alive connection using
    /// its Content-Length.
    fn read_keep_alive_response(r: &mut impl std::io::BufRead) -> (u16, Vec<u8>) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            r.read_line(&mut line).expect("read header line");
            if line == "\r\n" || line.is_empty() {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head.split(' ').nth(1).expect("status").parse().expect("numeric");
        let len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
            .map(|v| v.trim().parse().expect("length"))
            .expect("Content-Length header");
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).expect("read body");
        (status, body)
    }
}

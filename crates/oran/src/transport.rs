//! Duplex byte transports: in-process channels and framed TCP.

use crate::OranError;
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Upper bound on a single framed-TCP payload; anything larger is a
/// corrupt or hostile peer, not a real control-plane message.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A parked terminal error, waiting for the next receive call.
///
/// [`Link::drain`] promises "queued traffic drains first, the close
/// surfaces on the *next* call". Links whose errors self-persist (a
/// dropped [`Endpoint`] peer re-derives `ChannelClosed` on every
/// `try_recv`; a [`crate::reactor::ReactorLink`] reproduces its terminal
/// stream error from the stored close reason) keep that promise for
/// free. Links whose terminal error is observed *once* — and would
/// otherwise be discarded by a drain that already collected messages —
/// park it here so the next receive can surface it with the kind intact.
#[derive(Debug, Default)]
pub struct ErrorStash(Mutex<Option<OranError>>);

impl ErrorStash {
    /// Creates an empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `e` for the next receive call. A stash holds one error —
    /// the first one wins, matching "the close surfaces on the next
    /// call" (a second terminal error on an already-dead link adds no
    /// information).
    pub fn put(&self, e: OranError) {
        let mut slot = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Takes the parked error, if any.
    pub fn take(&self) -> Option<OranError> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).take()
    }
}

/// A message-oriented duplex link, as the RIC actors see it.
///
/// [`Endpoint`] is the plain in-process implementation;
/// [`crate::chaos::ChaosEndpoint`] is the fault-injecting decorator the
/// chaos layer threads underneath the same actors. Methods take `&self`
/// (implementations use interior mutability) so links can be shared the
/// way `Endpoint` clones are.
pub trait Link: Send {
    /// Sends one message.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the link is down.
    fn send(&self, msg: Bytes) -> Result<(), OranError>;

    /// Receives the next pending message without blocking; `Ok(None)`
    /// when the queue is empty but the link is alive.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the link is down and drained.
    fn try_recv(&self) -> Result<Option<Bytes>, OranError>;

    /// The link's parked-error slot, when it has one.
    ///
    /// The default [`Link::drain`] uses this to keep the terminal error
    /// *kind* across the "queued traffic first" deferral: an error hit
    /// after messages were already collected is parked here and
    /// surfaced — with its kind intact — by the next `drain`. Links
    /// whose terminal errors self-persist (every `try_recv` on a dead
    /// [`Endpoint`] or [`crate::reactor::ReactorLink`] re-derives the
    /// same error) may return `None`, the default: for them the next
    /// call reproduces the error without help.
    fn error_stash(&self) -> Option<&ErrorStash> {
        None
    }

    /// Drains all pending messages.
    ///
    /// Already-queued traffic always comes out: when the peer is gone but
    /// messages were collected first, those messages are returned and the
    /// close surfaces on the *next* call — with its original kind, via
    /// [`Link::error_stash`] when the link provides one (an `Io` close
    /// must not resurface as a generic silence or a different kind).
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] (or the stashed terminal error) when
    /// the link is down and nothing was pending — a closed-then-drained
    /// link must report, not read as silently empty.
    fn drain(&self) -> Result<Vec<Bytes>, OranError> {
        if let Some(e) = self.error_stash().and_then(ErrorStash::take) {
            return Err(e);
        }
        let mut out = Vec::new();
        loop {
            match self.try_recv() {
                Ok(Some(m)) => out.push(m),
                Ok(None) => return Ok(out),
                Err(e) if out.is_empty() => return Err(e),
                Err(e) => {
                    // Deferred close: hand the messages over now, park
                    // the error so the next call reports *this* error,
                    // not whatever the link re-derives (or nothing).
                    if let Some(stash) = self.error_stash() {
                        stash.put(e);
                    }
                    return Ok(out);
                }
            }
        }
    }
}

/// One direction of the in-process pipe: an unbounded FIFO plus liveness
/// counters so each side can detect the other hanging up.
#[derive(Debug, Default)]
struct Channel {
    queue: Mutex<VecDeque<Bytes>>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl Channel {
    fn push(&self, msg: Bytes) {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(msg);
    }

    fn pop(&self) -> Option<Bytes> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }
}

/// One end of a duplex, message-oriented byte pipe.
///
/// The in-process implementation used throughout the orchestrator and the
/// tests; each `send` delivers one whole message (no framing needed).
/// Clones share both directions (multiple producers/consumers), and the
/// pipe counts live clones per side so a fully dropped peer turns into
/// [`OranError::ChannelClosed`] rather than silence.
#[derive(Debug)]
pub struct Endpoint {
    /// Direction this end sends on.
    out: Arc<Channel>,
    /// Direction this end receives on.
    inc: Arc<Channel>,
}

/// Creates a connected pair of endpoints.
pub fn duplex_pair() -> (Endpoint, Endpoint) {
    let ab = Arc::new(Channel::default());
    let ba = Arc::new(Channel::default());
    let a = Endpoint::attach(ab.clone(), ba.clone());
    let b = Endpoint::attach(ba, ab);
    (a, b)
}

impl Endpoint {
    fn attach(out: Arc<Channel>, inc: Arc<Channel>) -> Self {
        out.senders.fetch_add(1, Ordering::SeqCst);
        inc.receivers.fetch_add(1, Ordering::SeqCst);
        Endpoint { out, inc }
    }

    /// Sends one message.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when every clone of the peer endpoint
    /// was dropped.
    pub fn send(&self, msg: Bytes) -> Result<(), OranError> {
        if self.out.receivers.load(Ordering::SeqCst) == 0 {
            return Err(OranError::ChannelClosed("peer endpoint dropped"));
        }
        self.out.push(msg);
        Ok(())
    }

    /// Receives the next pending message without blocking.
    ///
    /// Returns `Ok(None)` when the queue is empty but the peer is alive.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when every clone of the peer endpoint
    /// was dropped and the queue is drained.
    pub fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        if let Some(m) = self.inc.pop() {
            return Ok(Some(m));
        }
        if self.inc.senders.load(Ordering::SeqCst) == 0 {
            return Err(OranError::ChannelClosed("peer endpoint dropped"));
        }
        Ok(None)
    }

    /// Drains all pending messages — see [`Link::drain`] for the
    /// closed-link contract (queued traffic first, then
    /// [`OranError::ChannelClosed`] instead of a silent empty result).
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the peer is gone and nothing was
    /// pending.
    pub fn drain(&self) -> Result<Vec<Bytes>, OranError> {
        Link::drain(self)
    }
}

impl Link for Endpoint {
    fn send(&self, msg: Bytes) -> Result<(), OranError> {
        Endpoint::send(self, msg)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        Endpoint::try_recv(self)
    }
}

impl Clone for Endpoint {
    fn clone(&self) -> Self {
        Endpoint::attach(self.out.clone(), self.inc.clone())
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.out.senders.fetch_sub(1, Ordering::SeqCst);
        self.inc.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Which transport carries the orchestrator's A1/E2 links.
///
/// Selected per-construction (`Orchestrator::new_with_transport`) or
/// fleet-wide via the `EDGEBOL_TRANSPORT` env knob; both paths build the
/// same actors over [`AnyLink`], and `tests/reactor.rs` pins that a
/// fixed-seed episode is f64-bit-identical across the two kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process mutex-guarded queues ([`duplex_pair`]) — the seed
    /// transport, zero syscalls.
    #[default]
    Poll,
    /// Reactor-managed nonblocking framed TCP over loopback
    /// ([`crate::reactor::Reactor::pair`]) — the fleet-scale transport.
    Reactor,
}

impl TransportKind {
    /// Reads the `EDGEBOL_TRANSPORT` knob: `poll` (default) | `reactor`.
    ///
    /// # Panics
    /// Panics on any other value — a misspelled transport must not
    /// silently fall back and invalidate a comparison run.
    pub fn from_env() -> Self {
        match std::env::var("EDGEBOL_TRANSPORT").as_deref() {
            Err(_) | Ok("") | Ok("poll") => TransportKind::Poll,
            Ok("reactor") => TransportKind::Reactor,
            Ok(other) => {
                panic!("invalid EDGEBOL_TRANSPORT value {other:?}: expected poll or reactor")
            }
        }
    }
}

/// A [`Link`] over either transport, so the orchestrator's actors are
/// monomorphic regardless of which transport the episode runs on — the
/// same types run the poll-driven seed path and the reactor path, which
/// is what makes the bit-identity comparison meaningful.
#[derive(Debug)]
pub enum AnyLink {
    /// An in-process [`Endpoint`] half.
    InProc(Endpoint),
    /// A reactor-managed framed-TCP link.
    Reactor(crate::reactor::ReactorLink),
}

impl Link for AnyLink {
    fn send(&self, msg: Bytes) -> Result<(), OranError> {
        match self {
            AnyLink::InProc(l) => l.send(msg),
            AnyLink::Reactor(l) => l.send(msg),
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        match self {
            AnyLink::InProc(l) => l.try_recv(),
            AnyLink::Reactor(l) => l.try_recv(),
        }
    }
}

impl AnyLink {
    /// Drains all pending messages — [`Link::drain`] semantics.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the link is down and nothing
    /// was pending.
    pub fn drain(&self) -> Result<Vec<Bytes>, OranError> {
        Link::drain(self)
    }
}

impl From<Endpoint> for AnyLink {
    fn from(e: Endpoint) -> Self {
        AnyLink::InProc(e)
    }
}

impl From<crate::reactor::ReactorLink> for AnyLink {
    fn from(l: crate::reactor::ReactorLink) -> Self {
        AnyLink::Reactor(l)
    }
}

/// A blocking, length-framed TCP transport: `u32 BE length | payload`.
///
/// The same framing the E2 codec uses internally, applied at the socket
/// boundary so arbitrary transports can carry A1 JSON or E2 frames. Used
/// by the networked RIC example.
#[derive(Debug)]
pub struct FramedTcp {
    stream: TcpStream,
}

impl FramedTcp {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        FramedTcp { stream }
    }

    /// Connects to `addr` (e.g. `127.0.0.1:36421`).
    pub fn connect(addr: &str) -> Result<Self, OranError> {
        Ok(FramedTcp { stream: TcpStream::connect(addr)? })
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// [`OranError::Framing`] for payloads beyond [`MAX_FRAME_LEN`];
    /// [`OranError::Io`] on socket failure.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), OranError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(OranError::Framing(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                payload.len()
            )));
        }
        let len = payload.len() as u32;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receives one frame (blocking).
    ///
    /// # Errors
    /// [`OranError::Framing`] when the declared length exceeds
    /// [`MAX_FRAME_LEN`]; [`OranError::ChannelClosed`] when the peer
    /// closes the socket cleanly between frames or mid-frame;
    /// [`OranError::Io`] for other socket failures.
    pub fn recv(&mut self) -> Result<Bytes, OranError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf).map_err(Self::map_eof)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(OranError::Framing(format!(
                "declared frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload).map_err(Self::map_eof)?;
        Ok(Bytes::from(payload))
    }

    fn map_eof(e: std::io::Error) -> OranError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            OranError::ChannelClosed("tcp peer closed the connection")
        } else {
            OranError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn duplex_delivers_in_order() {
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"one")).unwrap();
        a.send(Bytes::from_static(b"two")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"one"));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"two"));
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn duplex_is_bidirectional() {
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"ping")).unwrap();
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"ping"));
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn dropped_peer_is_channel_closed() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(matches!(a.send(Bytes::from_static(b"x")), Err(OranError::ChannelClosed(_))));
        assert!(matches!(a.try_recv(), Err(OranError::ChannelClosed(_))));
    }

    #[test]
    fn queued_messages_survive_peer_drop() {
        // Like crossbeam: already-sent traffic drains before the closed
        // channel reports.
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"last words")).unwrap();
        drop(a);
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"last words"));
        assert!(matches!(b.try_recv(), Err(OranError::ChannelClosed(_))));
    }

    #[test]
    fn clones_keep_the_channel_open() {
        let (a, b) = duplex_pair();
        let b2 = b.clone();
        drop(b);
        a.send(Bytes::from_static(b"still here")).unwrap();
        assert_eq!(b2.try_recv().unwrap().unwrap(), Bytes::from_static(b"still here"));
        drop(b2);
        assert!(a.send(Bytes::from_static(b"gone")).is_err());
    }

    #[test]
    fn drain_empties_queue() {
        let (a, b) = duplex_pair();
        for i in 0..5u8 {
            a.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let msgs = b.drain().unwrap();
        assert_eq!(msgs.len(), 5);
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn try_recv_after_close_drains_then_errors() {
        // Queued traffic first, then ChannelClosed on every later call —
        // never a silent Ok(None).
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"one")).unwrap();
        a.send(Bytes::from_static(b"two")).unwrap();
        drop(a);
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"one"));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"two"));
        for _ in 0..3 {
            assert!(matches!(b.try_recv(), Err(OranError::ChannelClosed(_))));
        }
    }

    #[test]
    fn drain_after_close_returns_queued_then_errors() {
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"last")).unwrap();
        drop(a);
        // First drain yields the queued traffic; the close surfaces on
        // the next drain instead of a silent empty vec.
        assert_eq!(b.drain().unwrap(), vec![Bytes::from_static(b"last")]);
        assert!(matches!(b.drain(), Err(OranError::ChannelClosed(_))));
        assert!(matches!(b.drain(), Err(OranError::ChannelClosed(_))));
    }

    #[test]
    fn drain_on_closed_empty_link_is_channel_closed_not_empty() {
        let (a, b) = duplex_pair();
        drop(a);
        assert!(matches!(b.drain(), Err(OranError::ChannelClosed(_))));
    }

    /// A link whose terminal error is observed exactly once: two queued
    /// messages, then one `Io` error, then silence. Models a transport
    /// (unlike `Endpoint`) that cannot re-derive its close reason — the
    /// case the `error_stash` mechanism exists for.
    struct OneShotErrorLink {
        script: Mutex<VecDeque<Result<Option<Bytes>, OranError>>>,
        stash: ErrorStash,
    }

    impl OneShotErrorLink {
        fn new() -> Self {
            let mut script = VecDeque::new();
            script.push_back(Ok(Some(Bytes::from_static(b"one"))));
            script.push_back(Ok(Some(Bytes::from_static(b"two"))));
            script.push_back(Err(OranError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "reset by peer",
            ))));
            OneShotErrorLink { script: Mutex::new(script), stash: ErrorStash::new() }
        }
    }

    impl Link for OneShotErrorLink {
        fn send(&self, _msg: Bytes) -> Result<(), OranError> {
            Ok(())
        }

        fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
            self.script
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
                .unwrap_or(Ok(None))
        }

        fn error_stash(&self) -> Option<&ErrorStash> {
            Some(&self.stash)
        }
    }

    #[test]
    fn drain_preserves_terminal_error_kind_across_the_deferral() {
        // Regression: the old default drain mapped `Err(_)` after
        // collected messages to `Ok(out)` and *discarded the error*. On
        // a link that can't re-derive it, the Io close vanished — later
        // drains read as silently empty. The stash keeps the kind.
        let link = OneShotErrorLink::new();
        let first = link.drain().unwrap();
        assert_eq!(first, vec![Bytes::from_static(b"one"), Bytes::from_static(b"two")]);
        match link.drain() {
            Err(OranError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "kind must survive");
            }
            other => panic!("expected the stashed Io error, got {other:?}"),
        }
        // The stash holds one error: once surfaced, the link reads as a
        // quiet (scripted-empty) link again.
        assert_eq!(link.drain().unwrap(), Vec::<Bytes>::new());
    }

    #[test]
    fn stash_first_error_wins() {
        let stash = ErrorStash::new();
        stash.put(OranError::ChannelClosed("first"));
        stash.put(OranError::Handshake("second".into()));
        assert!(matches!(stash.take(), Some(OranError::ChannelClosed("first"))));
        assert!(stash.take().is_none());
    }

    #[test]
    fn transport_kind_default_is_poll() {
        assert_eq!(TransportKind::default(), TransportKind::Poll);
    }

    #[test]
    fn any_link_wraps_endpoints_transparently() {
        let (a, b) = duplex_pair();
        let (a, b) = (AnyLink::from(a), AnyLink::from(b));
        a.send(Bytes::from_static(b"via any")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"via any"));
        assert!(b.try_recv().unwrap().is_none());
        drop(a);
        assert!(matches!(b.try_recv(), Err(OranError::ChannelClosed(_))));
    }

    #[test]
    fn endpoints_move_across_threads() {
        let (a, b) = duplex_pair();
        let t = thread::spawn(move || {
            for i in 0..100u8 {
                a.send(Bytes::copy_from_slice(&[i])).unwrap();
            }
        });
        t.join().unwrap();
        assert_eq!(b.drain().unwrap().len(), 100);
    }

    #[test]
    fn framed_tcp_roundtrip_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut t = FramedTcp::new(stream);
            let m = t.recv().expect("recv");
            // Echo back reversed.
            let rev: Vec<u8> = m.iter().rev().copied().collect();
            t.send(&rev).expect("send");
        });
        let mut client = FramedTcp::connect(&addr.to_string()).expect("connect");
        client.send(b"edgebol").expect("send");
        let echo = client.recv().expect("recv");
        assert_eq!(&echo[..], b"lobegde");
        server.join().unwrap();
    }

    #[test]
    fn framed_tcp_carries_empty_and_large_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let a = t.recv().unwrap();
            let b = t.recv().unwrap();
            t.send(&[a.len() as u8]).unwrap();
            t.send(&(b.len() as u32).to_be_bytes()).unwrap();
        });
        let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
        client.send(&[]).unwrap();
        let big = vec![0xAB; 100_000];
        client.send(&big).unwrap();
        assert_eq!(&client.recv().unwrap()[..], &[0]);
        assert_eq!(&client.recv().unwrap()[..], &100_000u32.to_be_bytes());
        server.join().unwrap();
    }

    #[test]
    fn framed_tcp_peer_dropping_mid_frame_is_channel_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Declare a 100-byte frame but hang up after 10 bytes.
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(&[0xCC; 10]).unwrap();
            stream.flush().unwrap();
        });
        let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
        let err = client.recv().unwrap_err();
        assert!(
            matches!(err, OranError::ChannelClosed(_)),
            "mid-frame hangup must be ChannelClosed, got {err:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn framed_tcp_oversized_declared_length_is_framing_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
            stream.flush().unwrap();
            // Keep the socket open so the error is the length cap, not
            // EOF — and consume the client's whole 5-byte frame, so the
            // socket doesn't close with unread bytes (which would RST
            // the client's in-flight send).
            let mut sink = [0u8; 5];
            let _ = stream.read_exact(&mut sink);
        });
        let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
        let err = client.recv().unwrap_err();
        assert!(matches!(err, OranError::Framing(_)), "got {err:?}");
        client.send(&[1]).unwrap();
        server.join().unwrap();
    }
}

//! Duplex byte transports: in-process channels and framed TCP.

use crate::OranError;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::TcpStream;

/// One end of a duplex, message-oriented byte pipe.
///
/// The in-process implementation used throughout the orchestrator and the
/// tests; each `send` delivers one whole message (no framing needed).
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Creates a connected pair of endpoints.
pub fn duplex_pair() -> (Endpoint, Endpoint) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (Endpoint { tx: a_tx, rx: a_rx }, Endpoint { tx: b_tx, rx: b_rx })
}

impl Endpoint {
    /// Sends one message.
    ///
    /// # Errors
    /// [`OranError::Transport`] when the peer endpoint was dropped.
    pub fn send(&self, msg: Bytes) -> Result<(), OranError> {
        self.tx.send(msg).map_err(|_| OranError::Transport("peer endpoint dropped".into()))
    }

    /// Receives the next pending message without blocking.
    ///
    /// Returns `Ok(None)` when the queue is empty.
    ///
    /// # Errors
    /// [`OranError::Transport`] when the peer endpoint was dropped and the
    /// queue is drained.
    pub fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(OranError::Transport("peer endpoint dropped".into()))
            }
        }
    }

    /// Drains all pending messages.
    pub fn drain(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            out.push(m);
        }
        out
    }
}

/// A blocking, length-framed TCP transport: `u32 BE length | payload`.
///
/// The same framing the E2 codec uses internally, applied at the socket
/// boundary so arbitrary transports can carry A1 JSON or E2 frames. Used
/// by the networked RIC example.
#[derive(Debug)]
pub struct FramedTcp {
    stream: TcpStream,
}

impl FramedTcp {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        FramedTcp { stream }
    }

    /// Connects to `addr` (e.g. `127.0.0.1:36421`).
    pub fn connect(addr: &str) -> Result<Self, OranError> {
        Ok(FramedTcp { stream: TcpStream::connect(addr)? })
    }

    /// Sends one frame.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), OranError> {
        let len = u32::try_from(payload.len())
            .map_err(|_| OranError::Transport("frame too large".into()))?;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receives one frame (blocking).
    pub fn recv(&mut self) -> Result<Bytes, OranError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > 16 * 1024 * 1024 {
            return Err(OranError::Transport(format!("unreasonable frame length {len}")));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        Ok(Bytes::from(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn duplex_delivers_in_order() {
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"one")).unwrap();
        a.send(Bytes::from_static(b"two")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"one"));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"two"));
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn duplex_is_bidirectional() {
        let (a, b) = duplex_pair();
        a.send(Bytes::from_static(b"ping")).unwrap();
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"ping"));
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn dropped_peer_is_an_error() {
        let (a, b) = duplex_pair();
        drop(b);
        assert!(a.send(Bytes::from_static(b"x")).is_err());
        assert!(a.try_recv().is_err());
    }

    #[test]
    fn drain_empties_queue() {
        let (a, b) = duplex_pair();
        for i in 0..5u8 {
            a.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let msgs = b.drain();
        assert_eq!(msgs.len(), 5);
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn framed_tcp_roundtrip_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut t = FramedTcp::new(stream);
            let m = t.recv().expect("recv");
            // Echo back reversed.
            let rev: Vec<u8> = m.iter().rev().copied().collect();
            t.send(&rev).expect("send");
        });
        let mut client = FramedTcp::connect(&addr.to_string()).expect("connect");
        client.send(b"edgebol").expect("send");
        let echo = client.recv().expect("recv");
        assert_eq!(&echo[..], b"lobegde");
        server.join().unwrap();
    }

    #[test]
    fn framed_tcp_carries_empty_and_large_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let a = t.recv().unwrap();
            let b = t.recv().unwrap();
            t.send(&[a.len() as u8]).unwrap();
            t.send(&(b.len() as u32).to_be_bytes()).unwrap();
        });
        let mut client = FramedTcp::connect(&addr.to_string()).unwrap();
        client.send(&[]).unwrap();
        let big = vec![0xAB; 100_000];
        client.send(&big).unwrap();
        assert_eq!(&client.recv().unwrap()[..], &[0]);
        assert_eq!(&client.recv().unwrap()[..], &100_000u32.to_be_bytes());
        server.join().unwrap();
    }
}

//! Non-blocking reactor: one thread multiplexing many framed-TCP links.
//!
//! The poll-driven control plane pairs one blocking socket with one
//! actor; fleet-scale orchestration wants one near-RT RIC supervising
//! hundreds of E2 nodes and A1 sessions concurrently. This module is the
//! zero-dependency answer: a [`Reactor`] owns a slab of registered
//! connections ([`Token`] → connection state), runs a readiness loop
//! (epoll through a thin `mio`-style wrapper on Linux, a nonblocking
//! sweep everywhere else), drives partial reads and partial writes
//! through per-connection buffers, and reassembles the same
//! `u32 BE length | payload` framing the blocking [`FramedTcp`]
//! transport speaks — so decoded frames surface to the RIC actors as
//! whole messages through the existing [`Link`] trait.
//!
//! [`ReactorLink`] is that surface: a [`Link`] whose `send` enqueues a
//! framed payload into the connection's write buffer (flushed
//! opportunistically and on every turn) and whose `try_recv` pops the
//! connection's inbound frame queue. For **paired** loopback links
//! (built with [`Reactor::pair`], the orchestrator's construction path)
//! `try_recv` drives the reactor until the pipe is *quiescent* — every
//! frame the peer enqueued has been flushed, crossed the socket and been
//! reassembled — before reporting "nothing pending". That property makes
//! the reactor transport observationally identical to the in-process
//! [`Endpoint`]: the same polls see the same messages, so a fixed-seed
//! episode is f64-bit-identical across the two transports (pinned by
//! `tests/reactor.rs`).
//!
//! Unpaired connections (accepted from a real listener, where the peer
//! lives in another thread or process) make no quiescence promise:
//! `try_recv` performs one nonblocking turn and reports what has
//! arrived. The multi-node `RicServer` (in [`crate::ric`]) drives those
//! with explicit [`Reactor::turn`] calls from its accept loop.
//!
//! [`FramedTcp`]: crate::transport::FramedTcp
//! [`Endpoint`]: crate::transport::Endpoint

use crate::transport::{Link, MAX_FRAME_LEN};
use crate::OranError;
use bytes::{Bytes, BytesMut};
use edgebol_metrics::{Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Identifies one registered connection (or listener) inside a reactor.
///
/// Tokens are slab indices: stable for the lifetime of the registration,
/// recycled after the owning handle is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness backend selection for [`Reactor::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorBackend {
    /// Level-triggered `epoll` through the thin FFI wrapper — Linux
    /// only; [`Reactor::with_backend`] reports `Unsupported` elsewhere.
    Epoll,
    /// Portable fallback: sweep every registered connection with
    /// nonblocking reads and let `WouldBlock` filter. O(connections) per
    /// turn instead of O(ready), but std-only.
    Sweep,
}

impl ReactorBackend {
    /// The default backend for this platform: epoll on Linux, the
    /// nonblocking sweep everywhere else. `EDGEBOL_REACTOR_BACKEND`
    /// (`epoll` | `sweep`) overrides, so CI can exercise the portable
    /// path on Linux too.
    ///
    /// # Panics
    /// Panics on a malformed `EDGEBOL_REACTOR_BACKEND` value — a
    /// misspelled knob must not silently select the wrong backend.
    pub fn from_env() -> Self {
        match std::env::var("EDGEBOL_REACTOR_BACKEND").as_deref() {
            Err(_) | Ok("") => {
                if cfg!(target_os = "linux") {
                    ReactorBackend::Epoll
                } else {
                    ReactorBackend::Sweep
                }
            }
            Ok("epoll") => ReactorBackend::Epoll,
            Ok("sweep") => ReactorBackend::Sweep,
            Ok(other) => {
                panic!("invalid EDGEBOL_REACTOR_BACKEND value {other:?}: expected epoll or sweep")
            }
        }
    }
}

/// Thin epoll wrapper: the `mio`-style readiness source on Linux.
///
/// Level-triggered, read-interest only — writes are flushed by sweeping
/// connections with pending bytes each turn, which keeps the interest
/// set static and the wrapper small.
#[cfg(target_os = "linux")]
mod epoll {
    use std::io;
    use std::os::unix::io::RawFd;

    // The kernel packs epoll_event on x86-64 (and x32); other
    // architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An epoll instance holding read interest for registered fds.
    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flag word and returns an fd
            // or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        /// Registers read/hangup interest for `fd` under `token`.
        pub fn add(&self, fd: RawFd, token: usize) -> io::Result<()> {
            let mut ev = EpollEvent { events: EPOLLIN | EPOLLERR | EPOLLHUP, data: token as u64 };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Removes `fd` from the interest set (must precede closing it).
        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: the event argument is ignored for DEL on modern
            // kernels but must be non-null for pre-2.6.9 compatibility.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits up to `timeout_ms` and appends ready tokens to `out`.
        pub fn wait(&self, out: &mut Vec<usize>, timeout_ms: i32) -> io::Result<()> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            loop {
                // SAFETY: `events` is a valid buffer of 64 entries for
                // the duration of the call.
                let n = unsafe {
                    epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in &events[..n as usize] {
                    // A packed struct field cannot be borrowed; copy out.
                    let data = ev.data;
                    out.push(data as usize);
                }
                return Ok(());
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd is a valid owned fd; double-close is
            // impossible because Drop runs once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

/// The readiness source behind a reactor.
#[derive(Debug)]
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Sweep,
}

impl Poller {
    fn new(backend: ReactorBackend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            ReactorBackend::Epoll => Ok(Poller::Epoll(epoll::Epoll::new()?)),
            #[cfg(not(target_os = "linux"))]
            ReactorBackend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend is Linux-only; use ReactorBackend::Sweep",
            )),
            ReactorBackend::Sweep => Ok(Poller::Sweep),
        }
    }

    fn backend(&self) -> ReactorBackend {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => ReactorBackend::Epoll,
            Poller::Sweep => ReactorBackend::Sweep,
        }
    }
}

#[cfg(target_os = "linux")]
fn raw_fd_of(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(target_os = "linux")]
fn raw_fd_of_listener(listener: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

/// Why an inbound queue will never grow again.
#[derive(Debug)]
enum ClosedKind {
    /// Peer closed between frames — the clean hangup.
    Clean,
    /// Peer closed mid-frame (partial length prefix or payload).
    MidFrame,
    /// The stream declared an impossible frame and was abandoned.
    Framing(String),
    /// The socket itself failed.
    Io(io::ErrorKind, String),
}

impl ClosedKind {
    /// Reproduces the terminal error — called on every post-close
    /// receive, so the error kind persists instead of being one-shot.
    fn to_error(&self) -> OranError {
        match self {
            ClosedKind::Clean | ClosedKind::MidFrame => {
                OranError::ChannelClosed("tcp peer closed the connection")
            }
            ClosedKind::Framing(m) => OranError::Framing(m.clone()),
            ClosedKind::Io(kind, m) => OranError::Io(io::Error::new(*kind, m.clone())),
        }
    }
}

/// The link-facing side of a connection: decoded frames plus the reason
/// the stream ended. Shared between the reactor core (producer) and the
/// [`ReactorLink`] handle (consumer).
#[derive(Debug, Default)]
struct Inbound {
    q: Mutex<VecDeque<Bytes>>,
    closed: Mutex<Option<ClosedKind>>,
}

impl Inbound {
    fn pop(&self) -> Option<Bytes> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }

    fn push(&self, frame: Bytes) {
        self.q.lock().unwrap_or_else(PoisonError::into_inner).push_back(frame);
    }

    fn close(&self, kind: ClosedKind) {
        let mut c = self.closed.lock().unwrap_or_else(PoisonError::into_inner);
        if c.is_none() {
            *c = Some(kind);
        }
    }

    fn closed_error(&self) -> Option<OranError> {
        self.closed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(ClosedKind::to_error)
    }

    fn is_closed(&self) -> bool {
        self.closed.lock().unwrap_or_else(PoisonError::into_inner).is_some()
    }
}

/// Maximum bytes of a single HTTP request head the reactor buffers
/// before answering 431 and hanging up — operator GETs are tiny, so
/// anything larger is garbage or abuse.
const MAX_HTTP_HEAD: usize = 16 * 1024;

/// A response produced by an [`HttpHandler`]. The reactor adds the
/// status line, `Content-Length` and `Connection` headers itself.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `text/plain; charset=utf-8` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        HttpResponse { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    /// A 200 `application/json` response.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse { status: 200, content_type: "application/json", body: body.into() }
    }
}

/// Serves `GET` requests arriving on HTTP connections hosted by a
/// reactor (see [`Reactor::bind_http`]). Handlers run on the reactor
/// thread while the core lock is held, so they must be fast and must
/// not call back into the same reactor.
pub trait HttpHandler: Send + Sync {
    /// Produces the response for `GET <path>?<query>`. `query` is the
    /// raw query string without the `?` (empty when absent).
    fn handle(&self, path: &str, query: &str) -> HttpResponse;
}

/// Per-connection state for an HTTP conversation.
struct HttpConnState {
    handler: Arc<dyn HttpHandler>,
    /// The final response has been queued; hang up once it flushes.
    close_after_flush: bool,
}

/// What protocol a connection speaks: the framed E2/A1 byte stream or
/// operator HTTP. HTTP connections are owned by the reactor itself
/// (no [`ReactorLink`] handle exists for them) and are reaped by
/// [`Core::turn`] when their conversation ends.
enum ConnKind {
    Framed,
    Http(HttpConnState),
}

impl fmt::Debug for ConnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnKind::Framed => f.write_str("Framed"),
            ConnKind::Http(h) => {
                f.debug_struct("Http").field("close_after_flush", &h.close_after_flush).finish()
            }
        }
    }
}

/// One registered connection: the nonblocking stream plus its partial
/// read/write state and delivery accounting.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Partial-frame reassembly buffer (bytes read, frames not yet
    /// complete).
    rd: BytesMut,
    /// Framed bytes enqueued by the link but not yet written; `wr_pos`
    /// is the flush cursor (compacted when it catches up).
    wr: Vec<u8>,
    wr_pos: usize,
    inbound: Arc<Inbound>,
    /// The other end of a loopback pair built by [`Reactor::pair`]; the
    /// quiescence check needs to see the peer's send accounting.
    peer: Option<Token>,
    /// Frames the local link enqueued on this connection.
    frames_sent: u64,
    /// Frames decoded off this connection into `inbound`.
    frames_delivered: u64,
    /// EOF or a fatal error was seen; no more reads.
    read_closed: bool,
    /// A write failed fatally; sends report the stored error.
    write_dead: bool,
    /// Protocol spoken on this connection (framed E2/A1 or HTTP).
    kind: ConnKind,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wr.len() - self.wr_pos
    }
}

/// A registered listener plus the tokens of freshly accepted (not yet
/// claimed) connections. A listener carrying an HTTP handler serves
/// accepted connections itself instead of queueing them for
/// [`ReactorListener::accept`].
struct ListenerState {
    listener: TcpListener,
    accepted: VecDeque<Token>,
    http: Option<Arc<dyn HttpHandler>>,
}

impl fmt::Debug for ListenerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ListenerState")
            .field("listener", &self.listener)
            .field("accepted", &self.accepted)
            .field("http", &self.http.is_some())
            .finish()
    }
}

/// Slab entries: connections and listeners share one token space.
#[derive(Debug)]
enum Entry {
    Conn(Conn),
    Listener(ListenerState),
}

/// Pre-resolved metric handles (no-ops on a disabled registry).
#[derive(Debug)]
struct ReactorMetrics {
    turns: Counter,
    frames_rx: Counter,
    frames_tx: Counter,
    bytes_rx: Counter,
    bytes_tx: Counter,
    accepts: Counter,
    sessions: Gauge,
    http_requests: Counter,
}

impl ReactorMetrics {
    fn new(reg: &Registry) -> Self {
        reg.describe("edgebol_oran_reactor_turns_total", "Reactor event-loop turns");
        reg.describe(
            "edgebol_oran_reactor_frames_total",
            "Frames moved by the reactor, by direction",
        );
        reg.describe(
            "edgebol_oran_reactor_bytes_total",
            "Payload bytes moved by the reactor, by direction",
        );
        reg.describe(
            "edgebol_oran_reactor_accepts_total",
            "Connections accepted by reactor listeners",
        );
        reg.describe(
            "edgebol_oran_reactor_sessions",
            "Connections currently registered in the slab",
        );
        reg.describe(
            "edgebol_oran_reactor_http_requests_total",
            "HTTP requests served by the ops surface",
        );
        ReactorMetrics {
            turns: reg.counter("edgebol_oran_reactor_turns_total"),
            frames_rx: reg.counter_with("edgebol_oran_reactor_frames_total", &[("dir", "rx")]),
            frames_tx: reg.counter_with("edgebol_oran_reactor_frames_total", &[("dir", "tx")]),
            bytes_rx: reg.counter_with("edgebol_oran_reactor_bytes_total", &[("dir", "rx")]),
            bytes_tx: reg.counter_with("edgebol_oran_reactor_bytes_total", &[("dir", "tx")]),
            accepts: reg.counter("edgebol_oran_reactor_accepts_total"),
            sessions: reg.gauge("edgebol_oran_reactor_sessions"),
            http_requests: reg.counter("edgebol_oran_reactor_http_requests_total"),
        }
    }
}

/// Outcome of scanning the read buffer for one HTTP request head.
enum HttpParse {
    /// The head is not complete yet; wait for more bytes.
    Partial,
    /// One complete, well-formed request head.
    Request {
        method: String,
        path: String,
        query: String,
        /// The client asked to close (or spoke HTTP/1.0).
        close: bool,
        /// The request declares a body, which this server rejects.
        has_body: bool,
        /// Bytes consumed by the head including the blank line.
        head_len: usize,
    },
    /// Unrecoverable garbage; answer 400 and hang up.
    Bad(&'static str),
}

/// Incremental HTTP/1.1 request-head parser: returns as soon as the
/// blank line is present, leaving any pipelined follow-up bytes in
/// the buffer. Only the request line, `Connection` and body-signalling
/// headers are interpreted; everything else is skipped.
fn parse_http_head(buf: &[u8]) -> HttpParse {
    let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return HttpParse::Partial;
    };
    let Ok(head) = std::str::from_utf8(&buf[..end]) else {
        return HttpParse::Bad("request head is not UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return HttpParse::Bad("malformed request line");
    };
    if method.is_empty() || target.is_empty() {
        return HttpParse::Bad("malformed request line");
    }
    if !version.starts_with("HTTP/1.") {
        return HttpParse::Bad("unsupported HTTP version");
    }
    let mut close = version == "HTTP/1.0";
    let mut has_body = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            has_body = value != "0";
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            has_body = true;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    HttpParse::Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        close,
        has_body,
        head_len: end + 4,
    }
}

fn http_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Appends one full HTTP/1.1 response to the connection's write
/// buffer; the reactor's normal flush machinery drains it.
fn write_http_response(
    wr: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) {
    let connection = if close { "close" } else { "keep-alive" };
    wr.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {len}\r\nConnection: {connection}\r\n\r\n",
            reason = http_reason(status),
            len = body.len(),
        )
        .as_bytes(),
    );
    wr.extend_from_slice(body);
}

/// Serves every complete request currently sitting in an HTTP
/// connection's read buffer. Keep-alive (and pipelined) requests are
/// answered in arrival order; the first fatal condition — oversized
/// head, malformed request, declared body, or `Connection: close` —
/// queues a final response and marks the connection for reaping once
/// the write buffer drains.
fn service_http(
    rd: &mut BytesMut,
    wr: &mut Vec<u8>,
    read_closed: &mut bool,
    http: &mut HttpConnState,
    requests: &Counter,
) {
    loop {
        if http.close_after_flush {
            // The conversation is over; discard anything else the
            // client optimistically pipelined.
            rd.clear();
            return;
        }
        match parse_http_head(rd) {
            HttpParse::Partial => {
                if rd.len() > MAX_HTTP_HEAD {
                    write_http_response(wr, 431, "text/plain", b"request head too large\n", true);
                    http.close_after_flush = true;
                    *read_closed = true;
                    rd.clear();
                }
                return;
            }
            HttpParse::Bad(msg) => {
                let body = format!("bad request: {msg}\n");
                write_http_response(wr, 400, "text/plain", body.as_bytes(), true);
                http.close_after_flush = true;
                *read_closed = true;
                rd.clear();
                return;
            }
            HttpParse::Request { method, path, query, close, has_body, head_len } => {
                let _ = rd.split_to(head_len);
                requests.inc();
                if has_body {
                    write_http_response(
                        wr,
                        400,
                        "text/plain",
                        b"request bodies are not supported\n",
                        true,
                    );
                    http.close_after_flush = true;
                    *read_closed = true;
                    rd.clear();
                    return;
                }
                let resp = if method == "GET" {
                    http.handler.handle(&path, &query)
                } else {
                    HttpResponse::text(405, &b"only GET is supported\n"[..])
                };
                write_http_response(wr, resp.status, resp.content_type, &resp.body, close);
                if close {
                    http.close_after_flush = true;
                    *read_closed = true;
                    rd.clear();
                    return;
                }
            }
        }
    }
}

/// The mutable heart of the reactor, behind one mutex.
#[derive(Debug)]
struct Core {
    poller: Poller,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    metrics: ReactorMetrics,
    /// Scratch for poller results, reused across turns.
    ready: Vec<usize>,
}

/// How long a paired `try_recv` keeps driving the loop while frames are
/// provably in flight before giving up. Loopback delivery is microseconds;
/// this bound only matters if the kernel misbehaves, and giving up
/// surfaces as a visible degraded event rather than a hang.
const QUIESCENCE_DEADLINE: Duration = Duration::from_secs(5);

impl Core {
    fn insert(&mut self, entry: Entry) -> Token {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(entry);
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        Token(idx)
    }

    fn conn(&mut self, t: Token) -> Option<&mut Conn> {
        match self.slab.get_mut(t.0) {
            Some(Some(Entry::Conn(c))) => Some(c),
            _ => None,
        }
    }

    fn live_conns(&self) -> usize {
        self.slab.iter().filter(|e| matches!(e, Some(Entry::Conn(_)))).count()
    }

    /// Registers a connected stream; nonblocking + NODELAY are applied
    /// here so every registration path shares the setup.
    fn register_stream(&mut self, stream: TcpStream, peer: Option<Token>) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        // Control-plane frames are tiny; Nagle would batch them against
        // the quiescence-driven delivery the paired links rely on.
        stream.set_nodelay(true)?;
        let inbound = Arc::new(Inbound::default());
        let conn = Conn {
            stream,
            rd: BytesMut::new(),
            wr: Vec::new(),
            wr_pos: 0,
            inbound,
            peer,
            frames_sent: 0,
            frames_delivered: 0,
            read_closed: false,
            write_dead: false,
            kind: ConnKind::Framed,
        };
        let token = self.insert(Entry::Conn(conn));
        #[cfg(target_os = "linux")]
        if let Poller::Epoll(ep) = &self.poller {
            if let Some(Some(Entry::Conn(c))) = self.slab.get(token.0) {
                ep.add(raw_fd_of(&c.stream), token.0)?;
            }
        }
        self.metrics.sessions.set(self.live_conns() as f64);
        Ok(token)
    }

    fn register_listener(
        &mut self,
        listener: TcpListener,
        http: Option<Arc<dyn HttpHandler>>,
    ) -> io::Result<Token> {
        listener.set_nonblocking(true)?;
        let token = self.insert(Entry::Listener(ListenerState {
            listener,
            accepted: VecDeque::new(),
            http,
        }));
        #[cfg(target_os = "linux")]
        if let Poller::Epoll(ep) = &self.poller {
            if let Some(Some(Entry::Listener(l))) = self.slab.get(token.0) {
                ep.add(raw_fd_of_listener(&l.listener), token.0)?;
            }
        }
        Ok(token)
    }

    /// Tears a connection down: best-effort flush of pending writes,
    /// poller deregistration, fd close (by drop). The peer observes EOF
    /// on its next read.
    fn close_conn(&mut self, t: Token) {
        // Flush what we can so "sent before drop" frames still arrive —
        // the Endpoint contract for queued traffic surviving a hangup.
        let _ = self.flush_conn(t);
        if let Some(Some(entry)) = self.slab.get(t.0) {
            #[cfg(target_os = "linux")]
            if let Poller::Epoll(ep) = &self.poller {
                match entry {
                    Entry::Conn(c) => {
                        let _ = ep.del(raw_fd_of(&c.stream));
                    }
                    Entry::Listener(l) => {
                        let _ = ep.del(raw_fd_of_listener(&l.listener));
                    }
                }
            }
            let _ = entry; // non-Linux: nothing to deregister
        }
        if let Some(slot) = self.slab.get_mut(t.0) {
            if slot.take().is_some() {
                self.free.push(t.0);
            }
        }
        self.metrics.sessions.set(self.live_conns() as f64);
    }

    /// Writes as much of `t`'s pending buffer as the socket accepts.
    /// Returns the number of bytes written this call.
    fn flush_conn(&mut self, t: Token) -> usize {
        let m_bytes_tx = &self.metrics.bytes_tx;
        let Some(Some(Entry::Conn(conn))) = self.slab.get_mut(t.0) else { return 0 };
        if conn.write_dead {
            return 0;
        }
        let mut written = 0;
        while conn.wr_pos < conn.wr.len() {
            match conn.stream.write(&conn.wr[conn.wr_pos..]) {
                Ok(0) => {
                    conn.write_dead = true;
                    break;
                }
                Ok(n) => {
                    conn.wr_pos += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.write_dead = true;
                    break;
                }
            }
        }
        if conn.wr_pos == conn.wr.len() {
            conn.wr.clear();
            conn.wr_pos = 0;
        } else if conn.wr_pos > 64 * 1024 {
            // Compact a long-lived partial buffer so it cannot grow
            // without bound under sustained backpressure.
            conn.wr.drain(..conn.wr_pos);
            conn.wr_pos = 0;
        }
        m_bytes_tx.add(written as u64);
        written
    }

    /// Reads until `WouldBlock`/EOF and reassembles complete frames into
    /// the inbound queue. Returns bytes read.
    fn read_conn(&mut self, t: Token) -> usize {
        let m_bytes_rx = &self.metrics.bytes_rx;
        let m_frames_rx = &self.metrics.frames_rx;
        let m_http_requests = &self.metrics.http_requests;
        let Some(Some(Entry::Conn(conn))) = self.slab.get_mut(t.0) else { return 0 };
        if conn.read_closed {
            return 0;
        }
        let mut total = 0;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    conn.inbound.close(if conn.rd.is_empty() {
                        ClosedKind::Clean
                    } else {
                        ClosedKind::MidFrame
                    });
                    break;
                }
                Ok(n) => {
                    conn.rd.extend_from_slice(&buf[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    conn.read_closed = true;
                    conn.inbound.close(ClosedKind::Io(e.kind(), e.to_string()));
                    break;
                }
            }
        }
        if let ConnKind::Http(http) = &mut conn.kind {
            // Operator traffic: answer complete requests straight from
            // the buffer; the turn's flush machinery sends responses.
            service_http(&mut conn.rd, &mut conn.wr, &mut conn.read_closed, http, m_http_requests);
            m_bytes_rx.add(total as u64);
            return total;
        }
        // Frame reassembly: the same `u32 BE length | payload` framing
        // as FramedTcp, decoded incrementally — a length prefix or
        // payload split across reads (or WouldBlock boundaries) stays
        // buffered until its bytes arrive.
        loop {
            if conn.rd.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([conn.rd[0], conn.rd[1], conn.rd[2], conn.rd[3]]) as usize;
            if len > MAX_FRAME_LEN {
                conn.read_closed = true;
                conn.inbound.close(ClosedKind::Framing(format!(
                    "declared frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
                )));
                break;
            }
            if conn.rd.len() < 4 + len {
                break;
            }
            let mut frame = conn.rd.split_to(4 + len);
            let _prefix = frame.split_to(4);
            conn.frames_delivered += 1;
            m_frames_rx.inc();
            conn.inbound.push(frame.freeze());
        }
        m_bytes_rx.add(total as u64);
        total
    }

    /// Accepts every pending connection on a listener.
    fn accept_ready(&mut self, t: Token) -> usize {
        let mut accepted = Vec::new();
        if let Some(Some(Entry::Listener(l))) = self.slab.get_mut(t.0) {
            loop {
                match l.listener.accept() {
                    Ok((stream, _)) => accepted.push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        let n = accepted.len();
        let http = match self.slab.get(t.0) {
            Some(Some(Entry::Listener(l))) => l.http.clone(),
            _ => None,
        };
        for stream in accepted {
            if let Ok(token) = self.register_stream(stream, None) {
                match &http {
                    // HTTP listeners serve their connections in-loop;
                    // nobody claims them through accept().
                    Some(handler) => {
                        if let Some(conn) = self.conn(token) {
                            conn.kind = ConnKind::Http(HttpConnState {
                                handler: handler.clone(),
                                close_after_flush: false,
                            });
                        }
                        self.metrics.accepts.inc();
                    }
                    None => {
                        if let Some(Some(Entry::Listener(l))) = self.slab.get_mut(t.0) {
                            l.accepted.push_back(token);
                            self.metrics.accepts.inc();
                        }
                    }
                }
            }
        }
        n
    }

    /// One reactor turn: flush every pending write, collect readiness
    /// (waiting up to `timeout_ms`), then read/accept everything ready.
    /// Returns a progress measure (bytes moved + connections accepted).
    fn turn(&mut self, timeout_ms: u32) -> usize {
        self.metrics.turns.inc();
        let mut progress = 0;
        let tokens: Vec<usize> = (0..self.slab.len()).filter(|&i| self.slab[i].is_some()).collect();
        for &i in &tokens {
            if matches!(self.slab[i], Some(Entry::Conn(_))) {
                progress += self.flush_conn(Token(i));
            }
        }
        self.ready.clear();
        match &self.poller {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                let mut ready = std::mem::take(&mut self.ready);
                if ep.wait(&mut ready, timeout_ms as i32).is_err() {
                    // A failed wait degrades to a sweep: correctness
                    // never depends on the readiness hint.
                    ready.extend(tokens.iter().copied());
                }
                self.ready = ready;
            }
            Poller::Sweep => {
                self.ready.extend(tokens.iter().copied());
            }
        }
        let ready = std::mem::take(&mut self.ready);
        for &i in &ready {
            match self.slab.get(i) {
                Some(Some(Entry::Conn(_))) => progress += self.read_conn(Token(i)),
                Some(Some(Entry::Listener(_))) => progress += self.accept_ready(Token(i)),
                _ => {}
            }
        }
        self.ready = ready;
        // Reap finished HTTP connections: the reactor itself owns them
        // (no ReactorLink ever closes them), so a conversation whose
        // final response has flushed — or whose peer hung up — frees
        // its slab slot here instead of leaking it.
        let dead: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, entry)| match entry {
                Some(Entry::Conn(c)) => match &c.kind {
                    ConnKind::Http(h) => {
                        let flushed = c.pending_write() == 0;
                        let done =
                            c.write_dead || (flushed && (c.read_closed || h.close_after_flush));
                        done.then_some(i)
                    }
                    ConnKind::Framed => None,
                },
                _ => None,
            })
            .collect();
        for i in dead {
            self.close_conn(Token(i));
        }
        if progress == 0 && timeout_ms > 0 && matches!(self.poller, Poller::Sweep) {
            // The sweep backend has no blocking wait; yield briefly so a
            // quiescence-driving caller does not spin a core while the
            // kernel finishes loopback delivery.
            std::thread::sleep(Duration::from_micros(200));
        }
        progress
    }

    /// Drives turns until `t` has an inbound frame, its stream closed,
    /// or — for paired links — the pipe is provably quiescent (peer has
    /// nothing enqueued, buffered, or in flight toward us).
    fn drive_for(&mut self, t: Token) {
        let deadline = Instant::now() + QUIESCENCE_DEADLINE;
        loop {
            self.turn(0);
            let Some(conn) = self.conn(t) else { return };
            if !conn.inbound.q.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
                || conn.inbound.is_closed()
            {
                return;
            }
            let delivered = conn.frames_delivered;
            let peer = conn.peer;
            match peer {
                None => return, // unpaired: one nonblocking sweep only
                Some(p) => match self.conn(p) {
                    // Peer link was dropped and its conn torn down: keep
                    // turning until our side reads the EOF.
                    None => {}
                    Some(pc) if pc.frames_sent == delivered && pc.pending_write() == 0 => {
                        return; // quiescent: nothing in flight
                    }
                    Some(_) => {}
                },
            }
            if Instant::now() >= deadline {
                return;
            }
            // Frames are in flight; wait for the kernel to surface them.
            self.turn(1);
        }
    }
}

/// A handle to a shared reactor. Cheap to clone; the core lives while
/// any handle or link referencing it does.
#[derive(Debug, Clone)]
pub struct Reactor {
    core: Arc<Mutex<Core>>,
}

impl Reactor {
    /// Creates a reactor on the platform-default backend (see
    /// [`ReactorBackend::from_env`]).
    ///
    /// # Errors
    /// An [`io::Error`] when the readiness source cannot be created.
    pub fn new() -> io::Result<Self> {
        Self::new_instrumented(Registry::disabled())
    }

    /// [`Reactor::new`] recording traffic into `metrics`:
    /// `edgebol_oran_reactor_turns_total`, `_frames_total{dir}`,
    /// `_bytes_total{dir}`, `_accepts_total` and the
    /// `edgebol_oran_reactor_sessions` gauge.
    ///
    /// # Errors
    /// An [`io::Error`] when the readiness source cannot be created.
    pub fn new_instrumented(metrics: Registry) -> io::Result<Self> {
        Self::build(ReactorBackend::from_env(), metrics)
    }

    /// Creates a reactor on an explicit backend (tests pin the sweep
    /// fallback this way without touching the environment).
    ///
    /// # Errors
    /// An [`io::Error`] when the backend is unsupported on this platform
    /// or the readiness source cannot be created.
    pub fn with_backend(backend: ReactorBackend) -> io::Result<Self> {
        Self::build(backend, Registry::disabled())
    }

    fn build(backend: ReactorBackend, metrics: Registry) -> io::Result<Self> {
        let poller = Poller::new(backend)?;
        Ok(Reactor {
            core: Arc::new(Mutex::new(Core {
                poller,
                slab: Vec::new(),
                free: Vec::new(),
                metrics: ReactorMetrics::new(&metrics),
                ready: Vec::new(),
            })),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The backend this reactor runs on.
    pub fn backend(&self) -> ReactorBackend {
        self.lock().poller.backend()
    }

    /// Registered live connections (paired + accepted).
    pub fn connections(&self) -> usize {
        self.lock().live_conns()
    }

    /// High-water mark of the registration slab (live + vacated slots).
    /// Vacated slots are recycled through a free list, so this stays
    /// flat under connection churn — pinned by `tests/reactor.rs`.
    pub fn slot_count(&self) -> usize {
        self.lock().slab.len()
    }

    /// Builds a connected loopback pair registered with this reactor.
    /// The two links know each other, so `try_recv` on either side can
    /// drive the loop to quiescence — the property the orchestrator's
    /// bit-identity contract rests on.
    ///
    /// # Errors
    /// An [`io::Error`] from binding, connecting or registering the
    /// loopback sockets.
    pub fn pair(&self) -> io::Result<(ReactorLink, ReactorLink)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let a = TcpStream::connect(addr)?;
        let (b, _) = listener.accept()?;
        let mut core = self.lock();
        let ta = core.register_stream(a, None)?;
        let tb = core.register_stream(b, Some(ta))?;
        if let Some(conn) = core.conn(ta) {
            conn.peer = Some(tb);
        }
        let ia = core.conn(ta).map(|c| c.inbound.clone()).expect("conn just registered");
        let ib = core.conn(tb).map(|c| c.inbound.clone()).expect("conn just registered");
        drop(core);
        Ok((
            ReactorLink { core: self.core.clone(), token: ta, inbound: ia },
            ReactorLink { core: self.core.clone(), token: tb, inbound: ib },
        ))
    }

    /// Binds a listener and registers it: accepted connections surface
    /// through [`ReactorListener::accept`] after a [`Reactor::turn`].
    ///
    /// # Errors
    /// An [`io::Error`] from binding or registering the listener.
    pub fn bind(&self, addr: &str) -> io::Result<ReactorListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let token = self.lock().register_listener(listener, None)?;
        Ok(ReactorListener { core: self.core.clone(), token, local_addr })
    }

    /// Binds an operator HTTP listener on this reactor: connections it
    /// accepts speak HTTP/1.1 (keep-alive, `GET` only, bounded request
    /// heads) and are served by `handler` during normal reactor turns —
    /// the same thread that multiplexes the framed E2/A1 sessions.
    /// Dropping the returned listener stops accepting; in-flight
    /// connections finish their current exchange and are reaped.
    ///
    /// # Errors
    /// An [`io::Error`] from binding or registering the listener.
    pub fn bind_http(
        &self,
        addr: &str,
        handler: Arc<dyn HttpHandler>,
    ) -> io::Result<ReactorListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let token = self.lock().register_listener(listener, Some(handler))?;
        Ok(ReactorListener { core: self.core.clone(), token, local_addr })
    }

    /// One explicit reactor turn (flush writes, poll readiness up to
    /// `timeout_ms`, read/accept everything ready). Returns a progress
    /// measure — bytes moved plus connections accepted. Server loops
    /// (e.g. `RicServer`) call this; paired links drive turns
    /// implicitly from `try_recv`.
    pub fn turn(&self, timeout_ms: u32) -> usize {
        self.lock().turn(timeout_ms)
    }
}

/// A registered accepting socket; see [`Reactor::bind`].
#[derive(Debug)]
pub struct ReactorListener {
    core: Arc<Mutex<Core>>,
    token: Token,
    local_addr: SocketAddr,
}

impl ReactorListener {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Claims the next accepted connection, if any. Connections are
    /// accepted during reactor turns; drive [`Reactor::turn`] first.
    pub fn accept(&self) -> Option<ReactorLink> {
        let mut core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let token = match core.slab.get_mut(self.token.0) {
            Some(Some(Entry::Listener(l))) => l.accepted.pop_front()?,
            _ => return None,
        };
        let inbound = core.conn(token)?.inbound.clone();
        Some(ReactorLink { core: self.core.clone(), token, inbound })
    }
}

impl Drop for ReactorListener {
    fn drop(&mut self) {
        let mut core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        core.close_conn(self.token);
    }
}

/// A [`Link`] carried by a reactor-managed framed-TCP connection.
///
/// `send` frames the payload (`u32 BE length | payload`, the
/// [`FramedTcp`](crate::transport::FramedTcp) wire format) into the
/// connection's write buffer and flushes opportunistically; `try_recv`
/// pops reassembled frames, driving the reactor to quiescence first for
/// paired links. Dropping the link flushes what it can, closes the
/// socket and deregisters the connection — the peer then drains queued
/// traffic and sees [`OranError::ChannelClosed`], exactly like a dropped
/// [`Endpoint`](crate::transport::Endpoint) clone.
#[derive(Debug)]
pub struct ReactorLink {
    core: Arc<Mutex<Core>>,
    token: Token,
    inbound: Arc<Inbound>,
}

impl ReactorLink {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sends one frame (nonblocking: unsent bytes stay buffered).
    ///
    /// # Errors
    /// [`OranError::Framing`] for payloads beyond
    /// [`MAX_FRAME_LEN`]; [`OranError::ChannelClosed`] when the
    /// connection is gone or the peer hung up.
    pub fn send(&self, msg: Bytes) -> Result<(), OranError> {
        if msg.len() > MAX_FRAME_LEN {
            return Err(OranError::Framing(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                msg.len()
            )));
        }
        // Mirror Endpoint: sending to a peer that already hung up fails
        // even though the kernel might still accept the bytes.
        if self.inbound.is_closed() {
            return Err(OranError::ChannelClosed("tcp peer closed the connection"));
        }
        let mut core = self.lock();
        let Some(conn) = core.conn(self.token) else {
            return Err(OranError::ChannelClosed("reactor connection closed"));
        };
        if conn.write_dead {
            return Err(OranError::ChannelClosed("tcp peer closed the connection"));
        }
        conn.wr.extend_from_slice(&(msg.len() as u32).to_be_bytes());
        conn.wr.extend_from_slice(&msg);
        conn.frames_sent += 1;
        core.metrics.frames_tx.inc();
        core.flush_conn(self.token);
        Ok(())
    }

    /// Receives the next reassembled frame without blocking. For paired
    /// links this first drives the reactor until every in-flight frame
    /// has landed, so `Ok(None)` means *nothing was sent*, not *nothing
    /// has arrived yet*.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the stream ended and the queue
    /// is drained; [`OranError::Framing`]/[`OranError::Io`] reproduce
    /// the terminal stream error on every later call.
    pub fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        if let Some(m) = self.inbound.pop() {
            return Ok(Some(m));
        }
        self.lock().drive_for(self.token);
        if let Some(m) = self.inbound.pop() {
            return Ok(Some(m));
        }
        match self.inbound.closed_error() {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Drains all pending frames — [`Link::drain`] semantics.
    ///
    /// # Errors
    /// [`OranError::ChannelClosed`] when the link is down and nothing
    /// was pending.
    pub fn drain(&self) -> Result<Vec<Bytes>, OranError> {
        Link::drain(self)
    }
}

impl Link for ReactorLink {
    fn send(&self, msg: Bytes) -> Result<(), OranError> {
        ReactorLink::send(self, msg)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, OranError> {
        ReactorLink::try_recv(self)
    }
}

impl Drop for ReactorLink {
    fn drop(&mut self) {
        self.lock().close_conn(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reactors() -> Vec<Reactor> {
        let mut rs = vec![Reactor::with_backend(ReactorBackend::Sweep).expect("sweep reactor")];
        if cfg!(target_os = "linux") {
            rs.push(Reactor::with_backend(ReactorBackend::Epoll).expect("epoll reactor"));
        }
        rs
    }

    #[test]
    fn pair_roundtrip_on_every_backend() {
        for r in reactors() {
            let (a, b) = r.pair().expect("pair");
            a.send(Bytes::from_static(b"one")).unwrap();
            a.send(Bytes::from_static(b"two")).unwrap();
            assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"one"));
            assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"two"));
            assert!(b.try_recv().unwrap().is_none());
            b.send(Bytes::from_static(b"pong")).unwrap();
            assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
        }
    }

    #[test]
    fn empty_and_large_frames_cross_the_pair() {
        let r = Reactor::new().unwrap();
        let (a, b) = r.pair().unwrap();
        a.send(Bytes::new()).unwrap();
        let big = Bytes::from(vec![0xAB; 300_000]);
        a.send(big.clone()).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::new());
        assert_eq!(b.try_recv().unwrap().unwrap(), big);
    }

    #[test]
    fn quiescent_try_recv_never_misses_a_sent_frame() {
        // The bit-identity property in miniature: a frame sent before
        // try_recv is always visible to it, with no sleeps in between.
        let r = Reactor::new().unwrap();
        let (a, b) = r.pair().unwrap();
        for i in 0..200u32 {
            a.send(Bytes::from(i.to_be_bytes().to_vec())).unwrap();
            let got = b.try_recv().unwrap().expect("sent frame must be visible");
            assert_eq!(&got[..], i.to_be_bytes());
        }
    }

    #[test]
    fn dropped_peer_drains_then_reports_closed() {
        let r = Reactor::new().unwrap();
        let (a, b) = r.pair().unwrap();
        a.send(Bytes::from_static(b"last words")).unwrap();
        drop(a);
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"last words"));
        for _ in 0..3 {
            assert!(matches!(b.try_recv(), Err(OranError::ChannelClosed(_))));
        }
        // And sending toward the dead peer fails like an Endpoint's.
        assert!(matches!(b.send(Bytes::from_static(b"x")), Err(OranError::ChannelClosed(_))));
    }

    #[test]
    fn oversized_send_is_a_framing_error() {
        let r = Reactor::new().unwrap();
        let (a, _b) = r.pair().unwrap();
        let huge = Bytes::from(vec![0u8; MAX_FRAME_LEN + 1]);
        assert!(matches!(a.send(huge), Err(OranError::Framing(_))));
    }

    #[test]
    fn oversized_declared_length_kills_the_stream_with_framing() {
        // A hostile peer writing an impossible prefix: the link surfaces
        // Framing, and keeps surfacing it (persistent terminal error).
        let r = Reactor::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let link = {
            let mut core = r.lock();
            let t = core.register_stream(accepted, None).unwrap();
            let inbound = core.conn(t).unwrap().inbound.clone();
            ReactorLink { core: r.core.clone(), token: t, inbound }
        };
        let mut raw = raw;
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.flush().unwrap();
        // Unpaired link: allow the bytes to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match link.try_recv() {
                Err(OranError::Framing(_)) => break,
                Err(e) => panic!("expected Framing, got {e:?}"),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected Framing, got {other:?}"),
            }
        }
        assert!(matches!(link.try_recv(), Err(OranError::Framing(_))), "error must persist");
    }

    #[test]
    fn listener_accepts_through_turns() {
        let r = Reactor::new().unwrap();
        let listener = r.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let link = loop {
            r.turn(1);
            if let Some(l) = listener.accept() {
                break l;
            }
            assert!(Instant::now() < deadline, "accept never surfaced");
        };
        // Client speaks the framed protocol over the raw socket.
        client.write_all(&3u32.to_be_bytes()).unwrap();
        client.write_all(b"abc").unwrap();
        client.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            r.turn(1);
            match link.try_recv().unwrap() {
                Some(f) => {
                    assert_eq!(&f[..], b"abc");
                    break;
                }
                None => assert!(Instant::now() < deadline, "frame never surfaced"),
            }
        }
        assert_eq!(r.connections(), 1);
    }

    #[test]
    fn partial_frames_across_wouldblock_boundaries_resync() {
        // Satellite contract: a length prefix and payload split across
        // many writes — with try_recv (and thus WouldBlock) observed
        // between every chunk — reassemble without loss.
        let r = Reactor::new().unwrap();
        let listener = r.bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let link = loop {
            r.turn(1);
            if let Some(l) = listener.accept() {
                break l;
            }
            assert!(Instant::now() < deadline, "accept never surfaced");
        };
        let payload = b"split-frame-payload";
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload);
        // Dribble one byte at a time; poll the link in between so the
        // decoder sees every possible partial state.
        for (i, byte) in wire.iter().enumerate() {
            client.write_all(std::slice::from_ref(byte)).unwrap();
            client.flush().unwrap();
            if i + 1 < wire.len() {
                // Let the byte land, then confirm no premature frame.
                let settle = Instant::now() + Duration::from_millis(5);
                while Instant::now() < settle {
                    r.turn(0);
                }
                assert_eq!(link.try_recv().unwrap(), None, "partial frame must stay buffered");
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            r.turn(1);
            if let Some(f) = link.try_recv().unwrap() {
                assert_eq!(&f[..], payload);
                break;
            }
            assert!(Instant::now() < deadline, "frame never completed");
        }
        // A second frame immediately after proves the codec resynced.
        client.write_all(&2u32.to_be_bytes()).unwrap();
        client.write_all(b"ok").unwrap();
        client.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            r.turn(1);
            if let Some(f) = link.try_recv().unwrap() {
                assert_eq!(&f[..], b"ok");
                break;
            }
            assert!(Instant::now() < deadline, "second frame never arrived");
        }
    }

    #[test]
    fn token_slots_are_recycled() {
        let r = Reactor::new().unwrap();
        let (a, b) = r.pair().unwrap();
        drop(a);
        drop(b);
        assert_eq!(r.connections(), 0);
        let (c, d) = r.pair().unwrap();
        c.send(Bytes::from_static(b"reused")).unwrap();
        assert_eq!(d.try_recv().unwrap().unwrap(), Bytes::from_static(b"reused"));
        assert_eq!(r.connections(), 2);
    }

    #[test]
    fn links_move_across_threads() {
        let r = Reactor::new().unwrap();
        let (a, b) = r.pair().unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..50u8 {
                a.send(Bytes::copy_from_slice(&[i])).unwrap();
            }
        });
        t.join().unwrap();
        let mut got = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while got < 50 {
            if let Ok(Some(_)) = b.try_recv() {
                got += 1;
            }
            assert!(Instant::now() < deadline, "only {got}/50 frames arrived");
        }
    }
}

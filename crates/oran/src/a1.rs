//! A1-P policy documents (O-RAN.WG2.A1AP style).
//!
//! The wire format is JSON with an internal `"msg"` tag, e.g.
//! `{"msg":"PutPolicy","policy_id":"edgebol-0","policy_type":20008,
//! "policy":{"airtime":0.35,"max_mcs":17}}`. The codec is hand-rolled
//! rather than derived so the guarantees the control loop depends on are
//! explicit:
//!
//! * [`A1Message::to_json`] is **panic-free** (it returns a `String` for
//!   every representable message; non-finite floats encode as `null`).
//! * `u64` fields (`t_ms`, `bs_power_mw`) round-trip **exactly** — they
//!   are parsed as integers, never through an `f64`.
//! * `f64` fields round-trip **bit-exactly**: encoding uses Rust's
//!   shortest-roundtrip `Display` and decoding uses the full-precision
//!   `str::parse::<f64>`.
//! * Malformed input surfaces as [`OranError::Codec`], never a panic.

use crate::OranError;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The policy type id this workspace registers for its radio policy
/// (policy types are operator-assigned integers in A1).
pub const A1_POLICY_TYPE_RADIO: u32 = 20_008;

/// Identifier of a deployed policy instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicyId(pub String);

/// The radio policy content EdgeBOL deploys through A1: the two §3
/// policies the vBS must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPolicy {
    /// Policy 2 — uplink airtime fraction in (0, 1].
    pub airtime: f64,
    /// Policy 4 — maximum eligible MCS index (0..=28).
    pub max_mcs: u8,
}

/// Lifecycle status of a policy instance (A1 policy feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyStatus {
    /// Accepted and being enforced.
    Enforced,
    /// Rejected (malformed or unenforceable).
    Rejected,
    /// Deleted on request.
    Deleted,
}

impl PolicyStatus {
    fn as_str(&self) -> &'static str {
        match self {
            PolicyStatus::Enforced => "Enforced",
            PolicyStatus::Rejected => "Rejected",
            PolicyStatus::Deleted => "Deleted",
        }
    }

    fn parse(s: &str) -> Result<Self, OranError> {
        match s {
            "Enforced" => Ok(PolicyStatus::Enforced),
            "Rejected" => Ok(PolicyStatus::Rejected),
            "Deleted" => Ok(PolicyStatus::Deleted),
            other => Err(OranError::Codec(format!("unknown policy status {other:?}"))),
        }
    }
}

/// Messages of the A1 Policy Management Service (plus the KPI stream the
/// data-collector rApp consumes via the O1/data path, which we carry on
/// the same duplex for simplicity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "msg")]
pub enum A1Message {
    /// non-RT RIC → near-RT RIC: create/update a policy instance.
    PutPolicy { policy_id: PolicyId, policy_type: u32, policy: RadioPolicy },
    /// non-RT RIC → near-RT RIC: delete a policy instance.
    DeletePolicy { policy_id: PolicyId },
    /// near-RT RIC → non-RT RIC: policy feedback.
    Feedback { policy_id: PolicyId, status: PolicyStatus },
    /// near-RT RIC → non-RT RIC: forwarded vBS KPI sample (the paper's
    /// second xApp "manages data KPIs received from the base station …
    /// and forwards it to the learning agent").
    KpiSample {
        /// Millisecond timestamp within the experiment.
        t_ms: u64,
        /// BS power sample in milliwatts (integer to keep the wire format
        /// exact).
        bs_power_mw: u64,
    },
}

impl A1Message {
    /// Serializes to the JSON wire form. Never panics.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            A1Message::PutPolicy { policy_id, policy_type, policy } => {
                out.push_str("{\"msg\":\"PutPolicy\",\"policy_id\":");
                write_json_string(&mut out, &policy_id.0);
                // The write! sink is a String: infallible by construction.
                let _ = write!(out, ",\"policy_type\":{policy_type},\"policy\":{{\"airtime\":");
                write_json_f64(&mut out, policy.airtime);
                let _ = write!(out, ",\"max_mcs\":{}}}}}", policy.max_mcs);
            }
            A1Message::DeletePolicy { policy_id } => {
                out.push_str("{\"msg\":\"DeletePolicy\",\"policy_id\":");
                write_json_string(&mut out, &policy_id.0);
                out.push('}');
            }
            A1Message::Feedback { policy_id, status } => {
                out.push_str("{\"msg\":\"Feedback\",\"policy_id\":");
                write_json_string(&mut out, &policy_id.0);
                let _ = write!(out, ",\"status\":\"{}\"}}", status.as_str());
            }
            A1Message::KpiSample { t_ms, bs_power_mw } => {
                let _ = write!(
                    out,
                    "{{\"msg\":\"KpiSample\",\"t_ms\":{t_ms},\"bs_power_mw\":{bs_power_mw}}}"
                );
            }
        }
        out
    }

    /// Peeks the `"msg"` tag of an A1 wire frame without parsing the
    /// document. `None` when the payload is not UTF-8 or carries no
    /// recognizable tag. Used by the chaos layer to classify frames it is
    /// about to drop, delay or corrupt — cheap and non-consuming, unlike
    /// [`A1Message::from_json`].
    pub fn peek_kind(payload: &[u8]) -> Option<&'static str> {
        let text = std::str::from_utf8(payload).ok()?;
        for kind in ["PutPolicy", "DeletePolicy", "Feedback", "KpiSample"] {
            if text.contains(&format!("\"msg\":\"{kind}\"")) {
                return Some(kind);
            }
        }
        None
    }

    /// Parses from the JSON wire form.
    ///
    /// # Errors
    /// [`OranError::Codec`] on malformed JSON, an unknown `"msg"` tag, or
    /// missing/mistyped fields.
    pub fn from_json(s: &str) -> Result<Self, OranError> {
        let doc = json::parse(s)?;
        let mut obj = doc.into_object("A1 message")?;
        let tag = obj.get_str("msg")?;
        match tag.as_str() {
            "PutPolicy" => {
                let mut policy = obj.get("policy")?.into_object("policy")?;
                Ok(A1Message::PutPolicy {
                    policy_id: PolicyId(obj.get_str("policy_id")?),
                    policy_type: obj
                        .get_u64("policy_type")?
                        .try_into()
                        .map_err(|_| OranError::Codec("policy_type exceeds u32".into()))?,
                    policy: RadioPolicy {
                        airtime: policy.get_f64("airtime")?,
                        max_mcs: policy
                            .get_u64("max_mcs")?
                            .try_into()
                            .map_err(|_| OranError::Codec("max_mcs exceeds u8".into()))?,
                    },
                })
            }
            "DeletePolicy" => {
                Ok(A1Message::DeletePolicy { policy_id: PolicyId(obj.get_str("policy_id")?) })
            }
            "Feedback" => Ok(A1Message::Feedback {
                policy_id: PolicyId(obj.get_str("policy_id")?),
                status: PolicyStatus::parse(&obj.get_str("status")?)?,
            }),
            "KpiSample" => Ok(A1Message::KpiSample {
                t_ms: obj.get_u64("t_ms")?,
                bs_power_mw: obj.get_u64("bs_power_mw")?,
            }),
            other => Err(OranError::Codec(format!("unknown A1 message tag {other:?}"))),
        }
    }
}

impl RadioPolicy {
    /// Validates the ranges A1 policy-type schema would enforce.
    pub fn is_valid(&self) -> bool {
        self.airtime > 0.0 && self.airtime <= 1.0 && self.max_mcs <= 28
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display is shortest-roundtrip: parsing the digits back
        // recovers the identical bit pattern.
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Infinity literal; `null` parses back as NaN.
        out.push_str("null");
    }
}

/// A minimal JSON reader: just enough for A1 documents (objects, strings,
/// numbers kept as raw text for exact integer handling, booleans, null).
/// Errors are [`OranError::Codec`] with position context.
mod json {
    use crate::OranError;

    #[derive(Debug)]
    pub enum Value<'a> {
        Object(Vec<(String, Value<'a>)>),
        String(String),
        /// Raw number text; converted on demand so u64 stays exact.
        Number(&'a str),
        /// Payload dropped: no A1 field is boolean, so the value only
        /// ever appears in "unexpected type" errors.
        Bool,
        Null,
    }

    pub struct Object<'a>(pub Vec<(String, Value<'a>)>);

    impl<'a> Value<'a> {
        pub fn into_object(self, what: &str) -> Result<Object<'a>, OranError> {
            match self {
                Value::Object(fields) => Ok(Object(fields)),
                other => Err(OranError::Codec(format!("{what}: expected object, got {other:?}"))),
            }
        }
    }

    impl<'a> Object<'a> {
        pub fn get(&mut self, key: &str) -> Result<Value<'a>, OranError> {
            let idx = self
                .0
                .iter()
                .position(|(k, _)| k == key)
                .ok_or_else(|| OranError::Codec(format!("missing field {key:?}")))?;
            Ok(self.0.swap_remove(idx).1)
        }

        pub fn get_str(&mut self, key: &str) -> Result<String, OranError> {
            match self.get(key)? {
                Value::String(s) => Ok(s),
                other => {
                    Err(OranError::Codec(format!("field {key:?}: expected string, got {other:?}")))
                }
            }
        }

        pub fn get_u64(&mut self, key: &str) -> Result<u64, OranError> {
            match self.get(key)? {
                Value::Number(raw) => raw
                    .parse()
                    .map_err(|_| OranError::Codec(format!("field {key:?}: {raw:?} is not a u64"))),
                other => {
                    Err(OranError::Codec(format!("field {key:?}: expected integer, got {other:?}")))
                }
            }
        }

        pub fn get_f64(&mut self, key: &str) -> Result<f64, OranError> {
            match self.get(key)? {
                Value::Number(raw) => raw.parse().map_err(|_| {
                    OranError::Codec(format!("field {key:?}: {raw:?} is not a number"))
                }),
                Value::Null => Ok(f64::NAN),
                other => {
                    Err(OranError::Codec(format!("field {key:?}: expected number, got {other:?}")))
                }
            }
        }
    }

    pub fn parse(src: &str) -> Result<Value<'_>, OranError> {
        let mut p = Parser { src: src.as_bytes(), text: src, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        Ok(v)
    }

    const MAX_DEPTH: usize = 32;

    struct Parser<'a> {
        src: &'a [u8],
        text: &'a str,
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn err(&self, msg: &str) -> OranError {
            OranError::Codec(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.src.get(self.pos) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.src.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), OranError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", b as char)))
            }
        }

        fn eat_literal(&mut self, lit: &str) -> bool {
            if self.text[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value<'a>, OranError> {
            if depth > MAX_DEPTH {
                return Err(self.err("nesting too deep"));
            }
            match self.peek() {
                Some(b'{') => self.object(depth),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool),
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value<'a>, OranError> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                let val = self.value(depth + 1)?;
                fields.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(self.err("expected ',' or '}' in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, OranError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Fast path: run of plain bytes.
                while let Some(&b) = self.src.get(self.pos) {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    self.pos += 1;
                }
                // The scanned run is valid UTF-8 because the input is &str
                // and the run breaks only at ASCII bytes.
                out.push_str(&self.text[start..self.pos]);
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .text
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                // Surrogate pairs are not needed for A1
                                // ids; reject rather than mis-decode.
                                let c = char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                                out.push(c);
                                self.pos += 4;
                            }
                            _ => return Err(self.err("bad escape sequence")),
                        }
                        self.pos += 1;
                    }
                    _ => return Err(self.err("unterminated string")),
                }
            }
        }

        fn number(&mut self) -> Result<Value<'a>, OranError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let digits_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err("number has no digits"));
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                let frac_start = self.pos;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                if self.pos == frac_start {
                    return Err(self.err("number has an empty fraction"));
                }
            }
            if let Some(b'e' | b'E') = self.peek() {
                self.pos += 1;
                if let Some(b'+' | b'-') = self.peek() {
                    self.pos += 1;
                }
                let exp_start = self.pos;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                if self.pos == exp_start {
                    return Err(self.err("number has an empty exponent"));
                }
            }
            Ok(Value::Number(&self.text[start..self.pos]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_put_policy() {
        let m = A1Message::PutPolicy {
            policy_id: PolicyId("p-7".into()),
            policy_type: A1_POLICY_TYPE_RADIO,
            policy: RadioPolicy { airtime: 0.35, max_mcs: 17 },
        };
        let j = m.to_json();
        assert!(j.contains("PutPolicy"), "{j}");
        assert_eq!(A1Message::from_json(&j).unwrap(), m);
    }

    #[test]
    fn json_roundtrip_all_variants() {
        let msgs = [
            A1Message::DeletePolicy { policy_id: PolicyId("a".into()) },
            A1Message::Feedback { policy_id: PolicyId("a".into()), status: PolicyStatus::Enforced },
            A1Message::KpiSample { t_ms: 123, bs_power_mw: 5_250 },
        ];
        for m in msgs {
            assert_eq!(A1Message::from_json(&m.to_json()).unwrap(), m);
        }
    }

    #[test]
    fn u64_fields_roundtrip_exactly_at_the_extremes() {
        // Values above 2^53 are where an f64-based number path loses
        // integers; the raw-text path must not.
        for v in [0, 1, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let m = A1Message::KpiSample { t_ms: v, bs_power_mw: v };
            assert_eq!(A1Message::from_json(&m.to_json()).unwrap(), m);
        }
    }

    #[test]
    fn f64_airtime_roundtrips_bit_exactly() {
        for &airtime in &[0.1, 1.0 / 3.0, 0.001, f64::MIN_POSITIVE, 0.9999999999999999] {
            let m = A1Message::PutPolicy {
                policy_id: PolicyId("x".into()),
                policy_type: A1_POLICY_TYPE_RADIO,
                policy: RadioPolicy { airtime, max_mcs: 1 },
            };
            match A1Message::from_json(&m.to_json()).unwrap() {
                A1Message::PutPolicy { policy, .. } => {
                    assert_eq!(policy.airtime.to_bits(), airtime.to_bits());
                }
                other => panic!("wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn policy_ids_with_escapes_roundtrip() {
        let id = PolicyId("we\"ird\\id\nwith\tcontrol\u{1}chars".into());
        let m = A1Message::DeletePolicy { policy_id: id };
        assert_eq!(A1Message::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "{\"msg\":\"NoSuch\"}",
            "not json",
            "",
            "{",
            "{\"msg\":\"KpiSample\",\"t_ms\":1}", // missing field
            "{\"msg\":\"KpiSample\",\"t_ms\":\"1\",\"bs_power_mw\":2}", // mistyped field
            "{\"msg\":\"KpiSample\",\"t_ms\":1.5,\"bs_power_mw\":2}", // non-integer u64
            "{\"msg\":\"KpiSample\",\"t_ms\":-1,\"bs_power_mw\":2}", // negative u64
            "{\"msg\":\"KpiSample\",\"t_ms\":1,\"bs_power_mw\":2} x", // trailing data
            "{\"msg\":\"Feedback\",\"policy_id\":\"a\",\"status\":\"Odd\"}",
        ] {
            let r = A1Message::from_json(bad);
            assert!(
                matches!(r, Err(OranError::Codec(_))),
                "{bad:?} must be a codec error, got {r:?}"
            );
        }
    }

    #[test]
    fn field_order_and_whitespace_are_flexible() {
        let j = " { \"bs_power_mw\" : 2 , \"msg\" : \"KpiSample\" , \"t_ms\" : 9 } ";
        assert_eq!(
            A1Message::from_json(j).unwrap(),
            A1Message::KpiSample { t_ms: 9, bs_power_mw: 2 }
        );
    }

    #[test]
    fn non_finite_airtime_encodes_without_panicking() {
        let m = A1Message::PutPolicy {
            policy_id: PolicyId("n".into()),
            policy_type: A1_POLICY_TYPE_RADIO,
            policy: RadioPolicy { airtime: f64::NAN, max_mcs: 1 },
        };
        let j = m.to_json();
        assert!(j.contains("null"), "{j}");
        match A1Message::from_json(&j).unwrap() {
            A1Message::PutPolicy { policy, .. } => assert!(policy.airtime.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn policy_validation() {
        assert!(RadioPolicy { airtime: 0.5, max_mcs: 28 }.is_valid());
        assert!(!RadioPolicy { airtime: 0.0, max_mcs: 5 }.is_valid());
        assert!(!RadioPolicy { airtime: 1.2, max_mcs: 5 }.is_valid());
        assert!(!RadioPolicy { airtime: 0.5, max_mcs: 29 }.is_valid());
    }
}

//! A1-P policy documents (O-RAN.WG2.A1AP style).

use serde::{Deserialize, Serialize};

/// The policy type id this workspace registers for its radio policy
/// (policy types are operator-assigned integers in A1).
pub const A1_POLICY_TYPE_RADIO: u32 = 20_008;

/// Identifier of a deployed policy instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicyId(pub String);

/// The radio policy content EdgeBOL deploys through A1: the two §3
/// policies the vBS must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPolicy {
    /// Policy 2 — uplink airtime fraction in (0, 1].
    pub airtime: f64,
    /// Policy 4 — maximum eligible MCS index (0..=28).
    pub max_mcs: u8,
}

/// Lifecycle status of a policy instance (A1 policy feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyStatus {
    /// Accepted and being enforced.
    Enforced,
    /// Rejected (malformed or unenforceable).
    Rejected,
    /// Deleted on request.
    Deleted,
}

/// Messages of the A1 Policy Management Service (plus the KPI stream the
/// data-collector rApp consumes via the O1/data path, which we carry on
/// the same duplex for simplicity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "msg")]
pub enum A1Message {
    /// non-RT RIC → near-RT RIC: create/update a policy instance.
    PutPolicy {
        policy_id: PolicyId,
        policy_type: u32,
        policy: RadioPolicy,
    },
    /// non-RT RIC → near-RT RIC: delete a policy instance.
    DeletePolicy { policy_id: PolicyId },
    /// near-RT RIC → non-RT RIC: policy feedback.
    Feedback { policy_id: PolicyId, status: PolicyStatus },
    /// near-RT RIC → non-RT RIC: forwarded vBS KPI sample (the paper's
    /// second xApp "manages data KPIs received from the base station …
    /// and forwards it to the learning agent").
    KpiSample {
        /// Millisecond timestamp within the experiment.
        t_ms: u64,
        /// BS power sample in milliwatts (integer to keep the wire format
        /// exact).
        bs_power_mw: u64,
    },
}

impl A1Message {
    /// Serializes to the JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("A1 message is always serializable")
    }

    /// Parses from the JSON wire form.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl RadioPolicy {
    /// Validates the ranges A1 policy-type schema would enforce.
    pub fn is_valid(&self) -> bool {
        self.airtime > 0.0 && self.airtime <= 1.0 && self.max_mcs <= 28
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_put_policy() {
        let m = A1Message::PutPolicy {
            policy_id: PolicyId("p-7".into()),
            policy_type: A1_POLICY_TYPE_RADIO,
            policy: RadioPolicy { airtime: 0.35, max_mcs: 17 },
        };
        let j = m.to_json();
        assert!(j.contains("PutPolicy"), "{j}");
        assert_eq!(A1Message::from_json(&j).unwrap(), m);
    }

    #[test]
    fn json_roundtrip_all_variants() {
        let msgs = [
            A1Message::DeletePolicy { policy_id: PolicyId("a".into()) },
            A1Message::Feedback {
                policy_id: PolicyId("a".into()),
                status: PolicyStatus::Enforced,
            },
            A1Message::KpiSample { t_ms: 123, bs_power_mw: 5_250 },
        ];
        for m in msgs {
            assert_eq!(A1Message::from_json(&m.to_json()).unwrap(), m);
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(A1Message::from_json("{\"msg\":\"NoSuch\"}").is_err());
        assert!(A1Message::from_json("not json").is_err());
    }

    #[test]
    fn policy_validation() {
        assert!(RadioPolicy { airtime: 0.5, max_mcs: 28 }.is_valid());
        assert!(!RadioPolicy { airtime: 0.0, max_mcs: 5 }.is_valid());
        assert!(!RadioPolicy { airtime: 1.2, max_mcs: 5 }.is_valid());
        assert!(!RadioPolicy { airtime: 0.5, max_mcs: 29 }.is_valid());
    }
}

//! O-RAN control plane for EdgeBOL.
//!
//! The paper deploys EdgeBOL as an O-RAN application (Fig. 7): an **rApp**
//! in the non-RT RIC talks the **A1** Policy Management Service to an
//! **xApp** in the near-RT RIC, which enforces radio policies on the
//! O-eNB over **E2** and returns vBS KPIs (power samples) upstream. This
//! crate implements that control plane:
//!
//! * [`a1`] — A1-P policy documents. O-RAN specifies A1 policies as JSON
//!   against a policy-type schema (O-RAN.WG2.A1AP), so these types
//!   round-trip through `serde_json` (the one dependency added beyond the
//!   pre-approved set; see DESIGN.md).
//! * [`e2`] — an E2AP-style binary codec over [`bytes`]: tagged,
//!   length-delimited frames carrying subscriptions, KPI indications and
//!   radio-control requests. Decoding is incremental: feed it a byte
//!   stream, get complete messages out.
//! * [`transport`] — duplex byte transports: an in-process pair backed by
//!   crossbeam channels (used by the orchestrator and the tests) and a
//!   length-framed TCP transport (used by the networked example) that
//!   follows the classic framing pattern of the Tokio tutorial, in
//!   blocking form.
//! * [`ric`] — the actors: [`ric::NonRtRic`] (policy service + data
//!   collector rApps), [`ric::NearRtRic`] (A1⇄E2 translation xApp) and
//!   [`ric::E2Node`] (the O-eNB's E2 agent, applying policies through a
//!   caller-provided hook and emitting KPI indications).
//!
//! Everything is synchronous and poll-driven, hence deterministic and
//! testable; the networked example wraps the same actors in threads.

pub mod a1;
pub mod e2;
pub mod ric;
pub mod transport;

pub use a1::{A1Message, PolicyId, PolicyStatus, RadioPolicy, A1_POLICY_TYPE_RADIO};
pub use e2::{E2Codec, E2Message, KpiReport};
pub use ric::{E2Node, NearRtRic, NonRtRic, RicEvent};
pub use transport::{duplex_pair, Endpoint, FramedTcp};

/// Errors of the O-RAN layer.
#[derive(Debug)]
pub enum OranError {
    /// A frame failed to decode.
    Codec(String),
    /// JSON (A1) payload failed to parse.
    Json(serde_json::Error),
    /// Transport failure (peer gone, socket error).
    Transport(String),
    /// I/O error from the TCP transport.
    Io(std::io::Error),
}

impl std::fmt::Display for OranError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OranError::Codec(m) => write!(f, "codec error: {m}"),
            OranError::Json(e) => write!(f, "A1 JSON error: {e}"),
            OranError::Transport(m) => write!(f, "transport error: {m}"),
            OranError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for OranError {}

impl From<serde_json::Error> for OranError {
    fn from(e: serde_json::Error) -> Self {
        OranError::Json(e)
    }
}

impl From<std::io::Error> for OranError {
    fn from(e: std::io::Error) -> Self {
        OranError::Io(e)
    }
}

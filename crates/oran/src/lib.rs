//! O-RAN control plane for EdgeBOL.
//!
//! The paper deploys EdgeBOL as an O-RAN application (Fig. 7): an **rApp**
//! in the non-RT RIC talks the **A1** Policy Management Service to an
//! **xApp** in the near-RT RIC, which enforces radio policies on the
//! O-eNB over **E2** and returns vBS KPIs (power samples) upstream. This
//! crate implements that control plane:
//!
//! * [`a1`] — A1-P policy documents. O-RAN specifies A1 policies as JSON
//!   against a policy-type schema (O-RAN.WG2.A1AP); the wire codec is
//!   hand-rolled so encoding is panic-free, `u64` fields are exact and
//!   `f64` fields round-trip bit-exactly (shortest-roundtrip encode,
//!   full-precision parse).
//! * [`e2`] — an E2AP-style binary codec over [`bytes`]: tagged,
//!   length-delimited frames carrying subscriptions, KPI indications and
//!   radio-control requests. Decoding is incremental: feed it a byte
//!   stream, get complete messages out.
//! * [`transport`] — duplex byte transports: an in-process pair backed by
//!   a std mutex-guarded queue (used by the orchestrator and the tests)
//!   and a length-framed TCP transport (used by the networked example)
//!   that follows the classic framing pattern of the Tokio tutorial, in
//!   blocking form.
//! * [`reactor`] — the fleet-scale transport: a zero-dependency
//!   non-blocking readiness loop (epoll on Linux, a nonblocking sweep
//!   elsewhere) multiplexing many framed-TCP sessions on one thread,
//!   surfaced through the same [`transport::Link`] seam so the chaos and
//!   recovery layers carry over unchanged.
//! * [`ric`] — the actors: [`ric::NonRtRic`] (policy service + data
//!   collector rApps), [`ric::NearRtRic`] (A1⇄E2 translation xApp) and
//!   [`ric::E2Node`] (the O-eNB's E2 agent, applying policies through a
//!   caller-provided hook and emitting KPI indications), plus
//!   [`ric::RicServer`] — the multi-node accept loop pairing one reactor
//!   with many E2 sessions.
//!
//! Everything is synchronous and poll-driven, hence deterministic and
//! testable; the networked example wraps the same actors in threads.

pub mod a1;
pub mod chaos;
pub mod e2;
pub mod ops;
pub mod reactor;
pub mod recovery;
pub mod ric;
pub mod transport;

pub use a1::{A1Message, PolicyId, PolicyStatus, RadioPolicy, A1_POLICY_TYPE_RADIO};
pub use chaos::{
    corrupt_payload, ChaosConfig, ChaosEndpoint, ChaosFramedTcp, ChaosPlan, Direction, FaultKind,
    FaultLedger, FaultRecord, LaneConfig, LinkId, MsgClass,
};
pub use e2::{E2Codec, E2Message, KpiReport};
pub use ops::{HealthHandle, OpsServer, OpsState};
pub use reactor::{
    HttpHandler, HttpResponse, Reactor, ReactorBackend, ReactorLink, ReactorListener, Token,
};
pub use recovery::{CircuitState, FallbackMode, RecoveryAction, RecoveryPolicy, Supervisor};
pub use ric::{E2Node, NearRtRic, NonRtRic, RicEvent, RicServer};
pub use transport::{duplex_pair, AnyLink, Endpoint, ErrorStash, FramedTcp, Link, TransportKind};

/// Errors of the O-RAN layer, split by protocol layer so callers can
/// route recovery: framing and codec errors mean a corrupt peer (drop
/// the message, keep the link), a closed channel means the link itself
/// is gone, and a handshake error means a protocol-state violation.
#[derive(Debug)]
pub enum OranError {
    /// Length-delimited framing violated: an oversized or impossible
    /// declared frame length, or a frame that can never complete.
    Framing(String),
    /// A complete frame failed to decode: unknown E2 tag, truncated
    /// payload, non-UTF-8 or malformed A1 JSON.
    Codec(String),
    /// The peer side of an in-process channel was dropped, or the socket
    /// closed; no further traffic is possible on this link.
    ChannelClosed(&'static str),
    /// A message arrived that the actor's protocol state does not allow
    /// (e.g. an A1 `PutPolicy` delivered to the non-RT RIC).
    Handshake(String),
    /// I/O error from the TCP transport.
    Io(std::io::Error),
}

impl std::fmt::Display for OranError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OranError::Framing(m) => write!(f, "framing error: {m}"),
            OranError::Codec(m) => write!(f, "codec error: {m}"),
            OranError::ChannelClosed(link) => write!(f, "channel closed: {link}"),
            OranError::Handshake(m) => write!(f, "handshake error: {m}"),
            OranError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for OranError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OranError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OranError {
    fn from(e: std::io::Error) -> Self {
        OranError::Io(e)
    }
}

impl OranError {
    /// Whether the link survives this error — `true` for a single corrupt
    /// or out-of-order message on a healthy link, `false` when the link
    /// itself is gone. The orchestrator's degraded mode keys off this:
    /// recoverable errors fall back to the last enforced policy / local
    /// power reading, unrecoverable ones surface to the caller.
    ///
    /// The match is deliberately exhaustive (no wildcard arm): adding an
    /// `OranError` variant without deciding its recovery class must fail
    /// to compile, and `tests::is_recoverable_classifies_every_variant`
    /// pins one assertion per variant.
    pub fn is_recoverable(&self) -> bool {
        match self {
            OranError::Framing(_) => true,
            OranError::Codec(_) => true,
            OranError::Handshake(_) => true,
            OranError::ChannelClosed(_) => false,
            OranError::Io(_) => false,
        }
    }

    /// The complement of [`OranError::is_recoverable`]: the link itself
    /// is unusable and no future traffic can cross it.
    pub fn is_connection_lost(&self) -> bool {
        !self.is_recoverable()
    }

    /// Whether this error ends the current *session* — the established
    /// link + protocol state — as opposed to damaging one message on a
    /// healthy link.
    ///
    /// This is a different axis than [`OranError::is_recoverable`]:
    /// a `ChannelClosed` is unrecoverable *within* a session (no further
    /// traffic crosses the dead link), yet it is exactly what the
    /// reconnect supervisor ([`recovery::Supervisor`]) retries — it tears
    /// the session down, re-establishes the link and resyncs protocol
    /// state. Message-level damage (`Framing`/`Codec`/`Handshake`) never
    /// requires a new session; degraded mode absorbs it in place.
    ///
    /// The match is deliberately exhaustive (no wildcard arm), like
    /// [`OranError::is_recoverable`], and
    /// `tests::is_session_fatal_classifies_every_variant` pins one
    /// assertion per variant.
    pub fn is_session_fatal(&self) -> bool {
        match self {
            OranError::Framing(_) => false,
            OranError::Codec(_) => false,
            OranError::Handshake(_) => false,
            OranError::ChannelClosed(_) => true,
            OranError::Io(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::OranError;

    /// One assertion per variant: classifying a new variant is forced by
    /// the exhaustive match in `is_recoverable`; getting the class right
    /// is pinned here.
    #[test]
    fn is_recoverable_classifies_every_variant() {
        // Message-level damage on a healthy link: recoverable.
        assert!(OranError::Framing("oversized frame".into()).is_recoverable());
        assert!(OranError::Codec("unknown tag".into()).is_recoverable());
        assert!(OranError::Handshake("unexpected message".into()).is_recoverable());
        // The link itself is gone: unrecoverable.
        assert!(!OranError::ChannelClosed("peer endpoint dropped").is_recoverable());
        assert!(!OranError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"))
            .is_recoverable());
    }

    /// One assertion per variant, mirroring
    /// `is_recoverable_classifies_every_variant` on the session axis:
    /// message damage keeps the session, link/transport loss ends it.
    #[test]
    fn is_session_fatal_classifies_every_variant() {
        // Message-level damage: the session survives.
        assert!(!OranError::Framing("oversized frame".into()).is_session_fatal());
        assert!(!OranError::Codec("unknown tag".into()).is_session_fatal());
        assert!(!OranError::Handshake("unexpected message".into()).is_session_fatal());
        // Link/transport loss: the session is over — but the supervisor
        // may establish a new one (see `recovery::Supervisor`).
        assert!(OranError::ChannelClosed("peer endpoint dropped").is_session_fatal());
        assert!(OranError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"))
            .is_session_fatal());
    }

    #[test]
    fn connection_lost_is_the_exact_complement() {
        let all = [
            OranError::Framing(String::new()),
            OranError::Codec(String::new()),
            OranError::Handshake(String::new()),
            OranError::ChannelClosed("x"),
            OranError::Io(std::io::Error::other("io")),
        ];
        for e in &all {
            assert_ne!(e.is_recoverable(), e.is_connection_lost(), "{e}");
            // On today's taxonomy the two axes coincide extensionally:
            // every session-fatal error is also connection-lost. The
            // distinction is in what callers do with it (give up within
            // the session vs hand to the supervisor), so both names are
            // kept and both matches stay exhaustive.
            assert_eq!(e.is_session_fatal(), e.is_connection_lost(), "{e}");
        }
    }
}

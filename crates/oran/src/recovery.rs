//! Reconnect supervision for the O-RAN control plane.
//!
//! The chaos layer (and any real deployment) can kill a control-plane
//! link mid-experiment. Before this module, a dead link was the end of
//! the run: every [`crate::OranError::ChannelClosed`] propagated as a fatal
//! `OrchestratorError`. The [`Supervisor`] turns a session loss into a
//! survivable episode instead:
//!
//! * **Deterministic backoff** — retry timing is expressed in the
//!   orchestrator's *period clock* (virtual time), never wall-clock
//!   sleeps, so a replay of the same seed reproduces the same reconnect
//!   schedule bit-exactly. Attempt `k` waits `min(base << k, cap)`
//!   periods.
//! * **Bounded retries + circuit breaker** — after
//!   [`RecoveryPolicy::max_retries`] failed resyncs the circuit latches
//!   [`CircuitState::Open`]: with [`FallbackMode::Sticky`] the caller
//!   keeps running in local-autonomy mode and the supervisor issues
//!   periodic half-open probes; with [`FallbackMode::Off`] the caller is
//!   told to give up with a typed error.
//! * **Session epochs** — each successful resync bumps
//!   [`Supervisor::epoch`]; in-flight frames from a dead session are
//!   drained and discarded by the resync protocol, and the epoch lets
//!   callers (and tests) attribute state to a session.
//! * **KPI watchdog** — [`Supervisor::note_kpi_silent`] counts
//!   consecutive periods without a fresh KPI sample and proactively
//!   trips a resync when the stream has been silent for
//!   [`RecoveryPolicy::watchdog_periods`] periods (0 disables it).
//!
//! The supervisor itself owns no transports: it is a pure, clocked state
//! machine. The orchestrator drives it — [`Supervisor::poll`] once per
//! period, then reports the outcome of any probe it was asked to run
//! ([`Supervisor::on_resync_ok`] / [`Supervisor::on_resync_failed`]).
//! That split keeps the policy logic unit-testable without a control
//! plane and keeps the resync protocol (re-handshake, re-subscribe,
//! re-push) where the actors live.
//!
//! When built with [`Supervisor::new_instrumented`], transitions are
//! mirrored into `edgebol_metrics`:
//! `edgebol_oran_reconnects_total{link,outcome}`, the
//! `edgebol_oran_backoff_periods` histogram, the
//! `edgebol_oran_circuit_state` gauge (0 = connected, 1 = backoff,
//! 2 = open, 3 = half-open probe) and
//! `edgebol_oran_watchdog_trips_total`.

use crate::chaos::LinkId;
use edgebol_metrics::{Counter, Gauge, Histogram, Registry};
use edgebol_trace::{Journal, Layer};
use std::sync::Arc;

/// What happens once the retry budget is exhausted and the circuit
/// latches open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackMode {
    /// No fallback: the supervisor tells the caller to give up with a
    /// typed error. Use when a silently-degraded run is worse than a
    /// dead one (CI invariants, accounting suites).
    Off,
    /// Local-autonomy mode, sticky: the caller keeps stepping on local
    /// readings and the last enforced policy while the supervisor issues
    /// periodic half-open probes. The default — a production control
    /// loop must survive its control plane.
    Sticky,
}

impl std::str::FromStr for FallbackMode {
    type Err = String;

    /// Parses the `EDGEBOL_FALLBACK` knob: `off` or `sticky`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim() {
            "off" => Ok(FallbackMode::Off),
            "sticky" | "" => Ok(FallbackMode::Sticky),
            other => Err(format!("invalid fallback mode {other:?}: expected off or sticky")),
        }
    }
}

/// Tunables of the reconnect supervisor. All horizons are measured in
/// orchestrator periods (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Resync attempts before the circuit opens.
    pub max_retries: u32,
    /// Backoff base: attempt `k` waits `min(base << k, cap)` periods.
    pub backoff_base: u64,
    /// Backoff ceiling in periods.
    pub backoff_cap: u64,
    /// Half-open probe interval (periods) while the circuit is open.
    pub probe_every: u64,
    /// KPI watchdog horizon: consecutive silent periods before a
    /// proactive resync is tripped. `0` disables the watchdog.
    pub watchdog_periods: u64,
    /// What to do when the retry budget is exhausted.
    pub fallback: FallbackMode,
}

impl Default for RecoveryPolicy {
    /// Eight attempts over ~47 periods (1, 2, 4, 8, 8, … period gaps),
    /// half-open probes every 8 periods, watchdog off, sticky fallback.
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 8,
            backoff_base: 1,
            backoff_cap: 8,
            probe_every: 8,
            watchdog_periods: 0,
            fallback: FallbackMode::Sticky,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff for retry attempt `k` (0-based), in periods:
    /// `min(base << k, cap)`, at least 1.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shifted = if attempt >= 63 {
            self.backoff_cap
        } else {
            self.backoff_base.saturating_shl(attempt).min(self.backoff_cap)
        };
        shifted.max(1)
    }

    /// Builder: sets the fallback mode.
    pub fn with_fallback(mut self, fallback: FallbackMode) -> Self {
        self.fallback = fallback;
        self
    }

    /// Builder: sets the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Builder: sets the KPI watchdog horizon (0 disables).
    pub fn with_watchdog(mut self, periods: u64) -> Self {
        self.watchdog_periods = periods;
        self
    }
}

/// The supervisor's circuit, advanced by [`Supervisor::poll`] on the
/// period clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// The control plane is up; traffic flows normally.
    Connected,
    /// A session died; the next resync attempt runs at `retry_at`.
    Backoff {
        /// 0-based resync attempt this backoff leads to.
        attempt: u32,
        /// Period at which the attempt runs.
        retry_at: u64,
    },
    /// The retry budget is exhausted; the circuit is latched open. Under
    /// [`FallbackMode::Sticky`] a half-open probe runs at `probe_at`.
    Open {
        /// Period of the next half-open probe.
        probe_at: u64,
    },
}

impl CircuitState {
    /// The `edgebol_oran_circuit_state` gauge encoding (a half-open
    /// probe in flight is reported by the supervisor as 3).
    fn gauge_value(&self) -> f64 {
        match self {
            CircuitState::Connected => 0.0,
            CircuitState::Backoff { .. } => 1.0,
            CircuitState::Open { .. } => 2.0,
        }
    }
}

/// What the caller must do this period, as decided by
/// [`Supervisor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Connected: run the normal control-plane round trip.
    Proceed,
    /// An outage is in progress and it is not yet time to probe: run on
    /// local autonomy (and keep the link clocks ticking).
    Wait,
    /// Run one resync attempt now and report the outcome via
    /// [`Supervisor::on_resync_ok`] / [`Supervisor::on_resync_failed`].
    Probe {
        /// 0-based attempt number (`max_retries` and beyond are
        /// half-open probes of an open circuit).
        attempt: u32,
        /// Whether this probes an open circuit (half-open) rather than a
        /// budgeted backoff retry.
        half_open: bool,
    },
    /// The budget is gone and fallback is [`FallbackMode::Off`]: surface
    /// a typed error to the operator.
    GiveUp {
        /// The link whose loss opened the circuit.
        link: LinkId,
        /// Resync attempts made before latching open.
        attempts: u32,
    },
}

/// The reconnect supervisor: a deterministic, period-clocked state
/// machine deciding when to retry, when to run on local autonomy and
/// when to give up. See the module docs for the protocol.
#[derive(Debug)]
pub struct Supervisor {
    policy: RecoveryPolicy,
    state: CircuitState,
    /// The link whose session loss started the current (or last) outage.
    lost_link: LinkId,
    /// Bumped on every successful resync; session 0 is the bootstrap.
    epoch: u64,
    /// Consecutive periods without a fresh KPI sample (watchdog input).
    kpi_silent: u64,
    reconnects_ok: u64,
    reconnects_failed: u64,
    watchdog_trips: u64,
    // Metric handles, pre-resolved at construction (no-ops for a
    // disabled registry).
    m_ok_a1: Counter,
    m_ok_e2: Counter,
    m_failed_a1: Counter,
    m_failed_e2: Counter,
    m_backoff: Histogram,
    m_state: Gauge,
    m_trips: Counter,
    /// Optional event journal receiving one event per circuit
    /// transition (see [`Supervisor::set_journal`]).
    journal: Option<Arc<Journal>>,
}

/// Backoff histogram buckets: the default policy caps at 8 periods, but
/// callers may raise the cap, so the ladder runs to 64.
const BACKOFF_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

impl Supervisor {
    /// A supervisor without metrics.
    pub fn new(policy: RecoveryPolicy) -> Self {
        Self::new_instrumented(policy, &Registry::disabled())
    }

    /// A supervisor mirroring transitions into `metrics` (see the module
    /// docs for the series it records).
    pub fn new_instrumented(policy: RecoveryPolicy, metrics: &Registry) -> Self {
        metrics.describe(
            "edgebol_oran_reconnects_total",
            "Reconnect attempts, by lost link and outcome",
        );
        metrics.describe("edgebol_oran_backoff_periods", "Backoff episode lengths in periods");
        metrics.describe(
            "edgebol_oran_circuit_state",
            "Circuit state (0 connected, 1 backoff, 2 open, 3 half-open)",
        );
        metrics.describe(
            "edgebol_oran_watchdog_trips_total",
            "KPI-silence watchdog trips that forced a reconnect",
        );
        let reconnect = |link: &'static str, outcome: &'static str| {
            metrics.counter_with(
                "edgebol_oran_reconnects_total",
                &[("link", link), ("outcome", outcome)],
            )
        };
        let s = Supervisor {
            policy,
            state: CircuitState::Connected,
            lost_link: LinkId::E2,
            epoch: 0,
            kpi_silent: 0,
            reconnects_ok: 0,
            reconnects_failed: 0,
            watchdog_trips: 0,
            m_ok_a1: reconnect("A1", "ok"),
            m_ok_e2: reconnect("E2", "ok"),
            m_failed_a1: reconnect("A1", "failed"),
            m_failed_e2: reconnect("E2", "failed"),
            m_backoff: metrics.histogram("edgebol_oran_backoff_periods", BACKOFF_BOUNDS),
            m_state: metrics.gauge("edgebol_oran_circuit_state"),
            m_trips: metrics.counter("edgebol_oran_watchdog_trips_total"),
            journal: None,
        };
        s.m_state.set(0.0);
        s
    }

    /// Attaches an event journal: every circuit transition (session
    /// loss, resync outcome, watchdog trip) is recorded under
    /// [`Layer::Recovery`] in addition to the metrics mirrors.
    pub fn set_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    fn journal_event(&self, kind: &'static str, period: u64, fields: Vec<(&'static str, String)>) {
        if let Some(j) = &self.journal {
            j.record(Layer::Recovery, kind, Some(period), fields);
        }
    }

    /// The policy this supervisor runs.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The current circuit state.
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Whether the control plane is currently usable.
    pub fn is_connected(&self) -> bool {
        self.state == CircuitState::Connected
    }

    /// The current session epoch (bumped on every successful resync).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Successful resyncs so far (metrics-independent, for determinism
    /// assertions).
    pub fn reconnects_ok(&self) -> u64 {
        self.reconnects_ok
    }

    /// Failed resync attempts so far.
    pub fn reconnects_failed(&self) -> u64 {
        self.reconnects_failed
    }

    /// KPI watchdog trips so far.
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips
    }

    /// Serializes the circuit's evolving state (state machine, lost
    /// link, epoch, watchdog and reconnect counters) for checkpointing.
    /// The policy and metric handles are construction-time configuration
    /// and are not serialized.
    pub fn export_state(&self) -> Vec<u8> {
        let mut e = edgebol_ckpt::Enc::new();
        match self.state {
            CircuitState::Connected => e.u8(0),
            CircuitState::Backoff { attempt, retry_at } => {
                e.u8(1);
                e.u32(attempt);
                e.u64(retry_at);
            }
            CircuitState::Open { probe_at } => {
                e.u8(2);
                e.u64(probe_at);
            }
        }
        e.u8(match self.lost_link {
            LinkId::A1 => 0,
            LinkId::E2 => 1,
        });
        e.u64(self.epoch);
        e.u64(self.kpi_silent);
        e.u64(self.reconnects_ok);
        e.u64(self.reconnects_failed);
        e.u64(self.watchdog_trips);
        e.finish()
    }

    /// Restores state exported by [`Self::export_state`] onto a
    /// supervisor running the same policy, and re-publishes the
    /// circuit-state gauge so `/metrics` tells the truth immediately.
    ///
    /// # Errors
    /// A typed [`edgebol_ckpt::CkptError`] on malformed payloads; the
    /// supervisor is left unchanged on error.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        use edgebol_ckpt::{CkptError, Dec};
        let mut d = Dec::new(bytes);
        let state = match d.u8()? {
            0 => CircuitState::Connected,
            1 => CircuitState::Backoff { attempt: d.u32()?, retry_at: d.u64()? },
            2 => CircuitState::Open { probe_at: d.u64()? },
            other => return Err(CkptError::BadValue(format!("circuit state tag {other}"))),
        };
        let lost_link = match d.u8()? {
            0 => LinkId::A1,
            1 => LinkId::E2,
            other => return Err(CkptError::BadValue(format!("link tag {other}"))),
        };
        let epoch = d.u64()?;
        let kpi_silent = d.u64()?;
        let reconnects_ok = d.u64()?;
        let reconnects_failed = d.u64()?;
        let watchdog_trips = d.u64()?;
        d.expect_end()?;
        self.state = state;
        self.lost_link = lost_link;
        self.epoch = epoch;
        self.kpi_silent = kpi_silent;
        self.reconnects_ok = reconnects_ok;
        self.reconnects_failed = reconnects_failed;
        self.watchdog_trips = watchdog_trips;
        self.m_state.set(state.gauge_value());
        Ok(())
    }

    /// Decides this period's action. Pure with respect to the clock —
    /// the same `(state, period)` always yields the same action; the
    /// only side effect is the circuit-state gauge (3 while a half-open
    /// probe is issued).
    pub fn poll(&mut self, period: u64) -> RecoveryAction {
        match self.state {
            CircuitState::Connected => RecoveryAction::Proceed,
            CircuitState::Backoff { attempt, retry_at } => {
                if period >= retry_at {
                    RecoveryAction::Probe { attempt, half_open: false }
                } else {
                    RecoveryAction::Wait
                }
            }
            CircuitState::Open { probe_at } => match self.policy.fallback {
                FallbackMode::Off => RecoveryAction::GiveUp {
                    link: self.lost_link,
                    attempts: self.policy.max_retries,
                },
                FallbackMode::Sticky => {
                    if period >= probe_at {
                        self.m_state.set(3.0);
                        RecoveryAction::Probe { attempt: self.policy.max_retries, half_open: true }
                    } else {
                        RecoveryAction::Wait
                    }
                }
            },
        }
    }

    /// Reports a session loss on `link` at `period`. Only a `Connected`
    /// circuit transitions (losses reported while already reconnecting
    /// are the same outage); the first resync attempt is scheduled one
    /// backoff step out.
    pub fn on_connection_lost(&mut self, link: LinkId, period: u64) {
        if self.state != CircuitState::Connected {
            return;
        }
        self.lost_link = link;
        let wait = self.policy.backoff(0);
        self.m_backoff.observe(wait as f64);
        self.state = CircuitState::Backoff { attempt: 0, retry_at: period + wait };
        self.m_state.set(self.state.gauge_value());
        self.journal_event(
            "connection_lost",
            period,
            vec![("link", link.label().to_string()), ("retry_at", (period + wait).to_string())],
        );
    }

    /// Reports a successful resync: the circuit closes and a new session
    /// epoch begins.
    pub fn on_resync_ok(&mut self, period: u64) {
        self.epoch += 1;
        self.kpi_silent = 0;
        self.reconnects_ok += 1;
        match self.lost_link {
            LinkId::A1 => self.m_ok_a1.inc(),
            LinkId::E2 => self.m_ok_e2.inc(),
        }
        self.state = CircuitState::Connected;
        self.m_state.set(self.state.gauge_value());
        self.journal_event(
            "resync_ok",
            period,
            vec![("link", self.lost_link.label().to_string()), ("epoch", self.epoch.to_string())],
        );
    }

    /// Reports a failed resync attempt at `period`: schedules the next
    /// attempt one backoff step out, or latches the circuit open once
    /// the budget is spent. A failed *half-open* probe re-arms the next
    /// probe without consuming budget (the circuit is already open).
    pub fn on_resync_failed(&mut self, period: u64) {
        self.reconnects_failed += 1;
        match self.lost_link {
            LinkId::A1 => self.m_failed_a1.inc(),
            LinkId::E2 => self.m_failed_e2.inc(),
        }
        match self.state {
            CircuitState::Connected => {} // spurious report; ignore
            CircuitState::Open { .. } => {
                self.state = CircuitState::Open { probe_at: period + self.policy.probe_every };
                self.m_state.set(self.state.gauge_value());
                self.journal_event(
                    "probe_failed",
                    period,
                    vec![("link", self.lost_link.label().to_string())],
                );
            }
            CircuitState::Backoff { attempt, .. } => {
                let next = attempt + 1;
                if next >= self.policy.max_retries {
                    self.state = CircuitState::Open { probe_at: period + self.policy.probe_every };
                    self.journal_event(
                        "circuit_open",
                        period,
                        vec![
                            ("link", self.lost_link.label().to_string()),
                            ("attempts", next.to_string()),
                        ],
                    );
                } else {
                    let wait = self.policy.backoff(next);
                    self.m_backoff.observe(wait as f64);
                    self.state = CircuitState::Backoff { attempt: next, retry_at: period + wait };
                    self.journal_event(
                        "resync_failed",
                        period,
                        vec![
                            ("link", self.lost_link.label().to_string()),
                            ("attempt", next.to_string()),
                            ("retry_at", (period + wait).to_string()),
                        ],
                    );
                }
                self.m_state.set(self.state.gauge_value());
            }
        }
    }

    /// Reports a fresh KPI sample: the watchdog counter resets.
    pub fn note_kpi_fresh(&mut self) {
        self.kpi_silent = 0;
    }

    /// Reports a period without a fresh KPI sample. When the watchdog is
    /// enabled and the stream has now been silent for
    /// [`RecoveryPolicy::watchdog_periods`] consecutive periods while
    /// the circuit is `Connected`, a proactive E2 resync is tripped (the
    /// first attempt runs next period) and `true` is returned.
    pub fn note_kpi_silent(&mut self, period: u64) -> bool {
        self.kpi_silent += 1;
        if self.policy.watchdog_periods == 0
            || self.kpi_silent < self.policy.watchdog_periods
            || self.state != CircuitState::Connected
        {
            return false;
        }
        self.watchdog_trips += 1;
        self.m_trips.inc();
        self.kpi_silent = 0;
        self.lost_link = LinkId::E2;
        self.state = CircuitState::Backoff { attempt: 0, retry_at: period + 1 };
        self.m_state.set(self.state.gauge_value());
        self.journal_event("watchdog_trip", period, vec![("link", "E2".to_string())]);
        true
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (the std
/// method returns `None` on overflow; backoff wants the cap).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(0), 1);
        assert_eq!(p.backoff(1), 2);
        assert_eq!(p.backoff(2), 4);
        assert_eq!(p.backoff(3), 8);
        assert_eq!(p.backoff(4), 8, "capped");
        assert_eq!(p.backoff(200), 8, "huge attempts stay capped");
        let zero = RecoveryPolicy { backoff_base: 0, ..RecoveryPolicy::default() };
        assert_eq!(zero.backoff(0), 1, "never waits zero periods");
    }

    #[test]
    fn export_import_resumes_mid_outage() {
        let mut live = Supervisor::new(RecoveryPolicy::default());
        live.on_connection_lost(LinkId::E2, 10);
        assert_eq!(live.poll(11), RecoveryAction::Probe { attempt: 0, half_open: false });
        live.on_resync_failed(11);
        let snapshot = live.export_state();
        let mut restored = Supervisor::new(RecoveryPolicy::default());
        restored.import_state(&snapshot).unwrap();
        assert_eq!(restored.state(), live.state());
        assert_eq!(restored.reconnects_failed(), 1);
        // Both walk the identical backoff ladder from here.
        for t in 12..30 {
            assert_eq!(live.poll(t), restored.poll(t), "t={t}");
        }
        // Corrupt payloads are typed errors, not panics, and leave the
        // supervisor unchanged.
        let before = restored.state();
        assert!(restored.import_state(&snapshot[..snapshot.len() - 3]).is_err());
        assert!(restored.import_state(&[9u8]).is_err());
        assert_eq!(restored.state(), before);
    }

    #[test]
    fn happy_path_stays_connected() {
        let mut s = Supervisor::new(RecoveryPolicy::default());
        for t in 0..100 {
            assert_eq!(s.poll(t), RecoveryAction::Proceed);
        }
        assert_eq!(s.epoch(), 0);
        assert!(s.is_connected());
    }

    #[test]
    fn loss_probes_on_the_deterministic_backoff_schedule() {
        let mut s = Supervisor::new(RecoveryPolicy::default());
        s.on_connection_lost(LinkId::E2, 10);
        // Attempt k runs at 10 + sum of backoffs: 11, 13, 17, 25, ...
        let mut expected_probe_at = vec![];
        let mut at = 10;
        for k in 0..4u32 {
            at += s.policy().backoff(k);
            expected_probe_at.push(at);
        }
        assert_eq!(expected_probe_at, vec![11, 13, 17, 25]);
        for (k, &probe_at) in expected_probe_at.iter().enumerate() {
            for t in (probe_at - s.policy().backoff(k as u32))..probe_at {
                assert_eq!(s.poll(t), RecoveryAction::Wait, "t={t}");
            }
            assert_eq!(
                s.poll(probe_at),
                RecoveryAction::Probe { attempt: k as u32, half_open: false }
            );
            s.on_resync_failed(probe_at);
        }
        assert_eq!(s.reconnects_failed(), 4);
    }

    #[test]
    fn successful_resync_closes_the_circuit_and_bumps_the_epoch() {
        let mut s = Supervisor::new(RecoveryPolicy::default());
        s.on_connection_lost(LinkId::A1, 5);
        assert_eq!(s.poll(5), RecoveryAction::Wait);
        assert_eq!(s.poll(6), RecoveryAction::Probe { attempt: 0, half_open: false });
        s.on_resync_ok(6);
        assert!(s.is_connected());
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.reconnects_ok(), 1);
        assert_eq!(s.poll(7), RecoveryAction::Proceed);
        // A second outage starts a fresh backoff ladder.
        s.on_connection_lost(LinkId::A1, 8);
        assert_eq!(s.poll(9), RecoveryAction::Probe { attempt: 0, half_open: false });
    }

    #[test]
    fn exhausted_budget_opens_the_circuit_with_half_open_probes() {
        let policy = RecoveryPolicy { max_retries: 2, probe_every: 5, ..RecoveryPolicy::default() };
        let mut s = Supervisor::new(policy);
        s.on_connection_lost(LinkId::E2, 0);
        assert_eq!(s.poll(1), RecoveryAction::Probe { attempt: 0, half_open: false });
        s.on_resync_failed(1);
        assert_eq!(s.poll(3), RecoveryAction::Probe { attempt: 1, half_open: false });
        s.on_resync_failed(3);
        assert_eq!(s.state(), CircuitState::Open { probe_at: 8 });
        for t in 4..8 {
            assert_eq!(s.poll(t), RecoveryAction::Wait, "t={t}");
        }
        assert_eq!(s.poll(8), RecoveryAction::Probe { attempt: 2, half_open: true });
        s.on_resync_failed(8);
        assert_eq!(s.state(), CircuitState::Open { probe_at: 13 });
        // A half-open probe that succeeds closes the circuit normally.
        assert_eq!(s.poll(13), RecoveryAction::Probe { attempt: 2, half_open: true });
        s.on_resync_ok(13);
        assert!(s.is_connected());
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn fallback_off_gives_up_once_open() {
        let policy = RecoveryPolicy {
            max_retries: 1,
            fallback: FallbackMode::Off,
            ..RecoveryPolicy::default()
        };
        let mut s = Supervisor::new(policy);
        s.on_connection_lost(LinkId::E2, 0);
        assert_eq!(s.poll(1), RecoveryAction::Probe { attempt: 0, half_open: false });
        s.on_resync_failed(1);
        assert_eq!(s.poll(2), RecoveryAction::GiveUp { link: LinkId::E2, attempts: 1 });
        // GiveUp is stable: polling again yields the same verdict.
        assert_eq!(s.poll(50), RecoveryAction::GiveUp { link: LinkId::E2, attempts: 1 });
    }

    #[test]
    fn watchdog_trips_after_n_silent_periods_and_resets_on_fresh() {
        let policy = RecoveryPolicy { watchdog_periods: 3, ..RecoveryPolicy::default() };
        let mut s = Supervisor::new(policy);
        assert!(!s.note_kpi_silent(0));
        assert!(!s.note_kpi_silent(1));
        s.note_kpi_fresh(); // streak broken
        assert!(!s.note_kpi_silent(2));
        assert!(!s.note_kpi_silent(3));
        assert!(s.note_kpi_silent(4), "third consecutive silent period trips");
        assert_eq!(s.watchdog_trips(), 1);
        assert_eq!(s.state(), CircuitState::Backoff { attempt: 0, retry_at: 5 });
        // Already reconnecting: further silence does not re-trip.
        assert!(!s.note_kpi_silent(5));
        assert!(!s.note_kpi_silent(6));
        assert!(!s.note_kpi_silent(7));
    }

    #[test]
    fn watchdog_disabled_by_default() {
        let mut s = Supervisor::new(RecoveryPolicy::default());
        for t in 0..1000 {
            assert!(!s.note_kpi_silent(t));
        }
        assert!(s.is_connected());
    }

    #[test]
    fn fallback_mode_parses() {
        assert_eq!("off".parse::<FallbackMode>().unwrap(), FallbackMode::Off);
        assert_eq!("sticky".parse::<FallbackMode>().unwrap(), FallbackMode::Sticky);
        assert_eq!("".parse::<FallbackMode>().unwrap(), FallbackMode::Sticky);
        assert!("both".parse::<FallbackMode>().is_err());
    }

    #[test]
    fn metrics_mirror_the_transitions() {
        let reg = Registry::new();
        let mut s = Supervisor::new_instrumented(
            RecoveryPolicy { max_retries: 1, probe_every: 2, ..RecoveryPolicy::default() },
            &reg,
        );
        s.on_connection_lost(LinkId::E2, 0);
        s.on_resync_failed(1); // budget of 1 spent -> open
        assert_eq!(s.poll(3), RecoveryAction::Probe { attempt: 1, half_open: true });
        s.on_resync_ok(3);
        let snap = reg.snapshot();
        let key = |o: &str| format!("edgebol_oran_reconnects_total{{link=\"E2\",outcome=\"{o}\"}}");
        assert_eq!(snap.counter(&key("ok")), Some(1));
        assert_eq!(snap.counter(&key("failed")), Some(1));
        assert_eq!(snap.gauge("edgebol_oran_circuit_state"), Some(0.0));
    }
}

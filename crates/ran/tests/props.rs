//! Property-based tests of the vRAN model.

use edgebol_ran::phy::{required_snr_db, CARRIER_PRBS};
use edgebol_ran::{
    bler, cqi_from_snr, max_mcs_for_cqi, mcs_efficiency, tbs_bits, AirtimePolicy, BbuPowerModel,
    ChannelModel, HarqModel, Mcs, McsPolicy, SliceScheduler, UeLink,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// BLER is a proper probability, monotone decreasing in SNR and
    /// monotone increasing in MCS.
    #[test]
    fn bler_monotonicity(snr in -20.0f64..45.0, mcs in 0u8..28) {
        let m = Mcs(mcs);
        let b = bler(snr, m);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(bler(snr + 1.0, m) <= b + 1e-12, "BLER must fall with SNR");
        prop_assert!(bler(snr, Mcs(mcs + 1)) >= b - 1e-12, "BLER must rise with MCS");
    }

    /// HARQ analytic quantities are consistent: goodput in (0,1],
    /// expected attempts in [1, max], residual loss a probability.
    #[test]
    fn harq_consistency(snr in -10.0f64..40.0, mcs in 0u8..=28) {
        let h = HarqModel::default();
        let m = Mcs(mcs);
        let e = h.expected_attempts(snr, m);
        prop_assert!((1.0..=h.max_attempts as f64).contains(&e));
        let loss = h.residual_loss(snr, m);
        prop_assert!((0.0..=1.0).contains(&loss));
        let gf = h.goodput_factor(snr, m);
        prop_assert!(gf > 0.0 && gf <= 1.0, "goodput factor {gf}");
        // Goodput improves with SNR.
        prop_assert!(h.goodput_factor(snr + 2.0, m) >= gf - 1e-9);
    }

    /// Scheduler duty accounting always respects the airtime policy.
    #[test]
    fn scheduler_respects_airtime(frac in 0.05f64..=1.0, seed in 0u64..100) {
        let mut s = SliceScheduler::new(AirtimePolicy(frac), McsPolicy(Mcs::MAX), 22);
        let mut ues = vec![{
            let mut ue = UeLink::new(30.0);
            ue.backlog_bits = f64::INFINITY;
            ue
        }];
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..4000 {
            s.tick(&mut ues, &mut rng);
        }
        prop_assert!(
            s.realized_duty() <= frac + 0.01,
            "duty {} exceeds policy {}",
            s.realized_duty(),
            frac
        );
    }

    /// Grants never exceed the policy MCS cap or the channel support.
    #[test]
    fn grants_respect_caps(cap in 0u8..=28, snr in 0.0f64..40.0, seed in 0u64..50) {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs(cap)), 22);
        let mut ues = vec![{
            let mut ue = UeLink::new(snr);
            ue.backlog_bits = f64::INFINITY;
            ue
        }];
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                prop_assert!(g.mcs.index() <= cap as usize);
                prop_assert!(g.tb_bits > 0.0);
            }
        }
    }

    /// BBU power stays within the physical envelope for any load mix.
    #[test]
    fn bbu_power_envelope(occ in 0.0f64..=1.0, mcs in 0u8..=28) {
        let m = BbuPowerModel::default();
        let p = m.power_w(occ, Mcs(mcs));
        prop_assert!(p >= m.idle_w - 1e-12);
        prop_assert!(p <= m.peak_w() + 1e-12);
    }

    /// TBS grows with both MCS and PRBs; the full carrier at top MCS is
    /// in the ~50 Mb/s class the paper quotes.
    #[test]
    fn tbs_monotone(mcs in 0u8..28, prbs in 1usize..CARRIER_PRBS) {
        let m = Mcs(mcs);
        prop_assert!(tbs_bits(Mcs(mcs + 1), prbs) > tbs_bits(m, prbs));
        prop_assert!(tbs_bits(m, prbs + 1) > tbs_bits(m, prbs));
        prop_assert!(mcs_efficiency(m) > 0.0);
    }

    /// The CQI→MCS mapping is link-consistent: the mapped MCS's required
    /// SNR never exceeds the reporting SNR by more than the waterfall
    /// width. (Below MCS 0's own decodability floor of ≈ -6.5 dB there is
    /// no MCS to fall back to — CQI 1 is the minimum — so the property
    /// starts above that floor.)
    #[test]
    fn cqi_mcs_link_consistency(snr in -5.0f64..45.0) {
        let mcs = max_mcs_for_cqi(cqi_from_snr(snr));
        prop_assert!(required_snr_db(mcs) <= snr + 1.5, "mcs {:?} too aggressive", mcs);
    }

    /// Channel samples stay finite and CQIs valid for any mean SNR.
    #[test]
    fn channel_outputs_valid(mean in -10.0f64..45.0, seed in 0u64..50) {
        let mut ch = ChannelModel::new(mean);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = ch.sample_snr(&mut rng);
            prop_assert!(s.is_finite());
            let c = ch.sample_cqi(&mut rng);
            prop_assert!((1..=15).contains(&c));
        }
    }
}

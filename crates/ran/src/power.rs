//! BBU power model (Performance Indicator 4).
//!
//! The paper measures the virtualized BS's baseband power with a digital
//! power meter and finds two regimes (Figs. 5–6):
//!
//! * **Low load** — higher MCS *lowers* BS power: subframes modulated with
//!   higher MCS "incur higher instantaneous power consumption, \[but\] they
//!   process the load faster, which pays off in terms of power consumption
//!   over the long run".
//! * **Saturating load (10x)** — higher MCS *raises* BS power for
//!   high-resolution traffic: the duty cycle is pinned at the airtime cap,
//!   so the per-subframe decode cost dominates.
//!
//! We model exactly that mechanism: an idle floor plus a per-occupied-
//! subframe cost with a fixed FFT/demodulation part and an MCS-dependent
//! FEC-decoding part that grows *sublinearly* with spectral efficiency.
//! Because occupancy falls as `1/efficiency` at fixed offered load, the
//! product (power) decreases with MCS when unsaturated and increases with
//! MCS when occupancy is pinned — reproducing both figures from a single
//! model.

use crate::phy::{mcs_efficiency, Mcs};
use serde::{Deserialize, Serialize};

/// Baseband-unit power model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BbuPowerModel {
    /// Idle baseband power (W): the srsRAN process + NUC platform share
    /// attributable to the vBS when no subframe is processed.
    pub idle_w: f64,
    /// Power per fully-occupied subframe-second for FFT/demodulation and
    /// channel estimation (MCS-independent), in W.
    pub fft_w: f64,
    /// FEC-decode power at MCS 28 occupancy 1.0, in W.
    pub decode_max_w: f64,
    /// Sublinearity exponent of decode cost vs spectral efficiency.
    pub decode_exponent: f64,
}

impl Default for BbuPowerModel {
    fn default() -> Self {
        // Calibrated against the 4.75–7.5 W range of Figs. 5–6.
        BbuPowerModel { idle_w: 4.3, fft_w: 1.8, decode_max_w: 1.4, decode_exponent: 0.5 }
    }
}

impl BbuPowerModel {
    /// FEC-decode power contribution (W) at full occupancy for an MCS.
    pub fn decode_w(&self, mcs: Mcs) -> f64 {
        let rel = mcs_efficiency(mcs) / mcs_efficiency(Mcs::MAX);
        self.decode_max_w * rel.powf(self.decode_exponent)
    }

    /// Instantaneous BBU power (W) given the slice's subframe occupancy
    /// (fraction of subframes being processed, in [0, 1]) and the MCS in
    /// use on those subframes.
    ///
    /// # Panics
    /// Panics if `occupancy` is outside `[0, 1]`.
    pub fn power_w(&self, occupancy: f64, mcs: Mcs) -> f64 {
        assert!((0.0..=1.0).contains(&occupancy), "occupancy must be in [0,1]");
        self.idle_w + occupancy * (self.fft_w + self.decode_w(mcs))
    }

    /// Power for a mixture of MCSs: `occupancies[i]` is the subframe
    /// fraction spent decoding `mcs_list[i]`. Used by the DES, where every
    /// grant can carry a different MCS.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or total occupancy
    /// exceeds 1 (plus small numerical slack).
    pub fn power_mixture_w(&self, occupancies: &[f64], mcs_list: &[Mcs]) -> f64 {
        assert_eq!(occupancies.len(), mcs_list.len(), "mixture slices must align");
        let total: f64 = occupancies.iter().sum();
        assert!(total <= 1.0 + 1e-9, "total occupancy {total} > 1");
        let mut p = self.idle_w;
        for (&occ, &m) in occupancies.iter().zip(mcs_list) {
            p += occ * (self.fft_w + self.decode_w(m));
        }
        p
    }

    /// Peak power: full occupancy at MCS 28.
    pub fn peak_w(&self) -> f64 {
        self.power_w(1.0, Mcs::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_when_unoccupied() {
        let m = BbuPowerModel::default();
        assert_eq!(m.power_w(0.0, Mcs(0)), m.idle_w);
        assert_eq!(m.power_w(0.0, Mcs::MAX), m.idle_w);
    }

    #[test]
    fn calibrated_range_matches_paper() {
        let m = BbuPowerModel::default();
        assert!((4.0..=5.0).contains(&m.idle_w));
        assert!((7.0..=8.0).contains(&m.peak_w()), "peak {}", m.peak_w());
    }

    #[test]
    fn power_monotone_in_occupancy() {
        let m = BbuPowerModel::default();
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = m.power_w(i as f64 / 10.0, Mcs(14));
            assert!(p > prev || i == 0);
            prev = p;
        }
    }

    #[test]
    fn per_subframe_cost_monotone_in_mcs() {
        let m = BbuPowerModel::default();
        let mut prev = 0.0;
        for i in 0..29 {
            let p = m.power_w(1.0, Mcs(i));
            assert!(p > prev, "fixed-occupancy power must rise with MCS");
            prev = p;
        }
    }

    /// The Fig. 5 regime: at fixed offered load (occupancy ∝ 1/efficiency),
    /// total power must *fall* as MCS rises.
    #[test]
    fn fixed_load_power_decreases_with_mcs() {
        let m = BbuPowerModel::default();
        // Offered load that occupies 90% of subframes at MCS 4.
        let load = 0.9 * mcs_efficiency(Mcs(4));
        let mut prev = f64::INFINITY;
        for i in 4..29 {
            let mcs = Mcs(i);
            let occ = (load / mcs_efficiency(mcs)).min(1.0);
            let p = m.power_w(occ, mcs);
            assert!(p < prev, "fixed-load power must fall with MCS (mcs {i}: {p} !< {prev})");
            prev = p;
        }
    }

    /// The Fig. 6 regime: when occupancy is pinned by the airtime cap,
    /// power must *rise* with MCS.
    #[test]
    fn saturated_power_increases_with_mcs() {
        let m = BbuPowerModel::default();
        let p_low = m.power_w(1.0, Mcs(2));
        let p_high = m.power_w(1.0, Mcs(28));
        assert!(p_high > p_low + 0.5, "{p_high} vs {p_low}");
    }

    #[test]
    fn mixture_equals_weighted_sum() {
        let m = BbuPowerModel::default();
        let p = m.power_mixture_w(&[0.3, 0.2], &[Mcs(5), Mcs(20)]);
        let manual =
            m.idle_w + 0.3 * (m.fft_w + m.decode_w(Mcs(5))) + 0.2 * (m.fft_w + m.decode_w(Mcs(20)));
        assert!((p - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "occupancy must be in [0,1]")]
    fn rejects_bad_occupancy() {
        let _ = BbuPowerModel::default().power_w(1.5, Mcs(0));
    }
}

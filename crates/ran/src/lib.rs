//! LTE virtualized-RAN model.
//!
//! Replaces the paper's srsRAN eNB + USRP B210 testbed with a faithful
//! model of the pieces the EdgeBOL learning problem actually interacts
//! with:
//!
//! * [`phy`] — 3GPP-style link tables: CQI spectral efficiencies
//!   (36.213 Table 7.2.3-1), MCS↔efficiency interpolation, transport-block
//!   sizes per scheduled subframe, SNR→CQI mapping and a logistic BLER
//!   model around each MCS's required SNR.
//! * [`channel`] — per-UE channel state: mean SNR with log-normal
//!   shadowing and fast-fading wiggle, quantized noisy CQI reports, and
//!   piecewise SNR traces for the dynamic-context experiments (Fig. 13).
//! * [`mac`] — the slice scheduler implementing the two radio policies of
//!   the paper: **airtime** (Policy 2, uplink duty-cycle cap) and **max
//!   MCS** (Policy 4), with round-robin service among UEs (the low-level
//!   controller used in §6.4).
//! * [`harq`] — stop-and-wait HARQ with a bounded number of
//!   retransmissions, 8 ms RTT, as in LTE FDD UL.
//! * [`power`] — the BBU power model (Performance Indicator 4), shaped to
//!   reproduce both regimes the paper measures: at low load, higher MCS
//!   *reduces* BS power (subframe occupancy falls faster than per-subframe
//!   decode cost rises — Fig. 5); at saturating load, higher MCS *raises*
//!   it (occupancy is pinned, decode cost dominates — Fig. 6).
//!
//! All timing is expressed in seconds and all rates in bits/second at the
//! API boundary; subframes (1 ms) are the internal scheduling quantum.

pub mod channel;
pub mod harq;
pub mod mac;
pub mod phy;
pub mod power;

pub use channel::{ChannelModel, SnrTrace};
pub use harq::HarqModel;
pub use mac::{AirtimePolicy, McsPolicy, SliceScheduler, UeLink};
pub use phy::{bler, cqi_from_snr, max_mcs_for_cqi, mcs_efficiency, tbs_bits, Mcs, NUM_MCS};
pub use power::BbuPowerModel;

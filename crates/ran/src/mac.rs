//! Slice MAC scheduler implementing the paper's two radio policies.
//!
//! The orchestrator (EdgeBOL) sets **policies**; the MAC enforces them at
//! millisecond granularity, exactly the O-RAN split the paper describes:
//! "These policies are rules that must be respected by lower-level
//! controllers that operate at millisecond-level timescale".
//!
//! * [`AirtimePolicy`] (Policy 2) — an uplink duty-cycle cap for the
//!   slice's traffic, enforced here with a token bucket over subframes.
//! * [`McsPolicy`] (Policy 4) — an upper bound on the MCS the scheduler
//!   may select; the actual MCS is the minimum of this cap and what the
//!   UE's instantaneous CQI supports.
//! * Round-robin service among backlogged UEs (the low-level controller
//!   adopted for the multi-user experiments, §6.4).

use crate::channel::ChannelModel;
use crate::phy::{max_mcs_for_cqi, tbs_bits, Mcs};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Policy 2: the fraction of subframes the slice may occupy, in (0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirtimePolicy(pub f64);

impl AirtimePolicy {
    /// Creates a policy, clamping into `[0.05, 1.0]` (a zero-airtime slice
    /// would be dead; the paper's grid bottoms out above zero too).
    pub fn clamped(fraction: f64) -> Self {
        AirtimePolicy(fraction.clamp(0.05, 1.0))
    }
}

/// Policy 4: an upper bound on the eligible MCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McsPolicy(pub Mcs);

/// One UE attached to the slice.
#[derive(Debug, Clone)]
pub struct UeLink {
    /// The UE's uplink channel.
    pub channel: ChannelModel,
    /// Pending uplink bits.
    pub backlog_bits: f64,
}

impl UeLink {
    /// Creates a UE with the given mean SNR and empty buffer.
    pub fn new(mean_snr_db: f64) -> Self {
        UeLink { channel: ChannelModel::new(mean_snr_db), backlog_bits: 0.0 }
    }
}

/// An uplink grant issued for one subframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// Which UE was scheduled.
    pub ue: usize,
    /// MCS selected (min of policy cap and channel support).
    pub mcs: Mcs,
    /// Transport-block size in bits.
    pub tb_bits: f64,
    /// Instantaneous SNR (dB) the transmission will see.
    pub snr_db: f64,
}

/// The slice's uplink scheduler.
#[derive(Debug, Clone)]
pub struct SliceScheduler {
    /// Policy 2 in force.
    pub airtime: AirtimePolicy,
    /// Policy 4 in force.
    pub mcs_cap: McsPolicy,
    /// PRBs grantable to the slice per scheduled subframe. On the paper's
    /// testbed the single-UE slice attains only a few Mb/s of app-level UL
    /// goodput (implied by its ~0.4 s full-res transfer times); a 10-PRB
    /// slice share of the 100-PRB carrier reproduces that operating point.
    pub slice_prbs: usize,
    /// Airtime token bucket (subframe credits).
    credit: f64,
    /// Round-robin pointer.
    rr_next: usize,
    /// Subframes elapsed and subframes granted, for duty accounting.
    elapsed_sf: u64,
    granted_sf: u64,
}

impl SliceScheduler {
    /// Creates a scheduler with the given policies and slice PRB share.
    ///
    /// # Panics
    /// Panics if `slice_prbs == 0` or the airtime fraction is outside
    /// `(0, 1]`.
    pub fn new(airtime: AirtimePolicy, mcs_cap: McsPolicy, slice_prbs: usize) -> Self {
        assert!(slice_prbs > 0, "slice needs at least one PRB");
        assert!(airtime.0 > 0.0 && airtime.0 <= 1.0, "airtime fraction out of range");
        SliceScheduler {
            airtime,
            mcs_cap,
            slice_prbs,
            credit: 0.0,
            rr_next: 0,
            elapsed_sf: 0,
            granted_sf: 0,
        }
    }

    /// Updates the policies in force (the A1 policy hand-off point).
    pub fn set_policies(&mut self, airtime: AirtimePolicy, mcs_cap: McsPolicy) {
        assert!(airtime.0 > 0.0 && airtime.0 <= 1.0, "airtime fraction out of range");
        self.airtime = airtime;
        self.mcs_cap = mcs_cap;
    }

    /// Advances one subframe: accrues airtime credit and, if the duty
    /// budget allows and some UE is backlogged, issues a grant.
    ///
    /// The grant's `tb_bits` is *deducted from the UE's backlog by the
    /// caller after HARQ resolution* — the scheduler only decides who
    /// transmits what.
    pub fn tick<R: Rng + ?Sized>(&mut self, ues: &mut [UeLink], rng: &mut R) -> Option<Grant> {
        self.elapsed_sf += 1;
        self.credit = (self.credit + self.airtime.0).min(4.0);
        if self.credit < 1.0 || ues.is_empty() {
            return None;
        }
        // Round-robin: first backlogged UE from the pointer.
        let n = ues.len();
        let mut chosen = None;
        for off in 0..n {
            let i = (self.rr_next + off) % n;
            if ues[i].backlog_bits > 0.0 {
                chosen = Some(i);
                break;
            }
        }
        let i = chosen?;
        self.rr_next = (i + 1) % n;
        self.credit -= 1.0;
        self.granted_sf += 1;

        let snr_db = ues[i].channel.sample_snr(rng);
        let cqi = crate::phy::cqi_from_snr(snr_db);
        let mcs = max_mcs_for_cqi(cqi).min(self.mcs_cap.0);
        let tb_bits = tbs_bits(mcs, self.slice_prbs).min(ues[i].backlog_bits.max(1.0));
        Some(Grant { ue: i, mcs, tb_bits, snr_db })
    }

    /// Fraction of elapsed subframes actually granted (realized duty).
    pub fn realized_duty(&self) -> f64 {
        if self.elapsed_sf == 0 {
            0.0
        } else {
            self.granted_sf as f64 / self.elapsed_sf as f64
        }
    }

    /// Resets the duty accounting counters (e.g., per period).
    pub fn reset_accounting(&mut self) {
        self.elapsed_sf = 0;
        self.granted_sf = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn saturated_ues(n: usize, snr: f64) -> Vec<UeLink> {
        (0..n)
            .map(|_| {
                let mut ue = UeLink::new(snr);
                ue.channel = ChannelModel::noiseless(snr);
                ue.backlog_bits = f64::INFINITY;
                ue
            })
            .collect()
    }

    #[test]
    fn airtime_cap_enforced() {
        let mut s = SliceScheduler::new(AirtimePolicy(0.2), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(1, 30.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            s.tick(&mut ues, &mut rng);
        }
        assert!((s.realized_duty() - 0.2).abs() < 0.01, "duty {}", s.realized_duty());
    }

    #[test]
    fn full_airtime_schedules_every_subframe() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(1, 30.0);
        let mut rng = StdRng::seed_from_u64(1);
        let grants = (0..1000).filter(|_| s.tick(&mut ues, &mut rng).is_some()).count();
        assert_eq!(grants, 1000);
    }

    #[test]
    fn no_grant_without_backlog() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = vec![UeLink::new(30.0)];
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.tick(&mut ues, &mut rng).is_none());
        assert_eq!(s.realized_duty(), 0.0);
    }

    #[test]
    fn mcs_respects_policy_cap() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs(5)), 10);
        let mut ues = saturated_ues(1, 35.0); // channel supports MCS 28
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                assert!(g.mcs <= Mcs(5), "{:?}", g.mcs);
            }
        }
    }

    #[test]
    fn mcs_respects_channel_limit() {
        // Poor channel: even with cap 28 the MCS must stay low.
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                assert!(g.mcs < Mcs(10), "{:?} too high for 2 dB", g.mcs);
            }
        }
    }

    #[test]
    fn round_robin_is_fair_among_backlogged_ues() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(3, 30.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                counts[g.ue] += 1;
            }
        }
        for &c in &counts {
            assert!((c as i64 - 1000).abs() <= 1, "{counts:?}");
        }
    }

    #[test]
    fn round_robin_skips_idle_ues() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(3, 30.0);
        ues[1].backlog_bits = 0.0;
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                assert_ne!(g.ue, 1);
            }
        }
    }

    #[test]
    fn grant_never_exceeds_backlog() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(1, 30.0);
        ues[0].backlog_bits = 100.0;
        let mut rng = StdRng::seed_from_u64(7);
        let g = s.tick(&mut ues, &mut rng).unwrap();
        assert!(g.tb_bits <= 100.0);
    }

    #[test]
    fn policy_update_takes_effect() {
        let mut s = SliceScheduler::new(AirtimePolicy(1.0), McsPolicy(Mcs::MAX), 10);
        let mut ues = saturated_ues(1, 30.0);
        let mut rng = StdRng::seed_from_u64(8);
        s.set_policies(AirtimePolicy(0.5), McsPolicy(Mcs(3)));
        s.reset_accounting();
        for _ in 0..4000 {
            if let Some(g) = s.tick(&mut ues, &mut rng) {
                assert!(g.mcs <= Mcs(3));
            }
        }
        assert!((s.realized_duty() - 0.5).abs() < 0.02, "duty {}", s.realized_duty());
    }
}

//! Per-UE channel state and SNR traces.

use crate::phy::cqi_from_snr;
use edgebol_linalg::stats::normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A UE's uplink channel: slow mean SNR plus fast per-subframe fading.
///
/// The testbed paper adjusts RF gains over SMA cables to set mean uplink
/// SNR; we model the same knob plus the residual variability a real link
/// shows (shadowing random-walk + per-subframe fast fading), which is what
/// makes CQI reports — and hence the learning context — noisy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Slowly varying mean SNR (dB), the experiment's control knob.
    pub mean_snr_db: f64,
    /// Standard deviation of the shadowing component (dB).
    pub shadowing_std_db: f64,
    /// Standard deviation of per-subframe fast fading (dB).
    pub fast_fading_std_db: f64,
    /// Current shadowing state (dB offset), evolves as an AR(1).
    shadow_db: f64,
    /// AR(1) coefficient of the shadowing process per sample.
    shadow_rho: f64,
}

impl ChannelModel {
    /// Creates a channel with typical indoor-testbed variability.
    pub fn new(mean_snr_db: f64) -> Self {
        ChannelModel {
            mean_snr_db,
            shadowing_std_db: 1.5,
            fast_fading_std_db: 1.0,
            shadow_db: 0.0,
            shadow_rho: 0.98,
        }
    }

    /// A channel with no variability (for deterministic unit tests).
    pub fn noiseless(mean_snr_db: f64) -> Self {
        ChannelModel {
            mean_snr_db,
            shadowing_std_db: 0.0,
            fast_fading_std_db: 0.0,
            shadow_db: 0.0,
            shadow_rho: 1.0,
        }
    }

    /// Advances the shadowing process one step and samples the
    /// instantaneous SNR (dB) for a subframe.
    pub fn sample_snr<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.shadowing_std_db > 0.0 {
            let innov = (1.0 - self.shadow_rho * self.shadow_rho).sqrt() * self.shadowing_std_db;
            self.shadow_db = self.shadow_rho * self.shadow_db + normal(rng, 0.0, innov);
        }
        self.mean_snr_db + self.shadow_db + normal(rng, 0.0, self.fast_fading_std_db)
    }

    /// Samples the CQI a UE would report this subframe.
    pub fn sample_cqi<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u8 {
        cqi_from_snr(self.sample_snr(rng))
    }

    /// Expected CQI at the mean SNR (deterministic summary).
    pub fn nominal_cqi(&self) -> u8 {
        cqi_from_snr(self.mean_snr_db)
    }
}

/// A piecewise-constant SNR trajectory over time periods, used to drive
/// the dynamic-context experiments (Fig. 13: SNR varying 5–38 dB).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnrTrace {
    /// `(period index at which the value starts, mean SNR dB)` pairs,
    /// sorted by period.
    segments: Vec<(usize, f64)>,
}

impl SnrTrace {
    /// Constant trace.
    pub fn constant(snr_db: f64) -> Self {
        SnrTrace { segments: vec![(0, snr_db)] }
    }

    /// Builds a trace from `(start_period, snr_db)` pairs.
    ///
    /// # Panics
    /// Panics if `segments` is empty, does not start at period 0, or is
    /// not strictly increasing in period.
    pub fn piecewise(segments: Vec<(usize, f64)>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        assert_eq!(segments[0].0, 0, "trace must start at period 0");
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "segment starts must be strictly increasing");
        }
        SnrTrace { segments }
    }

    /// The Fig. 13 style trace: steps spanning roughly 5–38 dB.
    pub fn dynamic_fig13() -> Self {
        SnrTrace::piecewise(vec![
            (0, 35.0),
            (25, 20.0),
            (50, 8.0),
            (75, 30.0),
            (100, 5.0),
            (125, 38.0),
        ])
    }

    /// Mean SNR at a period.
    pub fn snr_at(&self, period: usize) -> f64 {
        let mut v = self.segments[0].1;
        for &(start, snr) in &self.segments {
            if period >= start {
                v = snr;
            } else {
                break;
            }
        }
        v
    }

    /// Smallest and largest SNR in the trace.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, s) in &self.segments {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebol_linalg::stats::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_channel_is_constant() {
        let mut ch = ChannelModel::noiseless(20.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(ch.sample_snr(&mut rng), 20.0);
        }
        assert_eq!(ch.nominal_cqi(), cqi_from_snr(20.0));
    }

    #[test]
    fn snr_samples_center_on_mean() {
        let mut ch = ChannelModel::new(15.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.push(ch.sample_snr(&mut rng));
        }
        assert!((w.mean() - 15.0).abs() < 0.5, "mean {}", w.mean());
        assert!(w.std() > 0.5 && w.std() < 4.0, "std {}", w.std());
    }

    #[test]
    fn cqi_reports_track_snr_regime() {
        let mut hi = ChannelModel::new(35.0);
        let mut lo = ChannelModel::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let hi_cqi: f64 = (0..500).map(|_| hi.sample_cqi(&mut rng) as f64).sum::<f64>() / 500.0;
        let lo_cqi: f64 = (0..500).map(|_| lo.sample_cqi(&mut rng) as f64).sum::<f64>() / 500.0;
        assert!(hi_cqi > 13.0, "high-SNR mean CQI {hi_cqi}");
        assert!(lo_cqi < 5.0, "low-SNR mean CQI {lo_cqi}");
    }

    #[test]
    fn trace_lookup() {
        let t = SnrTrace::piecewise(vec![(0, 30.0), (10, 10.0), (20, 25.0)]);
        assert_eq!(t.snr_at(0), 30.0);
        assert_eq!(t.snr_at(9), 30.0);
        assert_eq!(t.snr_at(10), 10.0);
        assert_eq!(t.snr_at(19), 10.0);
        assert_eq!(t.snr_at(500), 25.0);
    }

    #[test]
    fn constant_trace() {
        let t = SnrTrace::constant(17.0);
        assert_eq!(t.snr_at(0), 17.0);
        assert_eq!(t.snr_at(1000), 17.0);
        assert_eq!(t.range(), (17.0, 17.0));
    }

    #[test]
    fn fig13_trace_spans_paper_range() {
        let t = SnrTrace::dynamic_fig13();
        let (lo, hi) = t.range();
        assert!(lo <= 5.0 && hi >= 38.0);
    }

    #[test]
    #[should_panic(expected = "must start at period 0")]
    fn trace_rejects_late_start() {
        let _ = SnrTrace::piecewise(vec![(5, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trace_rejects_unsorted() {
        let _ = SnrTrace::piecewise(vec![(0, 10.0), (10, 20.0), (10, 30.0)]);
    }
}

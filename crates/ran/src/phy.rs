//! Link-level tables: CQI, MCS, TBS and BLER.
//!
//! The numerology follows LTE FDD at 20 MHz (100 PRBs, 1 ms subframes).
//! Spectral efficiencies come from the 3GPP 36.213 CQI table
//! (Table 7.2.3-1); MCS indices 0–28 are mapped onto that efficiency range
//! by monotone interpolation, which is the standard approximation used by
//! system-level simulators when full TBS tables are not carried around.
//! The data-RE budget per PRB is reduced from the raw 168 RE/subframe to
//! account for DMRS and control overhead, calibrated so the full-carrier
//! peak UL rate lands near the ~50 Mb/s the paper quotes for its SISO
//! 20 MHz deployment.

use serde::{Deserialize, Serialize};

/// Number of uplink MCS indices modelled (0..=28).
pub const NUM_MCS: usize = 29;

/// PRBs on a 20 MHz LTE carrier.
pub const CARRIER_PRBS: usize = 100;

/// Subframe duration in seconds (LTE TTI).
pub const SUBFRAME_S: f64 = 1e-3;

/// Usable *data* resource elements per PRB per subframe after DMRS and
/// control overhead (raw 12 x 14 = 168, minus 24 DMRS REs, minus ~17%
/// signalling/guard overhead).
pub const DATA_RES_PER_PRB: f64 = 90.0;

/// An uplink MCS index (0..=28).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mcs(pub u8);

impl Mcs {
    /// Highest modelled MCS.
    pub const MAX: Mcs = Mcs(28);

    /// Creates an MCS, clamping into the valid range.
    pub fn clamped(idx: i64) -> Mcs {
        Mcs(idx.clamp(0, 28) as u8)
    }

    /// Index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// 3GPP 36.213 Table 7.2.3-1: spectral efficiency (bits/RE) per CQI 1..=15.
const CQI_EFFICIENCY: [f64; 15] = [
    0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223, 3.9023,
    4.5234, 5.1152, 5.5547,
];

/// Spectral efficiency (bits per resource element) of an MCS index.
///
/// Monotone interpolation of the CQI efficiency range over MCS 0..=28.
pub fn mcs_efficiency(mcs: Mcs) -> f64 {
    let idx = mcs.index() as f64 / 28.0 * 14.0; // position within CQI table
    let lo = idx.floor() as usize;
    let hi = (lo + 1).min(14);
    let w = idx - lo as f64;
    CQI_EFFICIENCY[lo] * (1.0 - w) + CQI_EFFICIENCY[hi] * w
}

/// Transport-block size in bits for `n_prb` PRBs in one subframe at `mcs`.
pub fn tbs_bits(mcs: Mcs, n_prb: usize) -> f64 {
    mcs_efficiency(mcs) * DATA_RES_PER_PRB * n_prb as f64
}

/// Required SNR (dB) for ~10% BLER at an MCS, from the Shannon-gap
/// approximation `snr_req = 10 log10(2^eff - 1) + margin`.
///
/// The 3 dB margin reflects implementation loss of a software radio
/// (srsRAN + B210), on the conservative side of link-abstraction studies.
pub fn required_snr_db(mcs: Mcs) -> f64 {
    let eff = mcs_efficiency(mcs);
    10.0 * (2f64.powf(eff) - 1.0).log10() + 3.0
}

/// Block error rate of a transport block sent at `mcs` through a channel
/// with instantaneous `snr_db`.
///
/// Logistic waterfall centred at [`required_snr_db`], ~1.5 dB wide, floored
/// at 1e-4 (residual errors) and capped at 0.999.
pub fn bler(snr_db: f64, mcs: Mcs) -> f64 {
    let delta = snr_db - required_snr_db(mcs);
    let p = 1.0 / (1.0 + (delta / 0.75).exp());
    p.clamp(1e-4, 0.999)
}

/// Maps an SNR report to the CQI (1..=15) a UE would feed back: the highest
/// CQI whose efficiency is supportable at ~10% BLER.
pub fn cqi_from_snr(snr_db: f64) -> u8 {
    let mut cqi = 1u8;
    for (i, &eff) in CQI_EFFICIENCY.iter().enumerate() {
        let req = 10.0 * (2f64.powf(eff) - 1.0).log10() + 3.0;
        if snr_db >= req {
            cqi = (i + 1) as u8;
        }
    }
    cqi
}

/// The highest MCS a UE with CQI `cqi` can sustain (the channel-driven cap
/// the MAC applies below the policy cap).
pub fn max_mcs_for_cqi(cqi: u8) -> Mcs {
    let cqi = cqi.clamp(1, 15);
    // Inverse of the interpolation in `mcs_efficiency`.
    Mcs::clamped(((cqi - 1) as f64 / 14.0 * 28.0).round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_monotone_in_mcs() {
        let mut prev = 0.0;
        for i in 0..NUM_MCS {
            let e = mcs_efficiency(Mcs(i as u8));
            assert!(e > prev, "efficiency must increase with MCS ({i})");
            prev = e;
        }
    }

    #[test]
    fn efficiency_endpoints_match_cqi_table() {
        assert!((mcs_efficiency(Mcs(0)) - 0.1523).abs() < 1e-9);
        assert!((mcs_efficiency(Mcs(28)) - 5.5547).abs() < 1e-9);
    }

    #[test]
    fn peak_carrier_rate_close_to_paper_quote() {
        // 100 PRBs at MCS 28, 1000 subframes/s: the paper says ~50 Mb/s.
        let peak = tbs_bits(Mcs::MAX, CARRIER_PRBS) / SUBFRAME_S;
        assert!((45e6..55e6).contains(&peak), "peak {peak:.3e}");
    }

    #[test]
    fn tbs_scales_linearly_with_prbs() {
        let one = tbs_bits(Mcs(10), 1);
        let fifty = tbs_bits(Mcs(10), 50);
        assert!((fifty - 50.0 * one).abs() < 1e-9);
        assert_eq!(tbs_bits(Mcs(10), 0), 0.0);
    }

    #[test]
    fn required_snr_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 0..NUM_MCS {
            let s = required_snr_db(Mcs(i as u8));
            assert!(s > prev);
            prev = s;
        }
        // Sanity: QPSK lowest rate decodes below 0 dB + margin, 64QAM needs ~20 dB.
        assert!(required_snr_db(Mcs(0)) < 0.0);
        assert!(required_snr_db(Mcs(28)) > 15.0);
    }

    #[test]
    fn bler_waterfall_shape() {
        let m = Mcs(14);
        let req = required_snr_db(m);
        assert!(bler(req - 6.0, m) > 0.95);
        assert!((bler(req, m) - 0.5).abs() < 1e-9);
        assert!(bler(req + 6.0, m) < 0.01);
        // Bounds respected.
        assert!(bler(req + 100.0, m) >= 1e-4);
        assert!(bler(req - 100.0, m) <= 0.999);
    }

    #[test]
    fn cqi_mapping_monotone_in_snr() {
        let mut prev = 0;
        for snr10 in -10..40 {
            let c = cqi_from_snr(snr10 as f64);
            assert!(c >= prev, "CQI must be non-decreasing in SNR");
            assert!((1..=15).contains(&c));
            prev = c;
        }
        assert_eq!(cqi_from_snr(-20.0), 1);
        assert_eq!(cqi_from_snr(40.0), 15);
    }

    #[test]
    fn cqi_mcs_roundtrip_is_supportable() {
        // The MCS derived from a CQI must be decodable (<50% BLER) at any
        // SNR that produces that CQI.
        for snr in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
            let cqi = cqi_from_snr(snr);
            let mcs = max_mcs_for_cqi(cqi);
            assert!(
                bler(snr, mcs) < 0.5,
                "snr {snr}: cqi {cqi} -> mcs {mcs:?} has bler {}",
                bler(snr, mcs)
            );
        }
    }

    #[test]
    fn mcs_clamping() {
        assert_eq!(Mcs::clamped(-5), Mcs(0));
        assert_eq!(Mcs::clamped(100), Mcs(28));
        assert_eq!(Mcs::clamped(7), Mcs(7));
    }
}

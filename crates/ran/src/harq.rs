//! Stop-and-wait HARQ with chase combining.

use crate::phy::{bler, Mcs};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Outcome of transmitting one transport block through HARQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarqOutcome {
    /// Total attempts used (1 = no retransmission).
    pub attempts: u8,
    /// Whether the block was eventually delivered.
    pub success: bool,
}

/// LTE-style HARQ: up to `max_attempts` transmissions of a block, each
/// retransmission arriving one `rtt_s` later, with chase combining adding
/// ~`combining_gain_db` of effective SNR per accumulated copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarqModel {
    /// Maximum transmissions of one block (LTE default: 4).
    pub max_attempts: u8,
    /// HARQ round-trip time in seconds (LTE FDD UL: 8 ms).
    pub rtt_s: f64,
    /// Effective SNR gain per additional combined copy, in dB.
    pub combining_gain_db: f64,
}

impl Default for HarqModel {
    fn default() -> Self {
        HarqModel { max_attempts: 4, rtt_s: 8e-3, combining_gain_db: 2.5 }
    }
}

impl HarqModel {
    /// Effective SNR at transmission attempt `k` (1-based) with combining.
    fn snr_at_attempt(&self, snr_db: f64, k: u8) -> f64 {
        snr_db + self.combining_gain_db * (k.saturating_sub(1)) as f64
    }

    /// Simulates the HARQ delivery of one block.
    pub fn attempt<R: Rng + ?Sized>(&self, rng: &mut R, snr_db: f64, mcs: Mcs) -> HarqOutcome {
        for k in 1..=self.max_attempts {
            let p_err = bler(self.snr_at_attempt(snr_db, k), mcs);
            if rng.random::<f64>() >= p_err {
                return HarqOutcome { attempts: k, success: true };
            }
        }
        HarqOutcome { attempts: self.max_attempts, success: false }
    }

    /// Expected number of transmissions per block (analytic).
    pub fn expected_attempts(&self, snr_db: f64, mcs: Mcs) -> f64 {
        let mut e = 0.0;
        let mut p_reach = 1.0; // probability attempt k happens
        for k in 1..=self.max_attempts {
            e += p_reach;
            let p_err = bler(self.snr_at_attempt(snr_db, k), mcs);
            p_reach *= p_err;
        }
        e
    }

    /// Probability a block is lost after all attempts.
    pub fn residual_loss(&self, snr_db: f64, mcs: Mcs) -> f64 {
        let mut p = 1.0;
        for k in 1..=self.max_attempts {
            p *= bler(self.snr_at_attempt(snr_db, k), mcs);
        }
        p
    }

    /// Goodput multiplier: delivered blocks per transmission opportunity,
    /// i.e. `P(success) / E[attempts]`. Multiplies the nominal TBS rate to
    /// give the effective link rate the flow-level model uses.
    pub fn goodput_factor(&self, snr_db: f64, mcs: Mcs) -> f64 {
        (1.0 - self.residual_loss(snr_db, mcs)) / self.expected_attempts(snr_db, mcs)
    }

    /// Mean extra latency per delivered block due to retransmissions.
    pub fn expected_extra_delay_s(&self, snr_db: f64, mcs: Mcs) -> f64 {
        (self.expected_attempts(snr_db, mcs) - 1.0) * self.rtt_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phy::required_snr_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn good_snr_delivers_first_attempt() {
        let h = HarqModel::default();
        let m = Mcs(10);
        let snr = required_snr_db(m) + 10.0;
        let mut rng = StdRng::seed_from_u64(0);
        let mut first = 0;
        for _ in 0..1000 {
            let o = h.attempt(&mut rng, snr, m);
            assert!(o.success);
            if o.attempts == 1 {
                first += 1;
            }
        }
        assert!(first > 980, "{first}");
        assert!(h.expected_attempts(snr, m) < 1.05);
        assert!(h.goodput_factor(snr, m) > 0.95);
    }

    #[test]
    fn terrible_snr_exhausts_attempts() {
        let h = HarqModel::default();
        let m = Mcs(28);
        let snr = required_snr_db(m) - 30.0;
        let mut rng = StdRng::seed_from_u64(1);
        let o = h.attempt(&mut rng, snr, m);
        assert!(!o.success);
        assert_eq!(o.attempts, 4);
        assert!(h.residual_loss(snr, m) > 0.9);
        assert!(h.goodput_factor(snr, m) < 0.05);
    }

    #[test]
    fn combining_rescues_marginal_links() {
        // At the BLER waterfall (50% first-attempt loss), combining makes
        // the residual loss small.
        let h = HarqModel::default();
        let m = Mcs(14);
        let snr = required_snr_db(m);
        assert!(h.residual_loss(snr, m) < 0.05, "{}", h.residual_loss(snr, m));
        let e = h.expected_attempts(snr, m);
        assert!(e > 1.3 && e < 2.2, "expected attempts {e}");
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let h = HarqModel::default();
        let m = Mcs(20);
        let snr = required_snr_db(m) - 1.0;
        let mut rng = StdRng::seed_from_u64(2);
        let n = 30_000;
        let mut tot_attempts = 0u64;
        let mut losses = 0u64;
        for _ in 0..n {
            let o = h.attempt(&mut rng, snr, m);
            tot_attempts += o.attempts as u64;
            losses += u64::from(!o.success);
        }
        let mc_e = tot_attempts as f64 / n as f64;
        let mc_loss = losses as f64 / n as f64;
        assert!((mc_e - h.expected_attempts(snr, m)).abs() < 0.03, "{mc_e}");
        assert!((mc_loss - h.residual_loss(snr, m)).abs() < 0.01, "{mc_loss}");
    }

    #[test]
    fn extra_delay_zero_on_clean_link() {
        let h = HarqModel::default();
        let m = Mcs(5);
        let snr = required_snr_db(m) + 15.0;
        assert!(h.expected_extra_delay_s(snr, m) < 1e-4);
    }
}

//! Property-based tests of the media substrate.

use edgebol_media::scene::{FRAME_HEIGHT, FRAME_WIDTH};
use edgebol_media::{
    average_precision, mean_average_precision, BBox, Category, Detection, DetectorModel,
    EncodeModel, GroundTruth, Scene, SceneGenerator,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f64..600.0, 0.0f64..440.0, 1.0f64..200.0, 1.0f64..200.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    /// IoU is symmetric, in [0, 1], 1 only for identical boxes.
    #[test]
    fn iou_axioms(a in arb_bbox(), b in arb_bbox()) {
        let i = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&i));
        prop_assert!((i - b.iou(&a)).abs() < 1e-12);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        if i >= 1.0 - 1e-12 {
            prop_assert!((a.x - b.x).abs() < 1e-6 && (a.w - b.w).abs() < 1e-6);
        }
    }

    /// AP is a probability; matching every ground truth perfectly gives 1.
    #[test]
    fn ap_bounds(n in 1usize..6) {
        let objects: Vec<GroundTruth> = (0..n)
            .map(|i| GroundTruth {
                category: Category::Car,
                bbox: BBox::new(i as f64 * 60.0, 10.0, 40.0, 40.0),
            })
            .collect();
        let scene = Scene { id: 0, objects: objects.clone(), clutter: 0.0 };
        let dets: Vec<Detection> = objects
            .iter()
            .enumerate()
            .map(|(i, o)| Detection {
                category: Category::Car,
                bbox: o.bbox,
                score: 0.9 - i as f64 * 0.01,
            })
            .collect();
        let ap = average_precision(&[(&scene, &dets)], Category::Car, 0.5).unwrap();
        prop_assert!((ap - 1.0).abs() < 1e-12);
    }

    /// Adding false positives can only lower (never raise) the mAP.
    #[test]
    fn fps_never_help(seed in 0u64..100, n_fp in 1usize..6) {
        let gen = SceneGenerator::default();
        let scene = gen.generate(0, &mut SmallRng::seed_from_u64(seed));
        let det = DetectorModel::default();
        let dets = det.detect(&scene, 0.8, &mut SmallRng::seed_from_u64(seed ^ 1));
        let base = mean_average_precision(&[(&scene, &dets)], 0.5).map;
        let mut with_fp = dets.clone();
        for i in 0..n_fp {
            with_fp.push(Detection {
                category: Category::Tv,
                bbox: BBox::new(600.0, 400.0, 30.0, 30.0),
                score: 0.99 - i as f64 * 0.001,
            });
        }
        let worse = mean_average_precision(&[(&scene, &with_fp)], 0.5).map;
        prop_assert!(worse <= base + 1e-9, "FPs raised mAP: {worse} > {base}");
    }

    /// Encoded bytes are monotone in resolution and pixel-proportional.
    #[test]
    fn encode_monotone(r1 in 0.05f64..0.95) {
        let m = EncodeModel::default();
        let r2 = (r1 + 0.05).min(1.0);
        prop_assert!(m.encode(r2).bytes > m.encode(r1).bytes);
        prop_assert!(m.encode(r1).preproc_s < m.encode(r2).preproc_s + 1e-12);
    }

    /// Detection probability is monotone in both resolution and size, and
    /// bounded by the category ceiling.
    #[test]
    fn detector_probability_monotone(
        res in 0.1f64..0.9,
        size in 10.0f64..300.0,
    ) {
        let d = DetectorModel::default();
        for c in Category::ALL {
            let p = d.detection_probability(c, size, res);
            prop_assert!((0.0..=c.detectability()).contains(&p));
            prop_assert!(d.detection_probability(c, size, res + 0.1) >= p - 1e-12);
            prop_assert!(d.detection_probability(c, size + 20.0, res) >= p - 1e-12);
        }
    }

    /// Generated scenes always have in-frame, positive-size objects.
    #[test]
    fn scenes_are_well_formed(seed in 0u64..300) {
        let gen = SceneGenerator::default();
        let s = gen.generate(seed, &mut SmallRng::seed_from_u64(seed));
        prop_assert!(!s.objects.is_empty());
        prop_assert!((0.0..=1.0).contains(&s.clutter));
        for o in &s.objects {
            prop_assert!(o.bbox.w > 0.0 && o.bbox.h > 0.0);
            prop_assert!(o.bbox.x >= 0.0 && o.bbox.x + o.bbox.w <= FRAME_WIDTH + 1e-9);
            prop_assert!(o.bbox.y >= 0.0 && o.bbox.y + o.bbox.h <= FRAME_HEIGHT + 1e-9);
        }
    }

    /// The evaluator never credits detections of the wrong category.
    #[test]
    fn wrong_category_never_matches(seed in 0u64..100) {
        let scene = Scene {
            id: 0,
            objects: vec![GroundTruth {
                category: Category::Dog,
                bbox: BBox::new(100.0, 100.0, 50.0, 50.0),
            }],
            clutter: 0.0,
        };
        // Perfect box, wrong class.
        let dets = vec![Detection {
            category: Category::Car,
            bbox: BBox::new(100.0, 100.0, 50.0, 50.0),
            score: 0.9 + (seed as f64 % 10.0) * 0.001,
        }];
        let ap = average_precision(&[(&scene, &dets)], Category::Dog, 0.5).unwrap();
        prop_assert_eq!(ap, 0.0);
    }
}

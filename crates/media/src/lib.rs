//! Mobile-video-analytics content substrate.
//!
//! The paper's service is object recognition over COCO images served by
//! Detectron2 (Faster R-CNN R101). That stack is a hardware/data gate for
//! this reproduction, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`scene`] — synthetic COCO-like scenes: typed object categories with
//!   realistic size distributions and ground-truth bounding boxes.
//! * [`encode`] — the image-resolution policy model (Policy 1 of the
//!   paper): pixels scale with the resolution fraction, encoded bytes scale
//!   with pixels, calibrated so a 100% (640x480) frame is ~225 kB — which
//!   makes the closed-loop offered load peak at the ~2.8 Mb/s the paper
//!   quotes.
//! * [`detector`] — a behavioural model of the detector: per-object
//!   detection probability and localization noise degrade as the *effective*
//!   (resolution-scaled) object size shrinks, plus spurious detections.
//! * [`map`] — a complete **mAP evaluator** (Performance Indicator 2):
//!   IoU, greedy score-ordered matching at IoU ≥ 0.5, precision–recall
//!   curves, all-point-interpolated per-class AP, and mAP.
//! * [`dataset`] — deterministic datasets of scenes, mirroring the paper's
//!   practice of averaging every measurement over 150 images.
//!
//! The headline calibration target is Fig. 1 of the paper: mAP ≈ 0.2 at
//! 25% resolution rising to ≈ 0.62 at 100%, *emerging* from the detector
//! model + evaluator rather than being hard-coded.

pub mod dataset;
pub mod detector;
pub mod encode;
pub mod map;
pub mod scene;

pub use dataset::Dataset;
pub use detector::{Detection, DetectorModel};
pub use encode::{EncodeModel, EncodedImage};
pub use map::{average_precision, mean_average_precision, MapBreakdown};
pub use scene::{BBox, Category, GroundTruth, Scene, SceneGenerator};

//! Mean-average-precision evaluator (Performance Indicator 2).
//!
//! Implements the full machinery the paper describes: detections are
//! matched to ground truth per category at IoU ≥ threshold (0.5 in the
//! paper), greedily in descending score order; precision–recall points are
//! accumulated; per-class AP is the area under the (all-point interpolated)
//! PR curve; mAP is the mean AP over categories with ground truth.

use crate::detector::Detection;
use crate::scene::{Category, Scene};

/// Default IoU threshold for a true positive (the paper uses 0.5).
pub const DEFAULT_IOU_THRESHOLD: f64 = 0.5;

/// Per-category AP and supporting counts.
#[derive(Debug, Clone)]
pub struct MapBreakdown {
    /// `(category, ap, num_ground_truth)` for every category with GT.
    pub per_category: Vec<(Category, f64, usize)>,
    /// The mean of per-category APs (the mAP).
    pub map: f64,
}

/// One scored detection flattened across images.
struct Flat {
    image: usize,
    det_index: usize,
    score: f64,
}

/// Computes the average precision of one category over a set of images.
///
/// `samples` is a slice of `(scene, detections)` pairs; only objects and
/// detections of `category` are considered. Uses greedy matching in
/// descending score order (each ground-truth object can match at most one
/// detection) and all-point interpolation of the PR curve, as in
/// VOC 2010+ / COCO.
///
/// Returns `None` when the category has no ground-truth instance.
pub fn average_precision(
    samples: &[(&Scene, &[Detection])],
    category: Category,
    iou_threshold: f64,
) -> Option<f64> {
    let mut n_gt = 0usize;
    for (scene, _) in samples {
        n_gt += scene.objects.iter().filter(|o| o.category == category).count();
    }
    if n_gt == 0 {
        return None;
    }

    // Flatten and sort detections of this category by score, descending.
    let mut flat: Vec<Flat> = Vec::new();
    for (img, (_, dets)) in samples.iter().enumerate() {
        for (di, d) in dets.iter().enumerate() {
            if d.category == category {
                flat.push(Flat { image: img, det_index: di, score: d.score });
            }
        }
    }
    flat.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

    // Greedy matching.
    let mut matched: Vec<Vec<bool>> =
        samples.iter().map(|(scene, _)| vec![false; scene.objects.len()]).collect();
    let mut tp = Vec::with_capacity(flat.len());
    for f in &flat {
        let (scene, dets) = &samples[f.image];
        let det = &dets[f.det_index];
        // Best unmatched GT of the same category.
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in scene.objects.iter().enumerate() {
            if gt.category != category || matched[f.image][gi] {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[f.image][gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }

    // Precision-recall points.
    let mut precisions = Vec::with_capacity(tp.len());
    let mut recalls = Vec::with_capacity(tp.len());
    let mut n_tp = 0usize;
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            n_tp += 1;
        }
        precisions.push(n_tp as f64 / (i + 1) as f64);
        recalls.push(n_tp as f64 / n_gt as f64);
    }

    // All-point interpolation: make precision monotonically non-increasing
    // from the right, then integrate over recall.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for i in 0..recalls.len() {
        let dr = recalls[i] - prev_recall;
        if dr > 0.0 {
            ap += dr * precisions[i];
            prev_recall = recalls[i];
        }
    }
    Some(ap)
}

/// Computes the mAP over all categories present in the ground truth.
///
/// Returns 0 when there is no ground truth at all (degenerate input).
pub fn mean_average_precision(
    samples: &[(&Scene, &[Detection])],
    iou_threshold: f64,
) -> MapBreakdown {
    let mut per_category = Vec::new();
    for c in Category::ALL {
        let n_gt: usize =
            samples.iter().map(|(s, _)| s.objects.iter().filter(|o| o.category == c).count()).sum();
        if n_gt == 0 {
            continue;
        }
        if let Some(ap) = average_precision(samples, c, iou_threshold) {
            per_category.push((c, ap, n_gt));
        }
    }
    let map = if per_category.is_empty() {
        0.0
    } else {
        per_category.iter().map(|(_, ap, _)| ap).sum::<f64>() / per_category.len() as f64
    };
    MapBreakdown { per_category, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{BBox, GroundTruth};

    fn gt(cat: Category, x: f64) -> GroundTruth {
        GroundTruth { category: cat, bbox: BBox::new(x, 0.0, 10.0, 10.0) }
    }

    fn det(cat: Category, x: f64, score: f64) -> Detection {
        Detection { category: cat, bbox: BBox::new(x, 0.0, 10.0, 10.0), score }
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let scene = Scene {
            id: 0,
            objects: vec![gt(Category::Car, 0.0), gt(Category::Car, 100.0)],
            clutter: 0.0,
        };
        let dets = vec![det(Category::Car, 0.0, 0.9), det(Category::Car, 100.0, 0.8)];
        let ap =
            average_precision(&[(&scene, &dets)], Category::Car, DEFAULT_IOU_THRESHOLD).unwrap();
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missed_objects_reduce_ap_via_recall() {
        let scene = Scene {
            id: 0,
            objects: vec![gt(Category::Car, 0.0), gt(Category::Car, 100.0)],
            clutter: 0.0,
        };
        // Only one of two objects detected: AP = recall plateau 0.5.
        let dets = vec![det(Category::Car, 0.0, 0.9)];
        let ap =
            average_precision(&[(&scene, &dets)], Category::Car, DEFAULT_IOU_THRESHOLD).unwrap();
        assert!((ap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_ap_with_interleaved_fp() {
        // TP(0.9), FP(0.8), TP(0.7) over 2 GT:
        // precisions 1, 1/2, 2/3; recalls 0.5, 0.5, 1.0.
        // All-point interp: AP = 0.5*1 + 0.5*(2/3) = 5/6.
        let scene = Scene {
            id: 0,
            objects: vec![gt(Category::Dog, 0.0), gt(Category::Dog, 100.0)],
            clutter: 0.0,
        };
        let dets = vec![
            det(Category::Dog, 0.0, 0.9),
            det(Category::Dog, 300.0, 0.8), // FP: no GT there
            det(Category::Dog, 100.0, 0.7),
        ];
        let ap =
            average_precision(&[(&scene, &dets)], Category::Dog, DEFAULT_IOU_THRESHOLD).unwrap();
        assert!((ap - 5.0 / 6.0).abs() < 1e-12, "ap {ap}");
    }

    #[test]
    fn duplicate_detections_count_as_fp() {
        let scene = Scene { id: 0, objects: vec![gt(Category::Car, 0.0)], clutter: 0.0 };
        // Same GT hit twice: second is an FP (greedy one-to-one matching).
        let dets = vec![det(Category::Car, 0.0, 0.9), det(Category::Car, 1.0, 0.8)];
        let ap =
            average_precision(&[(&scene, &dets)], Category::Car, DEFAULT_IOU_THRESHOLD).unwrap();
        assert!((ap - 1.0).abs() < 1e-12, "recall reached 1.0 before the FP: ap {ap}");
        // But if the duplicate outranks the true one, AP drops.
        let dets2 = vec![det(Category::Car, 6.0, 0.95), det(Category::Car, 0.0, 0.9)];
        let ap2 =
            average_precision(&[(&scene, &dets2)], Category::Car, DEFAULT_IOU_THRESHOLD).unwrap();
        assert!(ap2 < 1.0, "ap2 {ap2}");
    }

    #[test]
    fn low_iou_match_is_fp() {
        let scene = Scene { id: 0, objects: vec![gt(Category::Car, 0.0)], clutter: 0.0 };
        // Offset 8 of 10 px: IoU = 2/18 < 0.5.
        let dets = vec![det(Category::Car, 8.0, 0.9)];
        let ap =
            average_precision(&[(&scene, &dets)], Category::Car, DEFAULT_IOU_THRESHOLD).unwrap();
        assert_eq!(ap, 0.0);
    }

    #[test]
    fn category_without_gt_is_excluded() {
        let scene = Scene { id: 0, objects: vec![gt(Category::Car, 0.0)], clutter: 0.0 };
        let dets: Vec<Detection> = vec![];
        assert!(average_precision(&[(&scene, &dets)], Category::Dog, 0.5).is_none());
        let bd = mean_average_precision(&[(&scene, &dets)], 0.5);
        assert_eq!(bd.per_category.len(), 1);
        assert_eq!(bd.per_category[0].0, Category::Car);
    }

    #[test]
    fn map_is_mean_of_class_aps() {
        let scene = Scene {
            id: 0,
            objects: vec![gt(Category::Car, 0.0), gt(Category::Dog, 100.0)],
            clutter: 0.0,
        };
        // Car found, dog missed: APs 1.0 and 0.0 -> mAP 0.5.
        let dets = vec![det(Category::Car, 0.0, 0.9)];
        let bd = mean_average_precision(&[(&scene, &dets)], DEFAULT_IOU_THRESHOLD);
        assert!((bd.map - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_over_multiple_images_pools_detections() {
        let s1 = Scene { id: 0, objects: vec![gt(Category::Car, 0.0)], clutter: 0.0 };
        let s2 = Scene { id: 1, objects: vec![gt(Category::Car, 0.0)], clutter: 0.0 };
        let d1 = vec![det(Category::Car, 0.0, 0.9)];
        let d2: Vec<Detection> = vec![];
        let bd = mean_average_precision(&[(&s1, &d1), (&s2, &d2)], 0.5);
        // One of two instances found: AP 0.5.
        assert!((bd.map - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zero_map() {
        let bd = mean_average_precision(&[], 0.5);
        assert_eq!(bd.map, 0.0);
        assert!(bd.per_category.is_empty());
    }

    #[test]
    fn higher_scored_fps_hurt_more() {
        // FP above all TPs suppresses precision at every recall level.
        let scene = Scene {
            id: 0,
            objects: vec![gt(Category::Car, 0.0), gt(Category::Car, 50.0)],
            clutter: 0.0,
        };
        let fp_low = vec![
            det(Category::Car, 0.0, 0.9),
            det(Category::Car, 50.0, 0.8),
            det(Category::Car, 300.0, 0.1),
        ];
        let fp_high = vec![
            det(Category::Car, 300.0, 0.99),
            det(Category::Car, 0.0, 0.9),
            det(Category::Car, 50.0, 0.8),
        ];
        let ap_low = average_precision(&[(&scene, &fp_low)], Category::Car, 0.5).unwrap();
        let ap_high = average_precision(&[(&scene, &fp_high)], Category::Car, 0.5).unwrap();
        assert!(ap_high < ap_low, "{ap_high} vs {ap_low}");
    }
}

//! Deterministic datasets of synthetic scenes.
//!
//! The paper averages every measurement over 150 COCO images; the testbed
//! does the same over a [`Dataset`], which is reproducible from its seed.

use crate::detector::{Detection, DetectorModel};
use crate::map::{mean_average_precision, DEFAULT_IOU_THRESHOLD};
use crate::scene::{Scene, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible collection of scenes.
#[derive(Debug, Clone)]
pub struct Dataset {
    scenes: Vec<Scene>,
    seed: u64,
}

impl Dataset {
    /// Generates `n` scenes deterministically from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let gen = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let scenes = (0..n as u64).map(|id| gen.generate(id, &mut rng)).collect();
        Dataset { scenes, seed }
    }

    /// Generates with a custom scene generator.
    pub fn generate_with(n: usize, seed: u64, gen: &SceneGenerator) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scenes = (0..n as u64).map(|id| gen.generate(id, &mut rng)).collect();
        Dataset { scenes, seed }
    }

    /// The scenes.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// `true` when the dataset has no scenes.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs the detector over every scene at resolution `res` and returns
    /// the dataset-level mAP — the noisy per-period precision observation
    /// `rho_t` the learning agent sees.
    ///
    /// `run_seed` decouples detector stochasticity from scene content, so
    /// repeated periods over the same dataset produce different noise
    /// realizations (as on the real testbed).
    pub fn evaluate_map(&self, detector: &DetectorModel, res: f64, run_seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(run_seed ^ self.seed.rotate_left(17));
        let all: Vec<(usize, Vec<Detection>)> = self
            .scenes
            .iter()
            .enumerate()
            .map(|(i, s)| (i, detector.detect(s, res, &mut rng)))
            .collect();
        let pairs: Vec<(&Scene, &[Detection])> =
            all.iter().map(|(i, d)| (&self.scenes[*i], d.as_slice())).collect();
        mean_average_precision(&pairs, DEFAULT_IOU_THRESHOLD).map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Dataset::generate(20, 99);
        let b = Dataset::generate(20, 99);
        assert_eq!(a.scenes(), b.scenes());
        assert_eq!(a.len(), 20);
        let c = Dataset::generate(20, 100);
        assert_ne!(a.scenes(), c.scenes());
    }

    #[test]
    fn map_increases_with_resolution() {
        // The headline Fig. 1 relationship, end to end through the real
        // evaluator: mAP at 100% must comfortably exceed mAP at 25%.
        let ds = Dataset::generate(150, 7);
        let det = DetectorModel::default();
        let map_low = ds.evaluate_map(&det, 0.25, 1);
        let map_high = ds.evaluate_map(&det, 1.0, 1);
        assert!(
            map_high > map_low + 0.15,
            "mAP(1.0) = {map_high:.3} should clearly exceed mAP(0.25) = {map_low:.3}"
        );
    }

    #[test]
    fn map_calibration_matches_fig1_targets() {
        let ds = Dataset::generate(150, 42);
        let det = DetectorModel::default();
        let map_full = ds.evaluate_map(&det, 1.0, 3);
        let map_quarter = ds.evaluate_map(&det, 0.25, 3);
        // Paper Fig. 1: ~0.6+ at 100% res, ~0.2-0.3 at 25%.
        assert!((0.50..=0.75).contains(&map_full), "mAP(1.0) = {map_full:.3}");
        assert!((0.12..=0.42).contains(&map_quarter), "mAP(0.25) = {map_quarter:.3}");
    }

    #[test]
    fn different_run_seeds_give_noisy_observations() {
        let ds = Dataset::generate(50, 8);
        let det = DetectorModel::default();
        let a = ds.evaluate_map(&det, 0.5, 1);
        let b = ds.evaluate_map(&det, 0.5, 2);
        assert_ne!(a, b, "observation noise expected");
        assert!((a - b).abs() < 0.15, "noise should be moderate: {a} vs {b}");
    }

    #[test]
    fn empty_dataset_is_empty() {
        let ds = Dataset::generate(0, 1);
        assert!(ds.is_empty());
        assert_eq!(ds.evaluate_map(&DetectorModel::default(), 0.5, 0), 0.0);
    }
}

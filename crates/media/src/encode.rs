//! Image-resolution policy model (Policy 1 of the paper).
//!
//! Policy 1 sets the *average* number of pixels per frame as a fraction of
//! the native 640x480. The UE resizes with OpenCV and JPEG-encodes before
//! transmission; we model the resulting byte size as a fixed container
//! overhead plus a compressed-bytes-per-pixel term, calibrated so a 100%
//! frame is ≈ 225 kB (≈ 1.8 Mb), the size the paper's quoted 2.8 Mb/s
//! peak offered load implies for its ~0.65 s full-res round trips.

use crate::scene::{FRAME_HEIGHT, FRAME_WIDTH};
use serde::{Deserialize, Serialize};

/// Byte-size and timing model of the UE-side encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodeModel {
    /// JPEG container/header overhead in bytes.
    pub overhead_bytes: f64,
    /// Compressed bytes per pixel at the configured JPEG quality.
    pub bytes_per_pixel: f64,
    /// Fixed UE-side pre-processing latency (capture + colour conversion),
    /// in seconds.
    pub preproc_fixed_s: f64,
    /// Resolution-dependent pre-processing latency at 100% resolution
    /// (resize + encode), in seconds; scales linearly with pixel count.
    pub preproc_per_full_frame_s: f64,
}

impl Default for EncodeModel {
    fn default() -> Self {
        EncodeModel {
            overhead_bytes: 2_048.0,
            // (225_000 - 2_048) / (640*480) ≈ 0.726 B/px: high-quality JPEG.
            bytes_per_pixel: 0.726,
            preproc_fixed_s: 0.015,
            preproc_per_full_frame_s: 0.025,
        }
    }
}

/// The result of encoding one frame at a given resolution policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodedImage {
    /// Resolution policy fraction in (0, 1].
    pub resolution: f64,
    /// Encoded payload size in bytes.
    pub bytes: f64,
    /// UE-side pre-processing time in seconds.
    pub preproc_s: f64,
}

impl EncodeModel {
    /// Pixel count at a resolution fraction (`res` scales pixel count, per
    /// Policy 1).
    ///
    /// # Panics
    /// Panics if `res` is outside `(0, 1]`.
    pub fn pixels(&self, res: f64) -> f64 {
        assert!(res > 0.0 && res <= 1.0, "resolution fraction must be in (0,1]");
        FRAME_WIDTH * FRAME_HEIGHT * res
    }

    /// Encodes a frame at resolution fraction `res`.
    pub fn encode(&self, res: f64) -> EncodedImage {
        let px = self.pixels(res);
        EncodedImage {
            resolution: res,
            bytes: self.overhead_bytes + self.bytes_per_pixel * px,
            preproc_s: self.preproc_fixed_s + self.preproc_per_full_frame_s * res,
        }
    }

    /// Encoded size in bits, convenience for the radio layer.
    pub fn bits(&self, res: f64) -> f64 {
        self.encode(res).bytes * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_res_frame_close_to_calibration_target() {
        let m = EncodeModel::default();
        let e = m.encode(1.0);
        assert!((e.bytes - 225_000.0).abs() < 5_000.0, "bytes {}", e.bytes);
        assert!((m.bits(1.0) / 1e6 - 1.8).abs() < 0.1, "Mb {}", m.bits(1.0) / 1e6);
    }

    #[test]
    fn bytes_monotone_in_resolution() {
        let m = EncodeModel::default();
        let mut prev = 0.0;
        for i in 1..=10 {
            let b = m.encode(i as f64 / 10.0).bytes;
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn quarter_resolution_is_quarter_payload_plus_overhead() {
        let m = EncodeModel::default();
        let full = m.encode(1.0).bytes - m.overhead_bytes;
        let quarter = m.encode(0.25).bytes - m.overhead_bytes;
        assert!((quarter * 4.0 - full).abs() < 1e-9);
    }

    #[test]
    fn preproc_time_grows_with_resolution() {
        let m = EncodeModel::default();
        assert!(m.encode(1.0).preproc_s > m.encode(0.25).preproc_s);
        assert!(m.encode(0.1).preproc_s >= m.preproc_fixed_s);
    }

    #[test]
    #[should_panic(expected = "resolution fraction")]
    fn rejects_zero_resolution() {
        let _ = EncodeModel::default().encode(0.0);
    }
}

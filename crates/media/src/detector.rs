//! Behavioural model of the object detector.
//!
//! Instead of running Faster R-CNN, we model *what the learning problem can
//! see of it*: which ground-truth objects get detected, with what box
//! accuracy and confidence, as a function of the image-resolution policy.
//! The mechanisms are the standard ones from the detection literature:
//!
//! * **Scale sensitivity** — detection probability is a logistic function
//!   of the object's *effective* linear size (native size × √res): small
//!   objects vanish first when frames are downscaled.
//! * **Localization noise** — box corners jitter more at lower resolution,
//!   so some matches fall below the IoU 0.5 threshold even when detected.
//! * **Spurious detections** — cluttered scenes produce false positives,
//!   more of them at low resolution, with lower confidence on average.
//!
//! The constants below are calibrated so the resulting mAP(res) curve —
//! computed by the real evaluator in [`crate::map`] — reproduces Fig. 1 of
//! the paper: ≈ 0.2 at 25% resolution to ≈ 0.62 at 100%.

use crate::scene::{BBox, Category, Scene, FRAME_HEIGHT, FRAME_WIDTH};
use edgebol_linalg::stats::normal;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One detector output: a classified, scored box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    pub category: Category,
    pub bbox: BBox,
    /// Confidence score in [0, 1]; the evaluator ranks detections by it.
    pub score: f64,
}

/// Tunable detector behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorModel {
    /// Effective linear size (pixels) at which detection probability is
    /// half its ceiling.
    pub size50: f64,
    /// Slope of the logistic size response (larger = sharper).
    pub size_slope: f64,
    /// Localization jitter (pixels) at 100% resolution for a 100px object.
    pub loc_noise_base: f64,
    /// Mean number of false positives per image at 25% resolution in a
    /// fully cluttered scene; scales down with resolution.
    pub fp_rate_lowres: f64,
}

impl Default for DetectorModel {
    fn default() -> Self {
        DetectorModel { size50: 40.0, size_slope: 2.2, loc_noise_base: 5.0, fp_rate_lowres: 2.0 }
    }
}

impl DetectorModel {
    /// Probability that a ground-truth object of native linear size
    /// `size_px` is detected at resolution fraction `res`.
    ///
    /// Logistic in `log(effective size / size50)`; capped by the
    /// category's detectability ceiling.
    pub fn detection_probability(&self, category: Category, size_px: f64, res: f64) -> f64 {
        assert!(res > 0.0 && res <= 1.0, "resolution fraction must be in (0,1]");
        let eff = size_px * res.sqrt();
        let x = self.size_slope * (eff / self.size50).ln();
        let logistic = 1.0 / (1.0 + (-x).exp());
        category.detectability() * logistic
    }

    /// Runs the detector model over a scene at resolution `res`.
    ///
    /// Returns the detections (true positives with jittered boxes plus
    /// false positives), unsorted.
    pub fn detect<R: Rng + ?Sized>(&self, scene: &Scene, res: f64, rng: &mut R) -> Vec<Detection> {
        assert!(res > 0.0 && res <= 1.0, "resolution fraction must be in (0,1]");
        let mut out = Vec::with_capacity(scene.objects.len() + 2);
        for gt in &scene.objects {
            let size = gt.bbox.h.max(gt.bbox.w);
            let p = self.detection_probability(gt.category, size, res);
            if rng.random::<f64>() >= p {
                continue;
            }
            // Localization noise grows as resolution falls; proportional to
            // object size (box regression errors are scale-relative).
            let sigma = self.loc_noise_base * (size / 100.0) / res.sqrt().max(0.2);
            let jitter = |rng: &mut R| normal(rng, 0.0, sigma);
            let bbox = BBox::new(
                gt.bbox.x + jitter(rng),
                gt.bbox.y + jitter(rng),
                gt.bbox.w * (1.0 + normal(rng, 0.0, sigma / size.max(1.0))),
                gt.bbox.h * (1.0 + normal(rng, 0.0, sigma / size.max(1.0))),
            );
            // Confidence correlates with detection difficulty.
            let score = (p * (0.75 + 0.25 * rng.random::<f64>())).clamp(0.05, 0.999);
            out.push(Detection { category: gt.category, bbox, score });
        }
        // False positives: clutter- and resolution-driven.
        let lambda = self.fp_rate_lowres * scene.clutter * ((1.05 - res) / 0.8).clamp(0.0, 1.0);
        let n_fp = poisson_knuth(lambda, rng);
        for _ in 0..n_fp {
            let idx = rng.random_range(0..Category::ALL.len());
            let category = Category::ALL[idx];
            let w = 15.0 + rng.random::<f64>() * 80.0;
            let h = 15.0 + rng.random::<f64>() * 80.0;
            out.push(Detection {
                category,
                bbox: BBox::new(
                    rng.random::<f64>() * (FRAME_WIDTH - w),
                    rng.random::<f64>() * (FRAME_HEIGHT - h),
                    w,
                    h,
                ),
                // FPs are mostly low confidence, occasionally high.
                score: (rng.random::<f64>().powi(2) * 0.7 + 0.05).min(0.95),
            });
        }
        out
    }
}

/// Knuth's Poisson sampler (fine for the small rates used here).
fn poisson_knuth<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // Defensive bound; unreachable for sane lambda.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{GroundTruth, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scene_with(category: Category, size: f64) -> Scene {
        Scene {
            id: 0,
            objects: vec![GroundTruth { category, bbox: BBox::new(100.0, 100.0, size, size) }],
            clutter: 0.0,
        }
    }

    #[test]
    fn detection_probability_monotone_in_resolution() {
        let d = DetectorModel::default();
        let mut prev = 0.0;
        for i in 1..=10 {
            let res = i as f64 / 10.0;
            let p = d.detection_probability(Category::Person, 60.0, res);
            assert!(p >= prev, "p not monotone at res {res}");
            prev = p;
        }
    }

    #[test]
    fn detection_probability_monotone_in_size() {
        let d = DetectorModel::default();
        let small = d.detection_probability(Category::Car, 15.0, 1.0);
        let large = d.detection_probability(Category::Car, 150.0, 1.0);
        assert!(large > small);
        assert!(large <= Category::Car.detectability() + 1e-12);
    }

    #[test]
    fn big_objects_detected_reliably_at_full_res() {
        let d = DetectorModel::default();
        let s = scene_with(Category::Person, 150.0);
        let mut rng = StdRng::seed_from_u64(5);
        let hits: usize =
            (0..500).map(|_| usize::from(!d.detect(&s, 1.0, &mut rng).is_empty())).sum();
        assert!(hits > 420, "hits {hits}");
    }

    #[test]
    fn small_objects_vanish_at_low_res() {
        let d = DetectorModel::default();
        let s = scene_with(Category::Bottle, 22.0);
        let mut rng = StdRng::seed_from_u64(6);
        let hits_low: usize =
            (0..500).map(|_| usize::from(!d.detect(&s, 0.15, &mut rng).is_empty())).sum();
        let hits_high: usize =
            (0..500).map(|_| usize::from(!d.detect(&s, 1.0, &mut rng).is_empty())).sum();
        assert!(hits_low * 2 < hits_high, "low {hits_low} should be well below high {hits_high}");
    }

    #[test]
    fn localization_noise_grows_at_low_res() {
        let d = DetectorModel::default();
        let s = scene_with(Category::Person, 120.0);
        let gt = s.objects[0].bbox;
        let mean_iou = |res: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            let mut n = 0;
            for _ in 0..400 {
                for det in d.detect(&s, res, &mut rng) {
                    total += det.bbox.iou(&gt);
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        let iou_high = mean_iou(1.0, 11);
        let iou_low = mean_iou(0.2, 12);
        assert!(iou_high > iou_low, "{iou_high} vs {iou_low}");
        assert!(iou_high > 0.8, "full-res IoU should be high: {iou_high}");
    }

    #[test]
    fn false_positives_appear_in_cluttered_lowres_scenes() {
        let d = DetectorModel::default();
        let mut s = scene_with(Category::Person, 1000.0);
        s.objects.clear(); // no GT: every detection is an FP
        s.clutter = 1.0;
        let mut rng = StdRng::seed_from_u64(7);
        let fps: usize = (0..300).map(|_| d.detect(&s, 0.25, &mut rng).len()).sum();
        assert!(fps > 100, "expected FPs in cluttered low-res scenes, got {fps}");
        let fps_high: usize = (0..300).map(|_| d.detect(&s, 1.0, &mut rng).len()).sum();
        assert!(fps_high < fps, "FPs should drop at high res: {fps_high} vs {fps}");
    }

    #[test]
    fn detect_is_deterministic_given_seed() {
        let d = DetectorModel::default();
        let g = SceneGenerator::default();
        let s = g.generate(1, &mut StdRng::seed_from_u64(1));
        let a = d.detect(&s, 0.5, &mut StdRng::seed_from_u64(2));
        let b = d.detect(&s, 0.5, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(poisson_knuth(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson_knuth(2.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }
}

//! Synthetic COCO-like scenes with ground-truth annotations.

use edgebol_linalg::stats::normal;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Native frame width at 100% resolution (the paper's maximum is 640x480).
pub const FRAME_WIDTH: f64 = 640.0;
/// Native frame height at 100% resolution.
pub const FRAME_HEIGHT: f64 = 480.0;

/// Object categories, loosely mirroring frequent COCO classes.
///
/// Each category carries a characteristic linear size (pixels at 100%
/// resolution) and a detectability ceiling, so that e.g. `Person` is large
/// and easy while `Bottle` is small and hard — which is what makes mAP
/// degrade with downscaling in a structured way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    Person,
    Bicycle,
    Car,
    Bus,
    Dog,
    Chair,
    Bottle,
    Laptop,
    Tv,
    Truck,
}

impl Category {
    /// All categories, in a stable order.
    pub const ALL: [Category; 10] = [
        Category::Person,
        Category::Bicycle,
        Category::Car,
        Category::Bus,
        Category::Dog,
        Category::Chair,
        Category::Bottle,
        Category::Laptop,
        Category::Tv,
        Category::Truck,
    ];

    /// Median linear size in pixels at full (640x480) resolution.
    pub fn median_size(self) -> f64 {
        match self {
            Category::Person => 120.0,
            Category::Bicycle => 90.0,
            Category::Car => 100.0,
            Category::Bus => 180.0,
            Category::Dog => 70.0,
            Category::Chair => 60.0,
            Category::Bottle => 28.0,
            Category::Laptop => 55.0,
            Category::Tv => 85.0,
            Category::Truck => 160.0,
        }
    }

    /// Detectability ceiling: the probability that a *large, clear*
    /// instance is found by the detector. Mirrors per-class AP spread in
    /// COCO results (no class is detected perfectly).
    pub fn detectability(self) -> f64 {
        match self {
            Category::Person => 0.92,
            Category::Bicycle => 0.72,
            Category::Car => 0.86,
            Category::Bus => 0.88,
            Category::Dog => 0.82,
            Category::Chair => 0.62,
            Category::Bottle => 0.58,
            Category::Laptop => 0.78,
            Category::Tv => 0.84,
            Category::Truck => 0.80,
        }
    }

    /// Relative frequency weight in generated scenes (unnormalized).
    pub fn frequency(self) -> f64 {
        match self {
            Category::Person => 4.0,
            Category::Car => 3.0,
            Category::Chair => 2.0,
            Category::Bottle => 2.0,
            Category::Dog => 1.0,
            Category::Bicycle => 1.0,
            Category::Bus => 0.7,
            Category::Laptop => 1.0,
            Category::Tv => 1.0,
            Category::Truck => 0.8,
        }
    }
}

/// An axis-aligned bounding box in pixel coordinates (`x`, `y` = top-left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl BBox {
    /// Creates a box; width/height are clamped to be non-negative.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        BBox { x, y, w: w.max(0.0), h: h.max(0.0) }
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Intersection-over-Union with another box — the matching criterion
    /// of Performance Indicator 2 (threshold 0.5 in the paper).
    pub fn iou(&self, other: &BBox) -> f64 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        let iw = (x2 - x1).max(0.0);
        let ih = (y2 - y1).max(0.0);
        let inter = iw * ih;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// One annotated ground-truth object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    pub category: Category,
    pub bbox: BBox,
}

/// A synthetic scene: a frame full of annotated objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Scene identifier within its dataset.
    pub id: u64,
    pub objects: Vec<GroundTruth>,
    /// Scene "clutter" in [0, 1]; cluttered scenes produce more false
    /// positives in the detector model.
    pub clutter: f64,
}

impl Scene {
    /// Number of annotated objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }
}

/// Configuration of the scene generator.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    /// Mean number of objects per scene (geometric-like distribution,
    /// at least 1).
    pub mean_objects: f64,
    /// Log-normal spread of object sizes around the category median.
    pub size_sigma: f64,
}

impl Default for SceneGenerator {
    fn default() -> Self {
        // COCO averages ~7 objects/image; keep a similar density.
        SceneGenerator { mean_objects: 6.0, size_sigma: 0.45 }
    }
}

impl SceneGenerator {
    /// Generates one scene with the provided RNG.
    pub fn generate<R: Rng + ?Sized>(&self, id: u64, rng: &mut R) -> Scene {
        let n = self.draw_count(rng);
        let total_freq: f64 = Category::ALL.iter().map(|c| c.frequency()).sum();
        let mut objects = Vec::with_capacity(n);
        for _ in 0..n {
            // Weighted category draw.
            let mut pick = rng.random::<f64>() * total_freq;
            let mut category = Category::Person;
            for c in Category::ALL {
                pick -= c.frequency();
                if pick <= 0.0 {
                    category = c;
                    break;
                }
            }
            // Log-normal size around the category median, clamped to frame.
            let size = (category.median_size() * normal(rng, 0.0, self.size_sigma).exp())
                .clamp(8.0, FRAME_HEIGHT * 0.95);
            let aspect = (0.6 + rng.random::<f64>() * 0.9).min(1.5);
            let w = (size * aspect).min(FRAME_WIDTH * 0.95);
            let h = size;
            let x = rng.random::<f64>() * (FRAME_WIDTH - w).max(1.0);
            let y = rng.random::<f64>() * (FRAME_HEIGHT - h).max(1.0);
            objects.push(GroundTruth { category, bbox: BBox::new(x, y, w, h) });
        }
        Scene { id, objects, clutter: rng.random::<f64>() }
    }

    /// Draws the object count: 1 + geometric-ish around `mean_objects`.
    fn draw_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let extra = (self.mean_objects - 1.0).max(0.0);
        let mut n = 1usize;
        // Sum of Bernoulli rounds approximating a Poisson-like spread.
        for _ in 0..(extra.ceil() as usize * 2) {
            if rng.random::<f64>() < 0.5 {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iou_identical_boxes_is_one() {
        let b = BBox::new(10.0, 10.0, 50.0, 40.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_boxes_is_zero() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(100.0, 100.0, 10.0, 10.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap_known_value() {
        // Two 10x10 boxes offset by 5 in x: inter = 50, union = 150.
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(5.0, 0.0, 10.0, 10.0);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.iou(&b), b.iou(&a));
    }

    #[test]
    fn iou_degenerate_boxes() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        let b = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.iou(&b), 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn bbox_clamps_negative_dims() {
        let b = BBox::new(0.0, 0.0, -5.0, 3.0);
        assert_eq!(b.w, 0.0);
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let g = SceneGenerator::default();
        let s1 = g.generate(7, &mut StdRng::seed_from_u64(123));
        let s2 = g.generate(7, &mut StdRng::seed_from_u64(123));
        assert_eq!(s1, s2);
    }

    #[test]
    fn generated_objects_fit_in_frame() {
        let g = SceneGenerator::default();
        let mut rng = StdRng::seed_from_u64(9);
        for id in 0..200 {
            let s = g.generate(id, &mut rng);
            assert!(s.num_objects() >= 1);
            for o in &s.objects {
                assert!(o.bbox.x >= 0.0 && o.bbox.y >= 0.0);
                assert!(o.bbox.x + o.bbox.w <= FRAME_WIDTH + 1e-9);
                assert!(o.bbox.y + o.bbox.h <= FRAME_HEIGHT + 1e-9);
                assert!(o.bbox.w >= 4.0, "degenerate object");
            }
        }
    }

    #[test]
    fn category_tables_are_sane() {
        for c in Category::ALL {
            assert!(c.median_size() > 0.0);
            assert!((0.0..=1.0).contains(&c.detectability()));
            assert!(c.frequency() > 0.0);
        }
        // Persons are more detectable than bottles: size/visibility prior.
        assert!(Category::Person.detectability() > Category::Bottle.detectability());
    }

    #[test]
    fn mean_object_count_tracks_config() {
        let g = SceneGenerator { mean_objects: 6.0, size_sigma: 0.3 };
        let mut rng = StdRng::seed_from_u64(1);
        let total: usize = (0..500).map(|i| g.generate(i, &mut rng).num_objects()).sum();
        let mean = total as f64 / 500.0;
        assert!((mean - 6.0).abs() < 1.0, "mean objects {mean}");
    }
}

//! The closed orchestration loop over the O-RAN control plane (Fig. 7).
//!
//! Each period the orchestrator:
//!
//! 1. observes the context from the environment,
//! 2. asks the agent for a control policy,
//! 3. deploys the **radio** half (airtime, MCS cap) through the real
//!    rApp → A1 → xApp → E2 → O-eNB chain and waits for the `Enforced`
//!    feedback — the policy that reaches the environment is the one the
//!    E2 node actually applied (including A1's milli-unit quantization),
//! 4. runs the period and routes the BS-power KPI back through the E2
//!    indication → data-collector rApp path, exactly as §4.1 describes,
//! 5. feeds the period's outcome to the agent and records it.
//!
//! The GPU-speed policy is applied directly ("the GPU speed is configured
//! in the same machine where the learning agent runs", §4.2) and the image
//! resolution "is indicated to the user using the application of the
//! service" — both bypass the RAN control plane in the paper too.

use crate::agent::Agent;
use crate::problem::ProblemSpec;
use crate::trace::{PeriodRecord, Trace};
use edgebol_oran::{duplex_pair, E2Node, KpiReport, NearRtRic, NonRtRic, RadioPolicy, RicEvent};
use edgebol_ran::Mcs;
use edgebol_testbed::{ControlInput, Environment};
use std::sync::{Arc, Mutex};

/// A scheduled constraint change: at period `t`, switch to
/// `(d_max, rho_min)` — the Fig. 14 scenario.
pub type ConstraintEvent = (usize, f64, f64);

/// The orchestrator.
pub struct Orchestrator {
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    nonrt: NonRtRic,
    nearrt: NearRtRic,
    node: E2Node,
    /// The radio policy most recently enforced at the E2 node.
    enforced: Arc<Mutex<Option<RadioPolicy>>>,
    t: usize,
    /// Record the safe-set size each period (full-grid GP sweep —
    /// noticeably slower; used by the Fig. 13 regenerator).
    pub record_safe_set: bool,
    schedule: Vec<ConstraintEvent>,
}

impl Orchestrator {
    /// Wires the agent, environment and O-RAN chain together.
    pub fn new(env: Box<dyn Environment>, agent: Box<dyn Agent>, spec: ProblemSpec) -> Self {
        let (a1_up, a1_down) = duplex_pair();
        let (e2_up, e2_down) = duplex_pair();
        let enforced = Arc::new(Mutex::new(None));
        let sink = enforced.clone();
        let node = E2Node::new(
            e2_down,
            Box::new(move |p| {
                *sink.lock().expect("policy sink lock") = Some(p);
            }),
        );
        let nonrt = NonRtRic::new(a1_up);
        let mut nearrt = NearRtRic::new(a1_down, e2_up);
        nearrt.subscribe_kpis(1_000).expect("in-process E2 cannot fail at setup");
        let mut orch = Orchestrator {
            env,
            agent,
            spec,
            nonrt,
            nearrt,
            node,
            enforced,
            t: 0,
            record_safe_set: false,
            schedule: Vec::new(),
        };
        // Complete the KPI subscription handshake.
        orch.node.poll().expect("subscription handshake");
        orch
    }

    /// Adds a constraint-change schedule (Fig. 14).
    pub fn with_constraint_schedule(mut self, schedule: Vec<ConstraintEvent>) -> Self {
        self.schedule = schedule;
        self
    }

    /// The problem spec currently in force.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// Pushes the radio policies through A1/E2; returns the control as
    /// actually enforced by the node.
    fn deploy_radio_policy(&mut self, control: &ControlInput) -> ControlInput {
        let policy = RadioPolicy {
            airtime: control.airtime,
            max_mcs: control.mcs_cap.index() as u8,
        };
        self.nonrt.put_policy(policy).expect("A1 put");
        self.nearrt.poll().expect("near-RT poll (A1->E2)");
        self.node.poll().expect("node poll (apply+ack)");
        self.nearrt.poll().expect("near-RT poll (ack->A1)");
        let events = self.nonrt.poll().expect("non-RT poll (feedback)");
        debug_assert!(
            events.iter().any(|e| matches!(e, RicEvent::PolicyFeedback { .. })),
            "policy feedback expected"
        );
        let applied = self
            .enforced
            .lock()
            .expect("policy sink lock")
            .expect("E2 node must have applied the policy");
        ControlInput {
            resolution: control.resolution,
            airtime: applied.airtime,
            gpu_speed: control.gpu_speed,
            mcs_cap: Mcs::clamped(applied.max_mcs as i64),
        }
    }

    /// Routes a BS power reading through the E2 indication path and back
    /// out of the data-collector rApp.
    fn bs_power_via_kpi_path(&mut self, t_ms: u64, bs_power_w: f64) -> f64 {
        self.node
            .indicate(KpiReport {
                t_ms,
                bs_power_mw: (bs_power_w * 1000.0).round() as u64,
                duty_milli: 0,
                mean_mcs_centi: 0,
            })
            .expect("E2 indicate");
        self.nearrt.poll().expect("near-RT poll (indication)");
        for ev in self.nonrt.poll().expect("non-RT poll (kpi)") {
            if let RicEvent::Kpi { bs_power_w: w, .. } = ev {
                return w;
            }
        }
        // Indication path configured but no sample: keep the local value.
        bs_power_w
    }

    /// Runs one orchestration period.
    pub fn step_once(&mut self) -> PeriodRecord {
        // Scheduled constraint changes (operator reconfiguration).
        for &(at, d_max, rho_min) in &self.schedule {
            if at == self.t {
                self.spec.d_max = d_max;
                self.spec.rho_min = rho_min;
                self.agent.set_constraints(d_max, rho_min);
            }
        }
        let ctx = self.env.observe_context();
        let wanted = self.agent.select(&ctx);
        let control = self.deploy_radio_policy(&wanted);
        let mut obs = self.env.step(&control);
        // BS power rides the E2 KPI path (mW quantization included).
        obs.bs_power_w = self.bs_power_via_kpi_path((self.t as u64) * 1000, obs.bs_power_w);

        let cost = self.spec.cost(&obs);
        let satisfied = self.spec.satisfied(&obs);
        self.agent.update(&ctx, &control, &obs);
        let safe_set_size =
            if self.record_safe_set { self.agent.safe_set_size(&ctx) } else { None };
        let record = PeriodRecord {
            t: self.t,
            context: ctx,
            control,
            obs,
            cost,
            satisfied,
            safe_set_size,
        };
        self.t += 1;
        record
    }

    /// Runs `periods` periods and returns the trace.
    pub fn run(&mut self, periods: usize) -> Trace {
        let mut trace = Trace::default();
        for _ in 0..periods {
            let r = self.step_once();
            trace.records.push(r);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::EdgeBolAgent;
    use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

    fn orch(seed: u64) -> Orchestrator {
        let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), seed);
        let agent = EdgeBolAgent::quick_for_tests(&spec, seed);
        Orchestrator::new(Box::new(env), Box::new(agent), spec)
    }

    #[test]
    fn runs_periods_and_records() {
        let mut o = orch(1);
        let trace = o.run(10);
        assert_eq!(trace.len(), 10);
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.t, i);
            assert!(r.cost > 0.0);
            assert!(r.obs.delay_s > 0.0);
            assert_eq!(r.cost, o.spec().cost(&r.obs));
        }
    }

    #[test]
    fn radio_policy_quantization_survives_the_chain() {
        // Whatever the agent asks, the enforced airtime is a multiple of
        // 1/1000 (A1 carries milli-units).
        let mut o = orch(2);
        let trace = o.run(5);
        for r in &trace.records {
            let milli = r.control.airtime * 1000.0;
            assert!((milli - milli.round()).abs() < 1e-9, "airtime {}", r.control.airtime);
        }
    }

    #[test]
    fn constraint_schedule_fires() {
        let mut o = orch(3).with_constraint_schedule(vec![(3, 0.3, 0.6)]);
        let _ = o.run(3);
        assert_eq!(o.spec().d_max, 0.5);
        let _ = o.run(1);
        assert_eq!(o.spec().d_max, 0.3);
        assert_eq!(o.spec().rho_min, 0.6);
    }

    #[test]
    fn safe_set_recording_is_optional_and_works() {
        let mut o = orch(4);
        o.record_safe_set = true;
        let trace = o.run(8);
        assert!(trace.records.iter().all(|r| r.safe_set_size.is_some()));
        // During warm-up the estimate equals |S_0| = 1 (the max-resources
        // corner is the a-priori safe set).
        assert_eq!(trace.records[0].safe_set_size, Some(1));
    }

    #[test]
    fn learning_reduces_cost_over_time() {
        let mut o = orch(5);
        let trace = o.run(60);
        let early: f64 = trace.costs()[..6].iter().sum::<f64>() / 6.0;
        let late = trace.tail_mean_cost(10);
        assert!(
            late < early,
            "cost should fall as EdgeBOL learns: early {early:.1} late {late:.1}"
        );
        // And the service constraints hold most of the time after warmup.
        assert!(trace.satisfaction_rate(10) > 0.7, "{}", trace.satisfaction_rate(10));
    }
}

//! The closed orchestration loop over the O-RAN control plane (Fig. 7).
//!
//! Each period the orchestrator:
//!
//! 1. observes the context from the environment,
//! 2. asks the agent for a control policy,
//! 3. deploys the **radio** half (airtime, MCS cap) through the real
//!    rApp → A1 → xApp → E2 → O-eNB chain and waits for the `Enforced`
//!    feedback — the policy that reaches the environment is the one the
//!    E2 node actually applied (including the E2 `ControlRequest` wire
//!    format's milli-unit airtime quantization),
//! 4. runs the period and routes the BS-power KPI back through the E2
//!    indication → data-collector rApp path, exactly as §4.1 describes,
//! 5. feeds the period's outcome to the agent and records it.
//!
//! The GPU-speed policy is applied directly ("the GPU speed is configured
//! in the same machine where the learning agent runs", §4.2) and the image
//! resolution "is indicated to the user using the application of the
//! service" — both bypass the RAN control plane in the paper too.
//!
//! # Failure model
//!
//! The loop is fallible, not panicking: every control-plane interaction
//! returns a typed [`OranError`] which [`Orchestrator::try_step`] either
//! absorbs or surfaces as an [`OrchestratorError`]:
//!
//! * **Recoverable** errors — a corrupt or out-of-order message on a
//!   healthy link (framing/codec/handshake) — trigger **degraded mode**
//!   for that interaction: the radio path reuses the last policy the E2
//!   node is known to have enforced (the node keeps running its current
//!   configuration when a control message is lost), and the KPI path
//!   falls back to the locally measured power reading. Degraded events
//!   are counted in [`Orchestrator::degraded_events`].
//! * **Session-fatal** errors — the channel is closed or the socket
//!   died ([`OranError::is_session_fatal`]) — hand control to the
//!   **reconnect supervisor** ([`edgebol_oran::Supervisor`]): the run
//!   continues in **local-autonomy mode** (last enforced policy, local
//!   power readings, counted in
//!   [`Orchestrator::local_autonomy_periods`]) while the supervisor
//!   schedules resync probes with deterministic exponential backoff on
//!   the period clock. A successful resync discards the dead session's
//!   stale frames, re-runs the KPI subscription handshake, re-pushes
//!   the last acknowledged policy and bumps the session epoch; the loop
//!   then returns to the connected path. When the retry budget is
//!   exhausted the circuit latches open: under the default sticky
//!   fallback the run survives indefinitely with periodic half-open
//!   probes, while [`edgebol_oran::FallbackMode::Off`] surfaces
//!   [`OrchestratorError::CircuitOpen`] to the caller instead.
//! * A **KPI watchdog** (off by default, period budget set via
//!   [`Orchestrator::with_recovery`]) treats an E2 stream that stays
//!   silent for N consecutive periods as a dead session even though no
//!   transport error surfaced, and routes it through the same
//!   supervisor machinery.
//!
//! The failure model is exercised by the deterministic chaos layer
//! (`edgebol_oran::chaos`): [`Orchestrator::new_with_chaos`] wraps the
//! near-RT RIC's two endpoints in fault-injecting decorators — which
//! covers all four lanes, since every A1/E2 message transits the xApp —
//! and the per-stage counters ([`Orchestrator::degraded_by_stage`]) plus
//! the shared [`FaultLedger`] let tests assert that every injected
//! recoverable fault is accounted for, not silently absorbed.

use crate::agent::Agent;
use crate::problem::ProblemSpec;
use crate::trace::{PeriodRecord, Trace};
use edgebol_metrics::{Counter, Histogram, Registry};
use edgebol_oran::{
    duplex_pair, AnyLink, ChaosConfig, ChaosEndpoint, ChaosPlan, CircuitState, E2Node, FaultLedger,
    KpiReport, LinkId, NearRtRic, NonRtRic, OranError, RadioPolicy, Reactor, RecoveryAction,
    RecoveryPolicy, RicEvent, Supervisor, TransportKind,
};
use edgebol_ran::Mcs;
use edgebol_testbed::{ControlInput, Environment};
use edgebol_trace::{Journal, Layer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A scheduled constraint change: at period `t`, switch to
/// `(d_max, rho_min)` — the Fig. 14 scenario.
pub type ConstraintEvent = (usize, f64, f64);

/// Errors of the orchestration loop.
///
/// Wraps the O-RAN layer's [`OranError`] together with the stage of the
/// control-plane round trip that failed, so logs can say *where* in the
/// rApp → A1 → xApp → E2 → node chain a link died.
#[derive(Debug)]
pub enum OrchestratorError {
    /// A control-plane interaction failed at `stage` with an
    /// unrecoverable transport error (recoverable ones are absorbed by
    /// degraded mode; session-fatal ones are absorbed by the reconnect
    /// supervisor, so with the default recovery policy this variant no
    /// longer reaches `try_step` callers).
    ControlPlane {
        /// Which hop of the A1/E2 round trip failed.
        stage: &'static str,
        /// The underlying O-RAN layer error.
        source: OranError,
    },
    /// The reconnect supervisor exhausted its retry budget, the circuit
    /// latched open, and the operator disabled local-autonomy fallback
    /// (`FallbackMode::Off`): the run cannot continue.
    CircuitOpen {
        /// The link whose loss opened the circuit.
        link: LinkId,
        /// Resync attempts made before latching open.
        attempts: u32,
    },
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestratorError::ControlPlane { stage, source } => {
                write!(f, "control plane failed at {stage}: {source}")
            }
            OrchestratorError::CircuitOpen { link, attempts } => {
                write!(
                    f,
                    "circuit open: {link} link lost, {attempts} resync attempts exhausted \
                     and fallback is disabled"
                )
            }
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::ControlPlane { source, .. } => Some(source),
            OrchestratorError::CircuitOpen { .. } => None,
        }
    }
}

impl OrchestratorError {
    /// Whether the underlying link is still usable. `try_step` never
    /// returns a recoverable error (those are absorbed by degraded
    /// mode); this exists for callers of the lower-level deploy helpers
    /// and for tests.
    pub fn is_recoverable(&self) -> bool {
        match self {
            OrchestratorError::ControlPlane { source, .. } => !source.is_connection_lost(),
            OrchestratorError::CircuitOpen { .. } => false,
        }
    }

    /// Whether this error ended a control-plane *session* — exactly what
    /// the reconnect supervisor absorbs and retries
    /// ([`OranError::is_session_fatal`] on the source). A `CircuitOpen`
    /// is not session-fatal: it is the supervisor's own verdict that no
    /// further sessions will be attempted.
    pub fn is_session_fatal(&self) -> bool {
        match self {
            OrchestratorError::ControlPlane { source, .. } => source.is_session_fatal(),
            OrchestratorError::CircuitOpen { .. } => false,
        }
    }

    /// Which hop of the rApp → A1 → xApp → E2 → node chain failed (the
    /// synthetic stage `"reconnect supervisor"` for a latched-open
    /// circuit).
    pub fn stage(&self) -> &'static str {
        match self {
            OrchestratorError::ControlPlane { stage, .. } => stage,
            OrchestratorError::CircuitOpen { .. } => "reconnect supervisor",
        }
    }
}

/// Tags an O-RAN layer result with the chain stage it belongs to.
fn at<T>(stage: &'static str, r: Result<T, OranError>) -> Result<T, OrchestratorError> {
    r.map_err(|source| OrchestratorError::ControlPlane { stage, source })
}

/// Step-latency bucket bounds (seconds). Orchestration periods on the
/// simulated testbed run in fractions of a millisecond to tens of
/// milliseconds depending on agent configuration (full GP sweeps are
/// ~1000× a warm-up step), so the grid is log-spaced from 0.5 ms to 2 s
/// — wide enough that both regimes land in interior buckets.
const STEP_LATENCY_BOUNDS: &[f64] =
    &[0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0];

/// Pre-resolved metric handles for the orchestration loop. Handles are
/// resolved once at construction so the per-period hot path never takes
/// the registry's registration lock; per-stage counters (degraded,
/// errors) are resolved lazily because stages are data-dependent and
/// only hit on the cold (failure) path.
struct OrchestratorMetrics {
    registry: Registry,
    periods: Counter,
    step_seconds: Histogram,
    kpi_stale: Counter,
    local_autonomy: Counter,
}

impl OrchestratorMetrics {
    fn new(registry: Registry) -> Self {
        registry.describe("edgebol_core_periods_total", "Control periods completed");
        registry.describe(
            "edgebol_core_step_latency_seconds",
            "Wall-clock latency of one sense-optimize-deploy-KPI period",
        );
        registry.describe(
            "edgebol_core_kpi_stale_samples_total",
            "Periods that reused the last KPI report because the fresh one was lost",
        );
        registry.describe(
            "edgebol_core_local_autonomy_periods_total",
            "Periods ridden out in local-autonomy fallback (control plane down)",
        );
        registry.describe("edgebol_core_degraded_total", "Degraded periods by failing chain stage");
        registry.describe(
            "edgebol_core_control_plane_errors_total",
            "Fatal control-plane errors by failing chain stage",
        );
        registry.describe(
            "edgebol_core_stale_frames_discarded_total",
            "Pre-outage frames discarded on resync instead of being replayed",
        );
        OrchestratorMetrics {
            periods: registry.counter("edgebol_core_periods_total"),
            step_seconds: registry
                .histogram("edgebol_core_step_latency_seconds", STEP_LATENCY_BOUNDS),
            kpi_stale: registry.counter("edgebol_core_kpi_stale_samples_total"),
            local_autonomy: registry.counter("edgebol_core_local_autonomy_periods_total"),
            registry,
        }
    }
}

/// Every chain-stage name the orchestrator or its errors can attribute
/// a degraded period to. Checkpoints store stage names as strings;
/// restore re-interns them against this table so `degraded_by_stage`
/// keeps its zero-allocation `&'static str` keys — an unknown name
/// means the checkpoint came from an incompatible build and is
/// rejected as a typed error.
const KNOWN_STAGES: &[&str] = &[
    "A1 put (rApp->xApp)",
    "near-RT poll (A1->E2)",
    "node poll (apply+ack)",
    "near-RT poll (ack->A1)",
    "non-RT poll (feedback)",
    "E2 indicate (node->xApp)",
    "near-RT poll (indication)",
    "non-RT poll (kpi)",
    "radio deploy (silent loss)",
    "KPI path (silent loss)",
    "KPI subscribe (xApp->E2)",
    "KPI subscription handshake (node)",
    "KPI subscription flush (xApp)",
    "reactor setup",
    "reactor pair (A1)",
    "reactor pair (E2)",
    "reconnect supervisor",
];

fn intern_stage(name: &str) -> Option<&'static str> {
    KNOWN_STAGES.iter().find(|s| **s == name).copied()
}

/// The orchestrator.
pub struct Orchestrator {
    env: Box<dyn Environment>,
    agent: Box<dyn Agent>,
    spec: ProblemSpec,
    nonrt: NonRtRic<AnyLink>,
    /// The xApp's two endpoints are chaos-wrapped (transparently, when
    /// the plan is disabled): every control-plane frame transits here, so
    /// these two decorators cover all four fault lanes. The links
    /// underneath are [`AnyLink`], so the same orchestrator type runs
    /// over the in-process poll transport or the reactor-managed TCP
    /// transport — which of the two is a construction-time choice.
    nearrt: NearRtRic<ChaosEndpoint<AnyLink>, ChaosEndpoint<AnyLink>>,
    node: E2Node<AnyLink>,
    /// Which transport carries the A1/E2 links of this instance.
    transport: TransportKind,
    /// The fault schedule in force (disarmed and empty for [`Orchestrator::new`]).
    chaos: ChaosPlan,
    /// The radio policy most recently enforced at the E2 node (written by
    /// the node's apply hook, drained once per deployment).
    enforced: Arc<Mutex<Option<RadioPolicy>>>,
    /// Every policy the node's apply hook ever ran, stamped with the
    /// period current when it fired — ground truth for "the enforced
    /// policy never silently diverges from the last acknowledged one".
    applied_log: Arc<Mutex<Vec<(usize, RadioPolicy)>>>,
    /// The running period, readable from inside the apply hook.
    period: Arc<AtomicUsize>,
    /// The last policy known to be enforced — the degraded-mode fallback
    /// when the control plane drops a message.
    last_enforced: Option<RadioPolicy>,
    /// The reconnect supervisor: turns session losses into backoff /
    /// resync / local-autonomy episodes on the period clock.
    supervisor: Supervisor,
    /// Periods that ran in local-autonomy mode (outage in progress:
    /// local power readings, last-enforced policy).
    local_autonomy_periods: usize,
    /// The first period that deviated from the connected path (session
    /// loss or local-autonomy fallback) — the start of the outage
    /// window for trace-prefix comparisons.
    first_outage_period: Option<usize>,
    t: usize,
    degraded_events: usize,
    /// Degraded events keyed by the chain stage that caused them (error
    /// stages verbatim; silent losses under synthetic stage names).
    degraded_by_stage: BTreeMap<&'static str, usize>,
    /// Record the safe-set size each period (full-grid GP sweep —
    /// noticeably slower; used by the Fig. 13 regenerator).
    pub record_safe_set: bool,
    schedule: Vec<ConstraintEvent>,
    metrics: OrchestratorMetrics,
    /// Structured event journal (per-period stage spans, outage
    /// narrative), shared with the supervisor and chaos ledger once
    /// attached via [`Orchestrator::with_journal`].
    journal: Option<Arc<Journal>>,
}

impl Orchestrator {
    /// Wires the agent, environment and O-RAN chain together.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when the KPI-subscription
    /// handshake fails — impossible for the in-process transport built
    /// here, but the setup path is fallible like the rest of the loop.
    pub fn new(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
    ) -> Result<Self, OrchestratorError> {
        Self::new_with_chaos(env, agent, spec, ChaosConfig::disabled())
    }

    /// Like [`Orchestrator::new`], but runs the control plane under the
    /// given deterministic fault schedule. The plan is armed only after
    /// the KPI-subscription handshake completes, so bootstrap traffic is
    /// never faulted and the first faultable frame belongs to period 0.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when the (pre-chaos)
    /// subscription handshake fails.
    pub fn new_with_chaos(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
        chaos: ChaosConfig,
    ) -> Result<Self, OrchestratorError> {
        Self::new_instrumented(env, agent, spec, chaos, Registry::disabled())
    }

    /// Like [`Orchestrator::new_with_chaos`], but records observability
    /// metrics into `metrics`: per-period step latency
    /// (`edgebol_core_step_latency_seconds`), per-stage degraded and
    /// control-plane-error counters (mirroring
    /// [`Orchestrator::degraded_by_stage`]), stale KPI samples, and —
    /// through the chaos plan — per-link frame/byte traffic plus
    /// per-kind fault counts. Passing [`Registry::disabled`] records
    /// nothing and is equivalent to [`Orchestrator::new_with_chaos`].
    ///
    /// The transport is taken from the `EDGEBOL_TRANSPORT` env knob
    /// ([`TransportKind::from_env`]), so the whole existing test and
    /// bench surface can be rerun over the reactor without code changes;
    /// [`Orchestrator::new_with_transport`] pins it explicitly.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when the (pre-chaos)
    /// subscription handshake fails.
    pub fn new_instrumented(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
        chaos: ChaosConfig,
        metrics: Registry,
    ) -> Result<Self, OrchestratorError> {
        Self::new_with_transport(env, agent, spec, chaos, metrics, TransportKind::from_env())
    }

    /// An orchestrator whose A1/E2 links ride the non-blocking reactor
    /// transport (framed TCP over loopback, multiplexed by a
    /// [`Reactor`]) instead of the in-process poll transport — the
    /// fleet-scale construction path. Equivalent to
    /// [`Orchestrator::new_with_transport`] with
    /// [`TransportKind::Reactor`], no chaos, no metrics.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when reactor setup (sockets,
    /// readiness source) or the KPI-subscription handshake fails.
    pub fn new_with_reactor(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
    ) -> Result<Self, OrchestratorError> {
        Self::new_with_transport(
            env,
            agent,
            spec,
            ChaosConfig::disabled(),
            Registry::disabled(),
            TransportKind::Reactor,
        )
    }

    /// The general constructor: every other `new_*` resolves to this.
    /// Builds the rApp → A1 → xApp → E2 → node chain over `transport`,
    /// wraps the xApp's two links in the chaos plan, and completes the
    /// KPI-subscription handshake before arming the plan. Because the
    /// chaos op-clock counts operations *above* the transport and the
    /// reactor's paired links deliver every sent frame before reporting
    /// empty, a fixed-seed episode produces f64-bit-identical traces on
    /// both transports (pinned by `tests/reactor.rs`).
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when transport setup or the
    /// (pre-chaos) subscription handshake fails.
    pub fn new_with_transport(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
        chaos: ChaosConfig,
        metrics: Registry,
        transport: TransportKind,
    ) -> Result<Self, OrchestratorError> {
        let plan = ChaosPlan::new_instrumented(chaos, metrics.clone());
        let (a1_up, a1_down, e2_up, e2_down) = match transport {
            TransportKind::Poll => {
                let (a1_up, a1_down) = duplex_pair();
                let (e2_up, e2_down) = duplex_pair();
                (a1_up.into(), a1_down.into(), e2_up.into(), e2_down.into())
            }
            TransportKind::Reactor => {
                let r = at(
                    "reactor setup",
                    Reactor::new_instrumented(metrics.clone()).map_err(OranError::from),
                )?;
                let (a1_up, a1_down) = at("reactor pair (A1)", r.pair().map_err(OranError::from))?;
                let (e2_up, e2_down) = at("reactor pair (E2)", r.pair().map_err(OranError::from))?;
                (a1_up.into(), a1_down.into(), e2_up.into(), e2_down.into())
            }
        };
        Self::assemble(env, agent, spec, plan, metrics, transport, a1_up, a1_down, e2_up, e2_down)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        env: Box<dyn Environment>,
        agent: Box<dyn Agent>,
        spec: ProblemSpec,
        plan: ChaosPlan,
        metrics: Registry,
        transport: TransportKind,
        a1_up: AnyLink,
        a1_down: AnyLink,
        e2_up: AnyLink,
        e2_down: AnyLink,
    ) -> Result<Self, OrchestratorError> {
        let enforced = Arc::new(Mutex::new(None));
        let applied_log = Arc::new(Mutex::new(Vec::new()));
        let period = Arc::new(AtomicUsize::new(0));
        let sink = enforced.clone();
        let log = applied_log.clone();
        let stamp = period.clone();
        let node = E2Node::new(
            e2_down,
            Box::new(move |p| {
                *sink.lock().unwrap_or_else(PoisonError::into_inner) = Some(p);
                log.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((stamp.load(Ordering::SeqCst), p));
            }),
        );
        let nonrt = NonRtRic::new(a1_up);
        let mut nearrt =
            NearRtRic::new(plan.wrap(a1_down, LinkId::A1), plan.wrap(e2_up, LinkId::E2));
        at("KPI subscribe (xApp->E2)", nearrt.subscribe_kpis(1_000))?;
        let supervisor = Supervisor::new_instrumented(RecoveryPolicy::default(), &metrics);
        let mut orch = Orchestrator {
            env,
            agent,
            spec,
            nonrt,
            nearrt,
            node,
            transport,
            chaos: plan,
            enforced,
            applied_log,
            period,
            last_enforced: None,
            supervisor,
            local_autonomy_periods: 0,
            first_outage_period: None,
            t: 0,
            degraded_events: 0,
            degraded_by_stage: BTreeMap::new(),
            record_safe_set: false,
            schedule: Vec::new(),
            metrics: OrchestratorMetrics::new(metrics),
            journal: None,
        };
        // Complete the KPI subscription handshake...
        at("KPI subscription handshake (node)", orch.node.poll())?;
        // ...and flush the SubscriptionResponse out of the xApp's E2
        // queue while the plan is still disarmed, so no bootstrap frame
        // lingers where the fault schedule could hit it.
        at("KPI subscription flush (xApp)", orch.nearrt.poll())?;
        orch.chaos.arm();
        Ok(orch)
    }

    /// Adds a constraint-change schedule (Fig. 14).
    pub fn with_constraint_schedule(mut self, schedule: Vec<ConstraintEvent>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the reconnect supervisor's policy (default:
    /// [`RecoveryPolicy::default`] — 8 retries, sticky fallback,
    /// watchdog off). Call before stepping: the fresh supervisor starts
    /// `Connected` at epoch 0.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.supervisor = Supervisor::new_instrumented(policy, &self.metrics.registry);
        if let Some(j) = &self.journal {
            self.supervisor.set_journal(j.clone());
        }
        self
    }

    /// Attaches a structured event journal: the orchestrator emits one
    /// `period_span` event per period (sense → optimize → deploy → KPI
    /// stage timings) plus outage-narrative events, and the same handle
    /// is forwarded to the reconnect supervisor (circuit transitions)
    /// and the chaos ledger (fault injections), so one ring holds the
    /// whole story in order. Order with respect to
    /// [`Orchestrator::with_recovery`] does not matter.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.supervisor.set_journal(journal.clone());
        self.chaos.ledger().set_journal(journal.clone());
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Records an orchestrator-layer journal event stamped with the
    /// current period; a no-op without an attached journal.
    fn journal_event(&self, kind: &'static str, fields: Vec<(&'static str, String)>) {
        if let Some(j) = &self.journal {
            j.record(Layer::Orchestrator, kind, Some(self.t as u64), fields);
        }
    }

    /// The problem spec currently in force.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// Which transport carries this instance's A1/E2 links.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// How many control-plane interactions fell back to degraded mode
    /// (stale policy / local power reading) so far.
    pub fn degraded_events(&self) -> usize {
        self.degraded_events
    }

    /// Degraded events keyed by the chain stage that caused them. Error
    /// stages appear verbatim; losses the chain never reported as errors
    /// are counted under `"radio deploy (silent loss)"` and
    /// `"KPI path (silent loss)"`. The per-stage counts always sum to
    /// [`Orchestrator::degraded_events`].
    pub fn degraded_by_stage(&self) -> &BTreeMap<&'static str, usize> {
        &self.degraded_by_stage
    }

    /// The ledger of faults the chaos schedule has injected so far
    /// (empty for an orchestrator built with [`Orchestrator::new`]).
    pub fn fault_ledger(&self) -> FaultLedger {
        self.chaos.ledger()
    }

    /// Every policy the E2 node's apply hook actually ran, stamped with
    /// the period in which it fired, in application order.
    pub fn enforcement_log(&self) -> Vec<(usize, RadioPolicy)> {
        self.applied_log.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The policy the environment is currently running under — the last
    /// acknowledged enforcement (or the locally quantized bootstrap
    /// fallback before any enforcement succeeded).
    pub fn last_enforced(&self) -> Option<RadioPolicy> {
        self.last_enforced
    }

    /// The registry this orchestrator records into (disabled unless
    /// built with [`Orchestrator::new_instrumented`]).
    pub fn metrics(&self) -> &Registry {
        &self.metrics.registry
    }

    /// The reconnect supervisor's circuit state.
    pub fn circuit_state(&self) -> CircuitState {
        self.supervisor.state()
    }

    /// The current control-plane session epoch (bumped by every
    /// successful resync; 0 is the bootstrap session).
    pub fn session_epoch(&self) -> u64 {
        self.supervisor.epoch()
    }

    /// Periods that ran in local-autonomy mode (outage in progress).
    pub fn local_autonomy_periods(&self) -> usize {
        self.local_autonomy_periods
    }

    /// The first period that deviated from the connected path, if any —
    /// the start of the outage window. Records before this index are
    /// bit-identical to a fault-free run's.
    pub fn first_outage_period(&self) -> Option<usize> {
        self.first_outage_period
    }

    /// Successful resyncs so far.
    pub fn reconnects_ok(&self) -> u64 {
        self.supervisor.reconnects_ok()
    }

    /// Failed resync attempts so far.
    pub fn reconnects_failed(&self) -> u64 {
        self.supervisor.reconnects_failed()
    }

    /// KPI watchdog trips so far (0 unless enabled via
    /// [`Orchestrator::with_recovery`]).
    pub fn watchdog_trips(&self) -> u64 {
        self.supervisor.watchdog_trips()
    }

    /// Forwards a cross-slice GPU contention factor to the environment
    /// (see [`Environment::set_gpu_contention`]): the fleet layer's
    /// shared-server model calls this each period on every member slice
    /// whose cell's aggregate load exceeds the server's capacity.
    pub fn set_gpu_contention(&mut self, factor: f64) {
        self.env.set_gpu_contention(factor);
    }

    /// The agent's transferable experience, when it maintains one (see
    /// [`Agent::export_experience`]) — how the fleet layer reads a
    /// running slice's posterior to warm-start a newly spawned one.
    pub fn agent_experience(&self) -> Option<Vec<(Vec<f64>, [f64; 3])>> {
        self.agent.export_experience()
    }

    /// Serializes the orchestrator's evolving state at a period boundary
    /// — counters, enforcement log, supervisor circuit, and (when they
    /// support snapshots) the agent and environment — as a checkpoint
    /// payload for [`Self::restore_state`].
    ///
    /// Construction-time configuration (transport, chaos plan, recovery
    /// policy, metric registry) is not serialized: a restore target is
    /// built with the same constructor arguments and then handed this
    /// payload.
    pub fn save_state(&self) -> Vec<u8> {
        let mut e = edgebol_ckpt::Enc::new();
        e.usize(self.t);
        e.f64(self.spec.d_max);
        e.f64(self.spec.rho_min);
        e.usize(self.local_autonomy_periods);
        e.usize(self.degraded_events);
        e.bool(self.first_outage_period.is_some());
        e.usize(self.first_outage_period.unwrap_or(0));
        e.bool(self.last_enforced.is_some());
        let lp = self.last_enforced.unwrap_or(RadioPolicy { airtime: 0.0, max_mcs: 0 });
        e.f64(lp.airtime);
        e.u8(lp.max_mcs);
        e.usize(self.degraded_by_stage.len());
        for (stage, count) in &self.degraded_by_stage {
            e.str(stage);
            e.usize(*count);
        }
        let log = self.applied_log.lock().expect("applied log poisoned");
        e.usize(log.len());
        for (t, p) in log.iter() {
            e.usize(*t);
            e.f64(p.airtime);
            e.u8(p.max_mcs);
        }
        drop(log);
        e.bytes(&self.supervisor.export_state());
        match self.agent.save_state() {
            Some(bytes) => {
                e.bool(true);
                e.bytes(&bytes);
            }
            None => e.bool(false),
        }
        match self.env.save_state() {
            Some(bytes) => {
                e.bool(true);
                e.bytes(&bytes);
            }
            None => e.bool(false),
        }
        e.finish()
    }

    /// Restores state saved by [`Self::save_state`] onto a freshly
    /// constructed orchestrator with the same configuration. The run
    /// resumes at the checkpointed period: when neither the live run nor
    /// the restored one hit a GP eviction or an active fault, every
    /// subsequent period is bit-identical to the uninterrupted run.
    ///
    /// # Errors
    /// A typed [`edgebol_ckpt::CkptError`] on any malformed payload — no
    /// panics, no silent partial restore. On error the orchestrator may
    /// have partially absorbed agent or environment state and must be
    /// discarded (callers fall back to a cold start with a fresh
    /// instance).
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), edgebol_ckpt::CkptError> {
        use edgebol_ckpt::{CkptError, Dec};
        let mut d = Dec::new(bytes);
        let t = d.usize()?;
        let d_max = d.f64()?;
        let rho_min = d.f64()?;
        let local_autonomy_periods = d.usize()?;
        let degraded_events = d.usize()?;
        let has_outage = d.bool()?;
        let first_outage_period = {
            let v = d.usize()?;
            has_outage.then_some(v)
        };
        let last_enforced = {
            let has = d.bool()?;
            let p = RadioPolicy { airtime: d.f64()?, max_mcs: d.u8()? };
            has.then_some(p)
        };
        let n_stages = d.usize()?;
        let mut degraded_by_stage = BTreeMap::new();
        for _ in 0..n_stages {
            let name = d.str()?;
            let count = d.usize()?;
            let stage = intern_stage(&name)
                .ok_or_else(|| CkptError::BadValue(format!("unknown chain stage {name:?}")))?;
            degraded_by_stage.insert(stage, count);
        }
        let n_log = d.usize()?;
        let mut applied_log = Vec::new();
        for _ in 0..n_log {
            applied_log.push((d.usize()?, RadioPolicy { airtime: d.f64()?, max_mcs: d.u8()? }));
        }
        let supervisor_bytes = d.byte_vec()?;
        let agent_bytes = if d.bool()? { Some(d.byte_vec()?) } else { None };
        let env_bytes = if d.bool()? { Some(d.byte_vec()?) } else { None };
        d.expect_end()?;
        self.supervisor.import_state(&supervisor_bytes)?;
        if let Some(bytes) = agent_bytes {
            self.agent.load_state(&bytes)?;
        }
        if let Some(bytes) = env_bytes {
            self.env.load_state(&bytes)?;
        }
        self.t = t;
        self.period.store(t, Ordering::SeqCst);
        self.spec.d_max = d_max;
        self.spec.rho_min = rho_min;
        self.local_autonomy_periods = local_autonomy_periods;
        self.degraded_events = degraded_events;
        self.first_outage_period = first_outage_period;
        self.last_enforced = last_enforced;
        self.degraded_by_stage = degraded_by_stage;
        *self.applied_log.lock().expect("applied log poisoned") = applied_log;
        *self.enforced.lock().expect("enforced slot poisoned") = None;
        Ok(())
    }

    fn note_degraded(&mut self, stage: &'static str) {
        self.degraded_events += 1;
        *self.degraded_by_stage.entry(stage).or_insert(0) += 1;
        self.metrics
            .registry
            .counter_with("edgebol_core_degraded_total", &[("stage", stage)])
            .inc();
    }

    /// Drives one policy document through rApp → A1 → xApp → E2 → node
    /// and back. Any hop may fail; the caller decides whether the error
    /// is absorbable.
    fn push_policy_through_chain(&mut self, policy: RadioPolicy) -> Result<(), OrchestratorError> {
        at("A1 put (rApp->xApp)", self.nonrt.put_policy(policy))?;
        at("near-RT poll (A1->E2)", self.nearrt.poll())?;
        at("node poll (apply+ack)", self.node.poll())?;
        at("near-RT poll (ack->A1)", self.nearrt.poll())?;
        // Feedback may legitimately be missing under fault injection (a
        // dropped ack or feedback frame); enforcement ground truth comes
        // from the node-side apply hook, not from this poll.
        let _events = at("non-RT poll (feedback)", self.nonrt.poll())?;
        Ok(())
    }

    /// Pushes the radio policies through A1/E2; returns the control as
    /// actually enforced by the node.
    ///
    /// Degraded mode: when a hop reports a recoverable error (corrupt or
    /// dropped message on a healthy link), or the round trip completes
    /// without fresh enforcement feedback, the E2 node keeps running its
    /// previous configuration — so the period proceeds under the **last
    /// enforced** policy. Before any policy was ever enforced, the
    /// requested one is applied locally with the same quantization the
    /// E2 `ControlRequest` wire format (`airtime_milli: u16`) would
    /// impose.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when a hop reports a lost
    /// connection ([`OranError::is_connection_lost`]).
    fn deploy_radio_policy(
        &mut self,
        control: &ControlInput,
    ) -> Result<ControlInput, OrchestratorError> {
        let policy =
            RadioPolicy { airtime: control.airtime, max_mcs: control.mcs_cap.index() as u8 };
        let mut degraded_at: Option<&'static str> = None;
        match self.push_policy_through_chain(policy) {
            Ok(()) => {}
            Err(e) if e.is_recoverable() => degraded_at = Some(e.stage()),
            Err(e) => return Err(e),
        }
        // Drain this deployment's enforcement feedback, if it arrived.
        let fresh = self.enforced.lock().unwrap_or_else(PoisonError::into_inner).take();
        if fresh.is_none() && degraded_at.is_none() {
            // The chain reported success yet nothing reached the node:
            // the policy was silently lost (a dropped/held frame rather
            // than a corrupted one). Still a degraded round trip.
            degraded_at = Some("radio deploy (silent loss)");
        }
        if let Some(stage) = degraded_at {
            // At most one degraded event per deployment round trip,
            // whatever combination of error and loss produced it.
            self.note_degraded(stage);
        }
        let applied = match fresh.or(self.last_enforced) {
            Some(p) => p,
            None => {
                // Nothing ever enforced: mirror the E2 ControlRequest
                // milli-unit quantization (airtime_milli: u16) locally
                // so the trace stays consistent with what the chain
                // would have delivered. (A1 itself round-trips f64
                // airtime bit-exactly; the quantization happens at the
                // E2 hop.) The degraded event is already counted above.
                RadioPolicy {
                    airtime: (policy.airtime * 1000.0).round() / 1000.0,
                    max_mcs: policy.max_mcs,
                }
            }
        };
        self.last_enforced = Some(applied);
        Ok(ControlInput {
            resolution: control.resolution,
            airtime: applied.airtime,
            gpu_speed: control.gpu_speed,
            mcs_cap: Mcs::clamped(applied.max_mcs as i64),
        })
    }

    /// Routes a BS power reading through the E2 indication path and back
    /// out of the data-collector rApp. Returns the power to use plus
    /// whether this period's sample arrived *fresh* through the chain
    /// (the KPI watchdog's input).
    ///
    /// Degraded mode: a recoverable control-plane error, or an
    /// indication that never surfaces as a KPI event, falls back to the
    /// locally measured `bs_power_w` (the sample the node would have
    /// reported). Stale KPI events left queued by an earlier degraded
    /// interaction are drained and ignored — only the sample stamped
    /// with this period's `t_ms` counts, so a dropped indication skews
    /// one period, not every period after it.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when the link is lost.
    fn bs_power_via_kpi_path(
        &mut self,
        t_ms: u64,
        bs_power_w: f64,
    ) -> Result<(f64, bool), OrchestratorError> {
        let report = KpiReport {
            t_ms,
            bs_power_mw: (bs_power_w * 1000.0).round() as u64,
            duty_milli: 0,
            mean_mcs_centi: 0,
        };
        let roundtrip = (|| {
            at("E2 indicate (node->xApp)", self.node.indicate(report))?;
            at("near-RT poll (indication)", self.nearrt.poll())?;
            at("non-RT poll (kpi)", self.nonrt.poll())
        })();
        match roundtrip {
            Ok(events) => {
                for ev in events {
                    if let RicEvent::Kpi { t_ms: stamp, bs_power_w: w } = ev {
                        if stamp == t_ms {
                            return Ok((w, true));
                        }
                        // A leftover sample from a previous period's
                        // degraded interaction: drop it.
                        self.metrics.kpi_stale.inc();
                    }
                }
                // The round trip reported success but this period's
                // sample never surfaced (silently dropped or held
                // indication / KPI frame): degraded fallback to the
                // local reading.
                self.note_degraded("KPI path (silent loss)");
                Ok((bs_power_w, false))
            }
            Err(e) if e.is_recoverable() => {
                self.note_degraded(e.stage());
                Ok((bs_power_w, false))
            }
            Err(e) => Err(e),
        }
    }

    /// Attributes a session-fatal error to the link it killed: chaos
    /// cuts name their link in the `ChannelClosed` message; otherwise
    /// the failing stage decides (A1-only stages vs the rest).
    fn lost_link(stage: &'static str, source: &OranError) -> LinkId {
        if let OranError::ChannelClosed(msg) = source {
            if msg.contains("A1") {
                return LinkId::A1;
            }
            if msg.contains("E2") {
                return LinkId::E2;
            }
        }
        match stage {
            "A1 put (rApp->xApp)" | "non-RT poll (feedback)" | "non-RT poll (kpi)" => LinkId::A1,
            _ => LinkId::E2,
        }
    }

    /// Reports a session loss to the supervisor and reconciles ground
    /// truth: the node may have applied this period's policy *before*
    /// the link died, in which case the outage runs under that policy,
    /// not the previous one.
    /// Marks the current period as the start of the outage window (at
    /// most once per run) and journals the transition.
    fn note_outage_start(&mut self, cause: &'static str) {
        if self.first_outage_period.is_none() {
            self.first_outage_period = Some(self.t);
            self.journal_event("outage_start", vec![("cause", cause.to_string())]);
        }
    }

    fn on_session_lost(&mut self, e: &OrchestratorError) {
        self.note_outage_start("session loss");
        if let OrchestratorError::ControlPlane { stage, source } = e {
            let link = Self::lost_link(stage, source);
            self.journal_event(
                "session_lost",
                vec![("stage", (*stage).to_string()), ("link", link.label().to_string())],
            );
            self.supervisor.on_connection_lost(link, self.t as u64);
        }
        if let Some(p) = self.enforced.lock().unwrap_or_else(PoisonError::into_inner).take() {
            self.last_enforced = Some(p);
        }
    }

    /// One local-autonomy period: the agent's decision is served from
    /// the last enforced policy (the node keeps running its current
    /// configuration while the control plane is down); non-RAN knobs
    /// (resolution, GPU speed) apply locally as always.
    fn local_autonomy_control(&mut self, wanted: &ControlInput) -> ControlInput {
        self.note_outage_start("local autonomy");
        self.local_autonomy_periods += 1;
        self.metrics.local_autonomy.inc();
        let applied = self.last_enforced.unwrap_or(RadioPolicy {
            // Same milli-unit quantization as the bootstrap fallback in
            // `deploy_radio_policy`.
            airtime: (wanted.airtime * 1000.0).round() / 1000.0,
            max_mcs: wanted.mcs_cap.index() as u8,
        });
        self.last_enforced = Some(applied);
        ControlInput {
            resolution: wanted.resolution,
            airtime: applied.airtime,
            gpu_speed: wanted.gpu_speed,
            mcs_cap: Mcs::clamped(applied.max_mcs as i64),
        }
    }

    /// Outage keepalive: one receive attempt per link, discarding
    /// whatever surfaces (it belongs to the dead session). This keeps
    /// the links' operation clocks ticking through the outage, so an
    /// op-denominated healing window (`heal=e2@M`) elapses even though
    /// no round trips run — one op per link per waited period,
    /// deterministically.
    fn tick_outage_links(&mut self) {
        let discarded = self.nearrt.probe_links();
        if discarded > 0 {
            self.metrics
                .registry
                .counter("edgebol_core_stale_frames_discarded_total")
                .add(discarded as u64);
        }
    }

    /// One resync attempt: drain-and-discard the dead session's frames
    /// across all three actors, re-run the KPI subscription handshake,
    /// and re-push the last acknowledged policy under the new session.
    /// Any failure (a link still down, a lost handshake frame) fails the
    /// attempt as a whole; the supervisor backs off and retries.
    ///
    /// # Errors
    /// The first [`OranError`] any resync step reports.
    fn try_resync(&mut self) -> Result<(), OranError> {
        // 1. Tear down session state and discard stale in-flight frames.
        let mut discarded = self.nearrt.reset_session()?;
        discarded += self.node.reset_session()?;
        discarded += self.nonrt.reset_session()?;
        if discarded > 0 {
            self.metrics
                .registry
                .counter("edgebol_core_stale_frames_discarded_total")
                .add(discarded as u64);
        }
        // 2. Re-handshake the KPI subscription (the node dropped its
        // subscription with the session).
        self.nearrt.subscribe_kpis(1_000)?;
        self.node.poll()?;
        self.nearrt.poll()?;
        if !self.node.is_subscribed() {
            return Err(OranError::Handshake(
                "resync: KPI re-subscription never reached the node".into(),
            ));
        }
        // 3. Re-push the last acknowledged policy so the node provably
        // runs it under the new session.
        if let Some(p) = self.last_enforced {
            self.nonrt.put_policy(p)?;
            self.nearrt.poll()?;
            self.node.poll()?;
            self.nearrt.poll()?;
            self.nonrt.poll()?;
            // The re-push is session bootstrap, not a period deployment:
            // drain the enforcement sink so the next deploy's freshness
            // check is not confused.
            let _ = self.enforced.lock().unwrap_or_else(PoisonError::into_inner).take();
        }
        Ok(())
    }

    /// The supervised radio deployment: consults the supervisor, runs
    /// the normal deploy / a resync probe / local autonomy as directed,
    /// and returns the control in force plus whether the control plane
    /// was used this period (gates the KPI path).
    ///
    /// # Errors
    /// [`OrchestratorError::CircuitOpen`] when the retry budget is
    /// exhausted and fallback is disabled; a non-session error from the
    /// deploy itself.
    fn supervised_deploy(
        &mut self,
        wanted: &ControlInput,
    ) -> Result<(ControlInput, bool), OrchestratorError> {
        let now = self.t as u64;
        match self.supervisor.poll(now) {
            RecoveryAction::Proceed => self.deploy_or_fall_back(wanted),
            RecoveryAction::Wait => {
                self.tick_outage_links();
                Ok((self.local_autonomy_control(wanted), false))
            }
            RecoveryAction::Probe { .. } => match self.try_resync() {
                Ok(()) => {
                    self.supervisor.on_resync_ok(now);
                    self.deploy_or_fall_back(wanted)
                }
                Err(_) => {
                    self.supervisor.on_resync_failed(now);
                    Ok((self.local_autonomy_control(wanted), false))
                }
            },
            RecoveryAction::GiveUp { link, attempts } => {
                Err(OrchestratorError::CircuitOpen { link, attempts })
            }
        }
    }

    /// A connected-path deploy that absorbs a session-fatal failure into
    /// the supervisor + local autonomy instead of aborting the run.
    fn deploy_or_fall_back(
        &mut self,
        wanted: &ControlInput,
    ) -> Result<(ControlInput, bool), OrchestratorError> {
        match self.deploy_radio_policy(wanted) {
            Ok(c) => Ok((c, true)),
            Err(e) if e.is_session_fatal() => {
                self.on_session_lost(&e);
                Ok((self.local_autonomy_control(wanted), false))
            }
            Err(e) => Err(e),
        }
    }

    /// Runs one orchestration period.
    ///
    /// # Errors
    /// [`OrchestratorError::ControlPlane`] when the A1/E2 control plane
    /// loses a link mid-round-trip; recoverable message-level failures
    /// are absorbed by degraded mode (see the module docs).
    pub fn try_step(&mut self) -> Result<PeriodRecord, OrchestratorError> {
        let sw = self.metrics.registry.stopwatch();
        let r = self.step_inner();
        match &r {
            Ok(_) => self.metrics.periods.inc(),
            Err(e) => {
                self.journal_event(
                    "step_error",
                    vec![("stage", e.stage().to_string()), ("error", e.to_string())],
                );
                self.metrics
                    .registry
                    .counter_with(
                        "edgebol_core_control_plane_errors_total",
                        &[("stage", e.stage())],
                    )
                    .inc();
            }
        }
        sw.observe(&self.metrics.step_seconds);
        r
    }

    fn step_inner(&mut self) -> Result<PeriodRecord, OrchestratorError> {
        // Per-period stage span (sense → optimize → deploy → kpi →
        // learn). The Arc clone detaches the span's borrow from `self`
        // so the loop body can keep taking `&mut self`.
        let journal = self.journal.clone();
        let mut span = journal.as_deref().map(|j| j.span(self.t as u64));
        // Stamp the period for the node's apply hook (enforcement log).
        self.period.store(self.t, Ordering::SeqCst);
        // Scheduled constraint changes (operator reconfiguration).
        for &(at_t, d_max, rho_min) in &self.schedule {
            if at_t == self.t {
                self.spec.d_max = d_max;
                self.spec.rho_min = rho_min;
                self.agent.set_constraints(d_max, rho_min);
                self.journal_event(
                    "constraint_change",
                    vec![("d_max", format!("{d_max}")), ("rho_min", format!("{rho_min}"))],
                );
            }
        }
        let ctx = self.env.observe_context();
        if let Some(s) = span.as_mut() {
            s.stage("sense");
        }
        let wanted = self.agent.select(&ctx);
        if let Some(s) = span.as_mut() {
            s.stage("optimize");
        }
        let (control, connected) = self.supervised_deploy(&wanted)?;
        if let Some(s) = span.as_mut() {
            s.stage("deploy");
        }
        let mut obs = self.env.step(&control);
        // BS power rides the E2 KPI path (mW quantization included) —
        // but only while a session is up; outage periods use the local
        // reading directly (the node could not have indicated anyway).
        if connected {
            match self.bs_power_via_kpi_path((self.t as u64) * 1000, obs.bs_power_w) {
                Ok((w, fresh)) => {
                    obs.bs_power_w = w;
                    if fresh {
                        self.supervisor.note_kpi_fresh();
                    } else if self.supervisor.note_kpi_silent(self.t as u64) {
                        // The KPI watchdog declared the E2 stream dead:
                        // the supervisor is now backing off toward a
                        // resync, and this period opens the outage.
                        self.note_outage_start("kpi watchdog");
                    }
                }
                Err(e) if e.is_session_fatal() => {
                    // The session died between deploy and indication:
                    // the local reading stands in, and the supervisor
                    // takes over from the next period.
                    self.on_session_lost(&e);
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(s) = span.as_mut() {
            s.stage("kpi");
        }

        let cost = self.spec.cost(&obs);
        let satisfied = self.spec.satisfied(&obs);
        self.agent.update(&ctx, &control, &obs);
        let safe_set_size =
            if self.record_safe_set { self.agent.safe_set_size(&ctx) } else { None };
        let record =
            PeriodRecord { t: self.t, context: ctx, control, obs, cost, satisfied, safe_set_size };
        self.t += 1;
        if let Some(mut s) = span.take() {
            s.stage("learn");
            s.finish();
        }
        Ok(record)
    }

    /// Runs `periods` periods and returns the trace.
    ///
    /// # Errors
    /// The first [`OrchestratorError`] a period surfaces; records from
    /// completed periods are dropped with it (callers that need partial
    /// traces can loop [`Orchestrator::try_step`] themselves).
    pub fn try_run(&mut self, periods: usize) -> Result<Trace, OrchestratorError> {
        let mut trace = Trace::default();
        for _ in 0..periods {
            let r = self.try_step()?;
            trace.records.push(r);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::EdgeBolAgent;
    use edgebol_oran::{FallbackMode, LaneConfig};
    use edgebol_testbed::{Calibration, FlowTestbed, Scenario};

    fn orch(seed: u64) -> Orchestrator {
        let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), seed);
        let agent = EdgeBolAgent::quick_for_tests(&spec, seed);
        Orchestrator::new(Box::new(env), Box::new(agent), spec).expect("in-process setup")
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically_to_the_live_run() {
        let mut live = orch(11);
        for _ in 0..15 {
            live.try_step().unwrap();
        }
        let snapshot = live.save_state();
        let mut restored = orch(11);
        restored.restore_state(&snapshot).unwrap();
        assert_eq!(restored.enforcement_log(), live.enforcement_log());
        assert_eq!(restored.last_enforced(), live.last_enforced());
        for p in 0..20 {
            let a = live.try_step().unwrap();
            let b = restored.try_step().unwrap();
            assert_eq!(a.t, b.t);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "cost diverged at {p}");
            assert_eq!(a.obs.delay_s.to_bits(), b.obs.delay_s.to_bits(), "delay at {p}");
            assert_eq!(a.control.airtime.to_bits(), b.control.airtime.to_bits(), "control at {p}");
        }
        assert_eq!(live.save_state(), restored.save_state(), "windows stay in lockstep");
    }

    #[test]
    fn corrupt_orchestrator_checkpoint_is_a_typed_error() {
        let mut live = orch(12);
        for _ in 0..10 {
            live.try_step().unwrap();
        }
        let snapshot = live.save_state();
        for cut in [0, 1, snapshot.len() / 2, snapshot.len() - 1] {
            let mut target = orch(12);
            target.restore_state(&snapshot[..cut]).expect_err("truncated must fail");
        }
        // An unknown stage name (format drift) is rejected, not silently
        // dropped: corrupt the first stage-map string if one exists —
        // otherwise just verify the full payload restores.
        let mut target = orch(12);
        target.restore_state(&snapshot).unwrap();
        assert_eq!(target.save_state(), snapshot, "restore → save is the identity");
    }

    #[test]
    fn orchestrator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Orchestrator>();
        assert_send::<OrchestratorError>();
    }

    #[test]
    fn reactor_transport_runs_the_same_loop() {
        let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 1);
        let agent = EdgeBolAgent::quick_for_tests(&spec, 1);
        let mut o = Orchestrator::new_with_reactor(Box::new(env), Box::new(agent), spec)
            .expect("reactor setup");
        assert_eq!(o.transport(), TransportKind::Reactor);
        let trace = o.try_run(10).unwrap();
        assert_eq!(trace.len(), 10);
        assert_eq!(o.degraded_events(), 0, "loopback reactor links drop nothing");
    }

    #[test]
    fn runs_periods_and_records() {
        let mut o = orch(1);
        let trace = o.try_run(10).unwrap();
        assert_eq!(trace.len(), 10);
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.t, i);
            assert!(r.cost > 0.0);
            assert!(r.obs.delay_s > 0.0);
            assert_eq!(r.cost, o.spec().cost(&r.obs));
        }
        // The in-process control plane never drops a message.
        assert_eq!(o.degraded_events(), 0);
    }

    #[test]
    fn radio_policy_quantization_survives_the_chain() {
        // Whatever the agent asks, the enforced airtime is a multiple of
        // 1/1000 (the E2 ControlRequest carries milli-units).
        let mut o = orch(2);
        let trace = o.try_run(5).unwrap();
        for r in &trace.records {
            let milli = r.control.airtime * 1000.0;
            assert!((milli - milli.round()).abs() < 1e-9, "airtime {}", r.control.airtime);
        }
    }

    #[test]
    fn constraint_schedule_fires() {
        let mut o = orch(3).with_constraint_schedule(vec![(3, 0.3, 0.6)]);
        let _ = o.try_run(3).unwrap();
        assert_eq!(o.spec().d_max, 0.5);
        let _ = o.try_run(1).unwrap();
        assert_eq!(o.spec().d_max, 0.3);
        assert_eq!(o.spec().rho_min, 0.6);
    }

    #[test]
    fn safe_set_recording_is_optional_and_works() {
        let mut o = orch(4);
        o.record_safe_set = true;
        let trace = o.try_run(8).unwrap();
        assert!(trace.records.iter().all(|r| r.safe_set_size.is_some()));
        // During warm-up the estimate equals |S_0| = 1 (the max-resources
        // corner is the a-priori safe set).
        assert_eq!(trace.records[0].safe_set_size, Some(1));
    }

    #[test]
    fn learning_reduces_cost_over_time() {
        let mut o = orch(5);
        let trace = o.try_run(60).unwrap();
        let early: f64 = trace.costs()[..6].iter().sum::<f64>() / 6.0;
        let late = trace.tail_mean_cost(10);
        assert!(
            late < early,
            "cost should fall as EdgeBOL learns: early {early:.1} late {late:.1}"
        );
        // And the service constraints hold most of the time after warmup.
        assert!(trace.satisfaction_rate(10) > 0.7, "{}", trace.satisfaction_rate(10));
    }

    #[test]
    fn fault_free_runs_have_an_empty_ledger_and_consistent_log() {
        let mut o = orch(6);
        let trace = o.try_run(8).unwrap();
        assert!(o.fault_ledger().is_empty());
        assert_eq!(o.degraded_events(), 0);
        assert!(o.degraded_by_stage().is_empty());
        // One enforcement per period, and the trace reflects each one.
        let log = o.enforcement_log();
        assert_eq!(log.len(), trace.len());
        for (r, (t, p)) in trace.records.iter().zip(&log) {
            assert_eq!(r.t, *t);
            assert_eq!(r.control.airtime, p.airtime);
            assert_eq!(r.control.mcs_cap.index() as u8, p.max_mcs);
        }
        assert_eq!(o.last_enforced(), log.last().map(|&(_, p)| p));
    }

    #[test]
    fn chaotic_runs_count_exactly_the_degrading_faults() {
        use edgebol_oran::ChaosConfig;
        let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), 7);
        let agent = EdgeBolAgent::quick_for_tests(&spec, 7);
        let mut o = Orchestrator::new_with_chaos(
            Box::new(env),
            Box::new(agent),
            spec,
            ChaosConfig::drop_corrupt(7, 0.2),
        )
        .expect("in-process setup");
        let trace = o.try_run(25).expect("drop/corrupt faults are all recoverable");
        assert_eq!(trace.len(), 25);
        let ledger = o.fault_ledger();
        assert!(!ledger.is_empty(), "0.2 rates over 25 periods must inject");
        // Drop+corrupt schedules cannot mask one another, so accounting
        // is exact: one degraded event per degrading fault.
        assert_eq!(o.degraded_events(), ledger.degrading_count());
        assert_eq!(o.degraded_by_stage().values().sum::<usize>(), o.degraded_events());
        // The policy in force is always the last one the node applied
        // (or the quantized bootstrap fallback before any application).
        assert_eq!(
            o.last_enforced().map(|p| p.max_mcs),
            o.enforcement_log()
                .last()
                .map(|&(_, p)| p.max_mcs)
                .or(o.last_enforced().map(|p| p.max_mcs))
        );
    }

    fn chaos_orch(seed: u64, chaos: ChaosConfig) -> Orchestrator {
        let spec = ProblemSpec::new(1.0, 8.0, 0.5, 0.4);
        let env = FlowTestbed::new(Calibration::fast(), Scenario::single_user(35.0), seed);
        let agent = EdgeBolAgent::quick_for_tests(&spec, seed);
        Orchestrator::new_with_chaos(Box::new(env), Box::new(agent), spec, chaos)
            .expect("in-process setup")
    }

    #[test]
    fn healed_cut_resyncs_and_matches_the_fault_free_prefix() {
        let seed = 11;
        let mut clean = orch(seed);
        let reference = clean.try_run(60).unwrap();

        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 40).with_heal(25);
        let mut o = chaos_orch(seed, chaos);
        let trace = o.try_run(60).expect("a healed cut must not abort the run");
        assert_eq!(trace.len(), 60);

        assert!(o.reconnects_ok() >= 1, "the supervisor must resync at least once");
        assert!(o.session_epoch() >= 1, "a resync bumps the session epoch");
        assert_eq!(
            o.circuit_state(),
            CircuitState::Connected,
            "healed: back on the connected path"
        );
        let outage = o.first_outage_period().expect("the cut must have opened an outage");
        assert!(o.local_autonomy_periods() > 0);
        // Before the outage the two runs are bit-identical — the
        // supervisor is pure bookkeeping until a session dies.
        for (a, b) in reference.records[..outage].iter().zip(&trace.records[..outage]) {
            assert_eq!(a.control.airtime.to_bits(), b.control.airtime.to_bits(), "t={}", a.t);
            assert_eq!(a.obs.bs_power_w.to_bits(), b.obs.bs_power_w.to_bits(), "t={}", a.t);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "t={}", a.t);
        }
    }

    #[test]
    fn unhealed_cut_with_sticky_fallback_survives_in_local_autonomy() {
        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 40);
        let mut o = chaos_orch(12, chaos);
        let trace = o.try_run(80).expect("sticky fallback never aborts the run");
        assert_eq!(trace.len(), 80);
        assert_eq!(o.reconnects_ok(), 0, "the cut never heals");
        assert!(
            o.reconnects_failed() >= u64::from(RecoveryPolicy::default().max_retries),
            "the full retry budget is spent: {} failed",
            o.reconnects_failed()
        );
        assert!(matches!(o.circuit_state(), CircuitState::Open { .. }), "{:?}", o.circuit_state());
        assert!(o.local_autonomy_periods() > 0);
        // The run keeps producing coherent records on the last enforced
        // policy (or quantized fallback) all the way through.
        for r in &trace.records {
            assert!(r.cost > 0.0);
        }
    }

    #[test]
    fn unhealed_cut_with_fallback_off_fails_fast_with_circuit_open() {
        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 40);
        let mut o = chaos_orch(13, chaos)
            .with_recovery(RecoveryPolicy::default().with_fallback(FallbackMode::Off));
        let mut last = None;
        for _ in 0..200 {
            match o.try_step() {
                Ok(_) => {}
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        let e = last.expect("fallback off must surface the open circuit within 200 periods");
        match e {
            OrchestratorError::CircuitOpen { link, attempts } => {
                assert_eq!(link, LinkId::E2);
                assert_eq!(attempts, RecoveryPolicy::default().max_retries);
            }
            other => panic!("expected CircuitOpen, got {other}"),
        }
        assert!(!e.is_recoverable());
        assert!(!e.is_session_fatal());
        assert_eq!(e.stage(), "reconnect supervisor");
        // And the verdict is stable: every further step reports it too.
        assert!(matches!(o.try_step(), Err(OrchestratorError::CircuitOpen { .. })));
    }

    #[test]
    fn kpi_watchdog_trips_on_a_silently_dead_e2_stream() {
        // Drop every frame the xApp receives over E2: deployments degrade
        // (no ack) and no KPI sample ever arrives fresh, yet no transport
        // error surfaces — exactly the blind spot the watchdog covers.
        let chaos = ChaosConfig {
            e2_rx: LaneConfig { drop: 1.0, ..LaneConfig::off() },
            ..ChaosConfig::disabled()
        };
        let mut o = chaos_orch(14, chaos).with_recovery(RecoveryPolicy::default().with_watchdog(3));
        let trace = o.try_run(30).expect("a tripped watchdog recovers via the supervisor");
        assert_eq!(trace.len(), 30);
        assert!(o.watchdog_trips() >= 1, "3 silent periods must trip the watchdog");
        assert!(o.first_outage_period().is_some());

        // Without the watchdog the same schedule never involves the
        // supervisor: silence is absorbed as per-period degraded events.
        let chaos = ChaosConfig {
            e2_rx: LaneConfig { drop: 1.0, ..LaneConfig::off() },
            ..ChaosConfig::disabled()
        };
        let mut o = chaos_orch(14, chaos);
        let _ = o.try_run(30).unwrap();
        assert_eq!(o.watchdog_trips(), 0);
        assert_eq!(o.first_outage_period(), None);
    }

    #[test]
    fn journal_captures_the_whole_outage_narrative_across_layers() {
        use edgebol_trace::{Journal, Layer};
        let journal = std::sync::Arc::new(Journal::with_capacity(4096));
        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 10).with_heal(25);
        let mut o = chaos_orch(11, chaos).with_journal(journal.clone());
        let trace = o.try_run(40).expect("a healed cut must not abort the run");
        assert_eq!(trace.len(), 40);
        assert!(o.reconnects_ok() >= 1);

        let events = journal.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        // One period_span per period, in period order, with stage fields.
        let spans: Vec<_> = events.iter().filter(|e| e.kind == "period_span").collect();
        assert_eq!(spans.len(), 40, "one span per period: {kinds:?}");
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.period, Some(i as u64));
            assert_eq!(s.layer, Layer::Orchestrator);
            let keys: Vec<&str> = s.fields.iter().map(|(k, _)| *k).collect();
            assert!(keys.contains(&"sense") && keys.contains(&"deploy"), "{keys:?}");
        }
        // The outage narrative: chaos cut → session lost → recovery
        // backoff → resync — each from its own layer, in causal order.
        let pos = |k: &str| kinds.iter().position(|x| *x == k);
        let fault = pos("fault").expect("chaos layer must journal the cut");
        let lost = pos("session_lost").expect("orchestrator must journal the loss");
        let outage = pos("outage_start").expect("outage window start must be journaled");
        let conn_lost = pos("connection_lost").expect("supervisor must journal the loss");
        let resync = pos("resync_ok").expect("supervisor must journal the heal");
        assert!(fault < lost && lost <= conn_lost && conn_lost < resync);
        assert!(outage <= conn_lost);
        assert_eq!(events[fault].layer, Layer::Chaos, "fault events carry the chaos layer tag");
        assert_eq!(events[conn_lost].layer, Layer::Recovery);
        // Journal attachment must not perturb the episode: same trace
        // as an identically seeded run without a journal.
        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 10).with_heal(25);
        let mut bare = chaos_orch(11, chaos);
        let reference = bare.try_run(40).unwrap();
        for (a, b) in reference.records.iter().zip(&trace.records) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "t={}", a.t);
        }
    }

    #[test]
    fn fallback_off_journals_the_fatal_step_error() {
        use edgebol_trace::Journal;
        let journal = std::sync::Arc::new(Journal::with_capacity(4096));
        let chaos = ChaosConfig::disabled().with_cut(LinkId::E2, 10);
        let mut o = chaos_orch(13, chaos)
            .with_recovery(RecoveryPolicy::default().with_fallback(FallbackMode::Off))
            .with_journal(journal.clone());
        let mut failed = false;
        for _ in 0..200 {
            if o.try_step().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "fallback off must surface the open circuit");
        let events = journal.snapshot();
        let err = events
            .iter()
            .find(|e| e.kind == "step_error")
            .expect("the fatal step must be journaled");
        assert_eq!(err.period.map(|p| p as usize), o.first_outage_period().map(|_| o.t));
        assert!(err.fields.iter().any(|(k, v)| *k == "stage" && v == "reconnect supervisor"));
        assert!(events.iter().any(|e| e.kind == "circuit_open"), "supervisor journals the latch");
    }

    #[test]
    fn error_display_names_the_stage() {
        let e = OrchestratorError::ControlPlane {
            stage: "A1 put (rApp->xApp)",
            source: edgebol_oran::OranError::ChannelClosed("a1"),
        };
        assert!(e.to_string().contains("A1 put"));
        assert!(!e.is_recoverable());
        let e = OrchestratorError::ControlPlane {
            stage: "non-RT poll (kpi)",
            source: edgebol_oran::OranError::Codec("bad json".into()),
        };
        assert!(e.is_recoverable());
        assert!(std::error::Error::source(&e).is_some());
    }
}
